"""Ablation: the cost of privacy — DPCopula vs the noise-free copula.

The non-private Gaussian copula model (same margins machinery, same
estimate-transform-sample pipeline, zero noise) is the utility ceiling
of the whole approach; the gap to it at each ε is the price of the
privacy guarantee, and the residual error of the ceiling itself is the
price of the Gaussian-copula modelling assumption.
"""

from conftest import run_once

from repro.core.copula import GaussianCopulaModel
from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.experiments.figures import FigureResult
from repro.experiments.runner import average_evaluation, make_method
from repro.queries.evaluation import evaluate_workload
from repro.queries.range_query import random_workload


def _run(scale):
    correlation = random_correlation_matrix(4, rng=10, strength=0.6)
    spec = SyntheticSpec(
        n_records=scale.n_records,
        domain_sizes=(scale.domain_size,) * 4,
        correlation=correlation,
    )
    data = gaussian_dependence_data(spec, rng=11)
    workload = random_workload(data.schema, scale.n_queries, rng=12)
    result = FigureResult(
        "ablation-privacy-cost",
        "DPCopula vs the non-private copula ceiling",
        {"n": scale.n_records, "domain": scale.domain_size},
    )
    for epsilon in (0.1, 0.5, 1.0, 4.0):
        timed = average_evaluation(
            make_method("dpcopula-kendall"),
            data,
            workload,
            epsilon,
            n_runs=scale.n_runs,
            rng=13,
        )
        result.add(
            epsilon, "dpcopula-kendall", "relative_error",
            timed.evaluation.mean_relative_error,
        )
    ceiling = GaussianCopulaModel().fit(data).sample(rng=14)
    evaluation = evaluate_workload(ceiling, workload, data)
    for epsilon in (0.1, 0.5, 1.0, 4.0):
        result.add(
            epsilon, "non-private copula", "relative_error",
            evaluation.mean_relative_error,
        )
    return result


def bench_ablation_privacy_cost(benchmark, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    print()
    print(result.to_table())
    # The ceiling should be at least as accurate as every private run.
    private = [v for _, v in result.series("dpcopula-kendall", "relative_error")]
    ceiling = result.series("non-private copula", "relative_error")[0][1]
    assert ceiling <= min(private) + 1e-9
