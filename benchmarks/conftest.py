"""Shared benchmark configuration.

Every benchmark regenerates one figure (or ablation) of the paper at a
reduced-but-representative scale, prints the series table it produced
(the same rows the paper plots), and reports the wall-clock cost through
pytest-benchmark.  ``ExperimentScale.paper()`` reproduces the original
evaluation's parameters when you have the time budget.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentScale

# One shared scale keeps the whole suite comparable and quick (~minutes).
BENCH_SCALE = ExperimentScale(
    n_records=5_000,
    n_queries=60,
    n_runs=1,
    domain_size=200,
    dimensions=(2, 4, 6, 8),
    epsilons=(0.1, 0.5, 1.0),
    base_seed=20140324,
)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
