"""Ablation: eigenvalue repair (Algorithm 5, step 3) vs Higham projection.

At small ε₂ the noisy matrix sin(π/2·τ̃) is frequently indefinite; the
repair choice is a design decision DESIGN.md calls out.  This bench
compares how far each repaired matrix lands from the true correlation,
and how often repair triggers at all.
"""

import numpy as np
from conftest import run_once

from repro.core.kendall_matrix import dp_kendall_correlation
from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.experiments.figures import FigureResult
from repro.stats.correlation import correlation_from_tau
from repro.stats.kendall import kendall_tau_matrix
from repro.stats.psd_repair import is_positive_definite

EPSILON2 = 0.02  # small enough that indefiniteness actually occurs
RUNS = 10


def _run(scale):
    m = 6
    correlation = random_correlation_matrix(m, rng=7, strength=0.7)
    spec = SyntheticSpec(
        n_records=5_000,
        domain_sizes=(scale.domain_size,) * m,
        correlation=correlation,
    )
    data = gaussian_dependence_data(spec, rng=8)
    result = FigureResult(
        "ablation-repair",
        "PD repair method vs correlation accuracy",
        {"m": m, "epsilon2": EPSILON2},
    )
    # How often does the raw noisy matrix even need repair?
    raw_tau = kendall_tau_matrix(data.values[:2000])
    broken = 0
    rng = np.random.default_rng(9)
    for _ in range(RUNS):
        noisy = raw_tau + rng.laplace(0, 0.4, size=raw_tau.shape)
        noisy = np.clip((noisy + noisy.T) / 2, -1, 1)
        np.fill_diagonal(noisy, 1.0)
        if not is_positive_definite(correlation_from_tau(noisy)):
            broken += 1
    result.add("indefinite_rate", "raw", "fraction", broken / RUNS)

    for repair in ("eigenvalue", "higham"):
        errors = []
        for seed in range(RUNS):
            estimate = dp_kendall_correlation(
                data.values, EPSILON2, rng=seed, subsample=2000, repair=repair
            )
            errors.append(float(np.abs(estimate - correlation).max()))
        result.add("error", repair, "max_matrix_error", float(np.mean(errors)))
    return result


def bench_ablation_pd_repair(benchmark, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    print()
    print(result.to_table())
    assert "eigenvalue" in result.methods() and "higham" in result.methods()
