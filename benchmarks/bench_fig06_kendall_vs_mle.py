"""Figure 6: DPCopula-Kendall vs DPCopula-MLE — error (a) and runtime (b).

Expected shape: Kendall's error at or below MLE's at every
dimensionality; both runtimes grow roughly quadratically with m, with
the sampling optimisation keeping Kendall competitive.
"""

from conftest import run_once

from repro.experiments.figures import fig06_kendall_vs_mle


def bench_fig06_kendall_vs_mle(benchmark, bench_scale):
    result = run_once(benchmark, fig06_kendall_vs_mle, scale=bench_scale)
    print()
    print(result.to_table())
    assert set(result.metrics()) == {"relative_error", "seconds"}
