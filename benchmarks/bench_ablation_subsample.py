"""Ablation: the Section 4.2 sampling optimisation for Kendall's tau.

Computing tau on an n̂-record subsample fixes the cost regardless of n,
at the price of Laplace noise enlarged from 4/(n+1) to 4/(n̂+1).  This
bench measures both sides of the trade on one dataset: correlation-
matrix accuracy and wall-clock, for the full data vs the paper's n̂ rule
vs an aggressively small n̂.
"""

import time

import numpy as np
from conftest import run_once

from repro.core.kendall_matrix import dp_kendall_correlation, kendall_subsample_size
from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.experiments.figures import FigureResult

EPSILON2 = 0.5


def _run(scale):
    m = 4
    correlation = random_correlation_matrix(m, rng=5, strength=0.6)
    spec = SyntheticSpec(
        n_records=40_000,
        domain_sizes=(scale.domain_size,) * m,
        correlation=correlation,
    )
    data = gaussian_dependence_data(spec, rng=6)
    settings = {
        "full": None,
        f"paper-rule(n̂={kendall_subsample_size(m, EPSILON2)})": "auto",
        "tiny(n̂=300)": 300,
    }
    result = FigureResult(
        "ablation-subsample",
        "Kendall correlation: subsample size vs accuracy and time",
        {"n": data.n_records, "m": m, "epsilon2": EPSILON2},
    )
    for label, subsample in settings.items():
        errors, start = [], time.perf_counter()
        for seed in range(5):
            estimate = dp_kendall_correlation(
                data.values, EPSILON2, rng=seed, subsample=subsample
            )
            errors.append(np.abs(estimate - correlation).max())
        elapsed = (time.perf_counter() - start) / 5
        result.add("error", label, "max_matrix_error", float(np.mean(errors)))
        result.add("time", label, "seconds", elapsed)
    return result


def bench_ablation_kendall_subsampling(benchmark, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    print()
    print(result.to_table())
    assert len(result.methods()) == 3
