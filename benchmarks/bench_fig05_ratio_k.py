"""Figure 5: relative error vs. the budget ratio k (2-D synthetic data).

Expected shape: error falls as k rises toward 1, then plateaus — giving
the margins at least as much budget as the coefficients is what matters,
and the method is insensitive to k beyond that.
"""

from conftest import run_once

from repro.experiments.figures import fig05_ratio_k


def bench_fig05_ratio_k(benchmark, bench_scale):
    result = run_once(
        benchmark,
        fig05_ratio_k,
        scale=bench_scale,
        ks=(0.125, 0.5, 1.0, 4.0, 8.0, 32.0),
        epsilons=(0.1, 1.0),
    )
    print()
    print(result.to_table())
    assert result.points, "figure produced no data"
