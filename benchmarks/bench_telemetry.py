"""Benchmark the telemetry layer's overhead on the Kendall hot path.

The telemetry contract (docs/OBSERVABILITY.md) is that observability is
effectively free when nobody is looking: with no active trace the
``span`` context manager is a single contextvar read, and the metrics
the hot path touches are per-``map_tasks``-call, never per-pair.  This
benchmark measures that claim on the same workload shape as
``bench_parallel.py`` (default m=16 attributes, n=100k records — the
paper's §4.2 scalability experiment):

``baseline``
    ``kendall_tau_matrix`` with tracing inactive (the production
    default for library use).
``traced``
    The same call under an active ``trace_root`` — every span records
    timings and feeds the ``dpcopula_stage_seconds`` histogram.
``logged``
    Tracing inactive but debug logging configured to a sink, so the
    per-call logger plumbing is exercised too.

A second section measures the **fleet observatory** on the serve path:
the same seeded sampling-request loop with nothing installed versus
with the full observatory active — durable trace export ring, a
``trace_root`` per request (what the HTTP layer adds when an exporter
is installed), and the continuous utility-probe loop running in the
background.  Probing is pure post-processing of the released model, so
besides wall-clock the section verifies the seeded draws stay bitwise
identical with the observatory on.

Besides wall-clock, the run *verifies* the telemetry contract that
matters: the traced matrix is bitwise identical to the untraced one,
on every execution backend.  Results land in ``BENCH_telemetry.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry.py           # full (m=16, n=100k)
    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke   # CI-sized, asserts

Exit status is non-zero if the traced output diverges or (in ``--smoke``
mode) disabled-telemetry overhead exceeds ``--max-overhead`` (default
3%) of the baseline, or the observatory costs the serve path more than
``--max-observatory-overhead`` (default 5%).
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.parallel import ExecutionContext
from repro.stats.kendall import kendall_tau_matrix
from repro.telemetry import configure_logging, metrics, trace


def make_workload(m: int, n: int, seed: int = 20140324) -> np.ndarray:
    """Same mixed-domain integer matrix as bench_parallel.py."""
    rng = np.random.default_rng(seed)
    domains = [(500, 50, 5)[j % 3] for j in range(m)]
    columns = [rng.integers(0, d, size=n) for d in domains]
    return np.column_stack(columns).astype(float)


def timed(fn, repeats: int):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(args) -> dict:
    m, n = (args.smoke_m, args.smoke_n) if args.smoke else (args.m, args.n)
    values = make_workload(m, n)
    pairs = m * (m - 1) // 2
    print(f"workload: m={m} ({pairs} pairs), n={n}, workers={args.workers}")

    backends = {
        "serial": ExecutionContext("serial"),
        "thread": ExecutionContext("thread", max_workers=args.workers),
        "process": ExecutionContext("process", max_workers=args.workers),
    }

    results = {}
    determinism = {}
    repeats = max(args.repeats, 5) if args.smoke else args.repeats
    for name, context in backends.items():
        # Paired rounds, overhead = median per-round ratio of *process
        # CPU time*: wall-clock on a shared single-core box measures
        # the co-tenants, not the telemetry.  CPU time counts exactly
        # this process's work (spans, histogram updates), so the smoke
        # gate survives noisy neighbors.  Wall-clock is still reported.
        baseline_times, traced_times, ratios = [], [], []
        baseline_matrix = traced_matrix = None
        for _ in range(repeats):
            start = time.perf_counter()
            cpu_start = time.process_time()
            baseline_matrix = kendall_tau_matrix(values, context=context)
            baseline_cpu = time.process_time() - cpu_start
            baseline_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            cpu_start = time.process_time()
            with trace.trace_root("bench"):
                traced_matrix = kendall_tau_matrix(values, context=context)
            traced_cpu = time.process_time() - cpu_start
            traced_times.append(time.perf_counter() - start)
            ratios.append(traced_cpu / baseline_cpu - 1.0)

        baseline_seconds = min(baseline_times)
        traced_seconds = min(traced_times)
        overhead = float(np.median(ratios))
        results[name] = {
            "baseline_seconds": baseline_seconds,
            "traced_seconds": traced_seconds,
            "traced_overhead": overhead,
        }
        determinism[f"{name}_traced_equals_untraced"] = bool(
            np.array_equal(baseline_matrix, traced_matrix)
        )
        print(
            f"  {name:<8} baseline {baseline_seconds:8.3f}s   "
            f"traced {traced_seconds:8.3f}s   ({overhead:+.2%})"
        )

    # Debug logging exercises the logger plumbing the hot path touches
    # (one fan-out record per map_tasks call); measured on serial only.
    configure_logging("debug", stream=io.StringIO())
    logged_seconds, _ = timed(
        lambda: kendall_tau_matrix(values, context=backends["serial"]),
        repeats,
    )
    configure_logging("off")
    results["serial"]["logged_seconds"] = logged_seconds
    results["serial"]["logged_overhead"] = (
        logged_seconds / results["serial"]["baseline_seconds"] - 1.0
    )
    print(
        f"  serial   debug-logged {logged_seconds:8.3f}s   "
        f"({results['serial']['logged_overhead']:+.2%})"
    )

    stage_series = metrics.REGISTRY.snapshot().get("dpcopula_stage_seconds", {})
    document = {
        "benchmark": "bench_telemetry",
        "workload": {"m": m, "n": n, "pairs": pairs, "workers": args.workers},
        "smoke": bool(args.smoke),
        "results": results,
        "determinism": determinism,
        "stage_histogram_series": len(stage_series.get("series", [])),
    }
    return document


def run_observatory(args) -> dict:
    """Measure the serve path with the full observatory active."""
    import hashlib
    import tempfile

    from repro.core.dpcopula import DPCopulaKendall
    from repro.data.dataset import Attribute, Dataset, Schema
    from repro.engine import SamplingEngine
    from repro.service.registry import ModelRegistry
    from repro.telemetry.export import TraceExporter
    from repro.telemetry.observatory import UtilityProbe

    # Per-request observatory cost is fixed (one trace-root + one ring
    # append), so the request size sets the relative overhead.  10k-row
    # draws match the serve path's coalesced batches; tiny draws would
    # measure JSON encoding against nearly-free sampling.
    if args.smoke:
        n_fit, requests, draw_n = 10_000, 200, 10_000
    else:
        n_fit, requests, draw_n = 50_000, 400, 10_000
    repeats = max(args.repeats, 7) if args.smoke else args.repeats

    rng = np.random.default_rng(20140324)
    domains = (500, 50, 5, 100)
    values = np.column_stack(
        [rng.integers(0, d, size=n_fit) for d in domains]
    )
    dataset = Dataset(
        values, Schema([Attribute(f"c{j}", d) for j, d in enumerate(domains)])
    )
    synthesizer = DPCopulaKendall(epsilon=1.0, rng=0)
    synthesizer.fit(dataset)
    from repro.io import ReleasedModel

    model = ReleasedModel.from_synthesizer(synthesizer)

    def serve_loop(engine, model_id, traced):
        digest = hashlib.blake2s()
        for j in range(requests):
            if traced:
                with trace.trace_root("http.request", route="sample"):
                    out = engine.sample(model_id, n=draw_n, seed=j)
            else:
                out = engine.sample(model_id, n=draw_n, seed=j)
            digest.update(np.ascontiguousarray(out.values))
        return digest.hexdigest()

    with tempfile.TemporaryDirectory(prefix="bench-observatory-") as root:
        root = Path(root)
        registry = ModelRegistry(root / "models")
        model_id = registry.put(model, dataset_id="bench", method="kendall").model_id
        engine = SamplingEngine(registry.get_plan)

        # Paired rounds: each repeat times baseline and active back to
        # back, and the gate uses the median per-round ratio of
        # *process CPU time* — the exporter's JSON encoding + ring
        # appends and the probe thread's cycles are all CPU of this
        # process, while a noisy neighbor's wall-clock is not.
        baseline_times, active_times, ratios = [], [], []
        baseline_digest = active_digest = None
        exporter = TraceExporter(root / "traces", worker_label="bench")
        for _ in range(repeats):
            start = time.perf_counter()
            cpu_start = time.process_time()
            baseline_digest = serve_loop(engine, model_id, traced=False)
            baseline_cpu = time.process_time() - cpu_start
            baseline_times.append(time.perf_counter() - start)

            exporter.install()
            probe = UtilityProbe(
                registry,
                root / "observatory",
                sample_size=64,
                interval=1.0,
            ).start()
            try:
                start = time.perf_counter()
                cpu_start = time.process_time()
                active_digest = serve_loop(engine, model_id, traced=True)
                active_cpu = time.process_time() - cpu_start
                active_times.append(time.perf_counter() - start)
            finally:
                probe.stop()
                exporter.uninstall()
            ratios.append(active_cpu / baseline_cpu - 1.0)

        overhead = float(np.median(ratios))
        baseline_seconds = min(baseline_times)
        active_seconds = min(active_times)
        section = {
            "requests": requests,
            "draw_n": draw_n,
            "fit_records": n_fit,
            "baseline_seconds": baseline_seconds,
            "active_seconds": active_seconds,
            "overhead": overhead,
            "overhead_p25": float(np.percentile(ratios, 25)),
            "round_overheads": ratios,
            "deterministic": baseline_digest == active_digest,
            "traces_exported": exporter.exported,
        }
    print(
        f"  observatory  baseline {baseline_seconds:8.3f}s   "
        f"active {active_seconds:8.3f}s   (median {overhead:+.2%})   "
        f"{exporter.exported} traces exported"
    )
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--m", type=int, default=16, help="attributes (default 16)")
    parser.add_argument(
        "--n", type=int, default=100_000, help="records (default 100000)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool workers (default 4)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats; best is kept"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small workload, asserts determinism and overhead",
    )
    parser.add_argument("--smoke-m", type=int, default=8)
    parser.add_argument("--smoke-n", type=int, default=20_000)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.03,
        help="smoke mode fails if tracing costs more than this fraction "
        "of the untraced baseline on the serial backend (default 0.03)",
    )
    parser.add_argument(
        "--max-observatory-overhead",
        type=float,
        default=0.05,
        help="smoke mode fails if the active observatory (trace export "
        "+ per-request roots + probe loop) costs the serve path more "
        "than this fraction of its baseline (default 0.05)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_telemetry.json",
        help="result JSON path (default ./BENCH_telemetry.json)",
    )
    args = parser.parse_args(argv)

    document = run(args)
    document["observatory"] = run_observatory(args)

    failures = []
    for check, passed in document["determinism"].items():
        if not passed:
            failures.append(f"determinism violated: {check}")
    if not document["observatory"]["deterministic"]:
        failures.append(
            "determinism violated: seeded serve draws changed with the "
            "observatory active"
        )
    if args.smoke:
        # The hard overhead gate applies to the serial backend: pool
        # backends' wall-clock is dominated by scheduling jitter at
        # smoke sizes, which would make the gate flaky.
        overhead = document["results"]["serial"]["traced_overhead"]
        if overhead > args.max_overhead:
            failures.append(
                f"tracing overhead {overhead:.2%} exceeds the "
                f"{args.max_overhead:.0%} budget on the serial backend"
            )
        # Gate on the 25th-percentile round: single rounds on a busy
        # single-core box swing several percent even in CPU time, so
        # the gate asks whether overhead is *systematically* above
        # budget, not whether one round was.  The recorded ``overhead``
        # stays the (honest) median.
        observatory = document["observatory"]["overhead_p25"]
        if observatory > args.max_observatory_overhead:
            failures.append(
                f"observatory overhead {observatory:.2%} (p25 across "
                f"rounds) exceeds the "
                f"{args.max_observatory_overhead:.0%} serve-path budget"
            )

    document["failures"] = failures
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
