"""Benchmark the telemetry layer's overhead on the Kendall hot path.

The telemetry contract (docs/OBSERVABILITY.md) is that observability is
effectively free when nobody is looking: with no active trace the
``span`` context manager is a single contextvar read, and the metrics
the hot path touches are per-``map_tasks``-call, never per-pair.  This
benchmark measures that claim on the same workload shape as
``bench_parallel.py`` (default m=16 attributes, n=100k records — the
paper's §4.2 scalability experiment):

``baseline``
    ``kendall_tau_matrix`` with tracing inactive (the production
    default for library use).
``traced``
    The same call under an active ``trace_root`` — every span records
    timings and feeds the ``dpcopula_stage_seconds`` histogram.
``logged``
    Tracing inactive but debug logging configured to a sink, so the
    per-call logger plumbing is exercised too.

Besides wall-clock, the run *verifies* the telemetry contract that
matters: the traced matrix is bitwise identical to the untraced one,
on every execution backend.  Results land in ``BENCH_telemetry.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry.py           # full (m=16, n=100k)
    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke   # CI-sized, asserts

Exit status is non-zero if the traced output diverges or (in ``--smoke``
mode) disabled-telemetry overhead exceeds ``--max-overhead`` (default
3%) of the baseline.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.parallel import ExecutionContext
from repro.stats.kendall import kendall_tau_matrix
from repro.telemetry import configure_logging, metrics, trace


def make_workload(m: int, n: int, seed: int = 20140324) -> np.ndarray:
    """Same mixed-domain integer matrix as bench_parallel.py."""
    rng = np.random.default_rng(seed)
    domains = [(500, 50, 5)[j % 3] for j in range(m)]
    columns = [rng.integers(0, d, size=n) for d in domains]
    return np.column_stack(columns).astype(float)


def timed(fn, repeats: int):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(args) -> dict:
    m, n = (args.smoke_m, args.smoke_n) if args.smoke else (args.m, args.n)
    values = make_workload(m, n)
    pairs = m * (m - 1) // 2
    print(f"workload: m={m} ({pairs} pairs), n={n}, workers={args.workers}")

    backends = {
        "serial": ExecutionContext("serial"),
        "thread": ExecutionContext("thread", max_workers=args.workers),
        "process": ExecutionContext("process", max_workers=args.workers),
    }

    results = {}
    determinism = {}
    for name, context in backends.items():
        baseline_seconds, baseline_matrix = timed(
            lambda context=context: kendall_tau_matrix(values, context=context),
            args.repeats,
        )

        def traced_call(context=context):
            with trace.trace_root("bench"):
                return kendall_tau_matrix(values, context=context)

        traced_seconds, traced_matrix = timed(traced_call, args.repeats)

        overhead = traced_seconds / baseline_seconds - 1.0
        results[name] = {
            "baseline_seconds": baseline_seconds,
            "traced_seconds": traced_seconds,
            "traced_overhead": overhead,
        }
        determinism[f"{name}_traced_equals_untraced"] = bool(
            np.array_equal(baseline_matrix, traced_matrix)
        )
        print(
            f"  {name:<8} baseline {baseline_seconds:8.3f}s   "
            f"traced {traced_seconds:8.3f}s   ({overhead:+.2%})"
        )

    # Debug logging exercises the logger plumbing the hot path touches
    # (one fan-out record per map_tasks call); measured on serial only.
    configure_logging("debug", stream=io.StringIO())
    logged_seconds, _ = timed(
        lambda: kendall_tau_matrix(values, context=backends["serial"]),
        args.repeats,
    )
    configure_logging("off")
    results["serial"]["logged_seconds"] = logged_seconds
    results["serial"]["logged_overhead"] = (
        logged_seconds / results["serial"]["baseline_seconds"] - 1.0
    )
    print(
        f"  serial   debug-logged {logged_seconds:8.3f}s   "
        f"({results['serial']['logged_overhead']:+.2%})"
    )

    stage_series = metrics.REGISTRY.snapshot().get("dpcopula_stage_seconds", {})
    document = {
        "benchmark": "bench_telemetry",
        "workload": {"m": m, "n": n, "pairs": pairs, "workers": args.workers},
        "smoke": bool(args.smoke),
        "results": results,
        "determinism": determinism,
        "stage_histogram_series": len(stage_series.get("series", [])),
    }
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--m", type=int, default=16, help="attributes (default 16)")
    parser.add_argument(
        "--n", type=int, default=100_000, help="records (default 100000)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool workers (default 4)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats; best is kept"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small workload, asserts determinism and overhead",
    )
    parser.add_argument("--smoke-m", type=int, default=8)
    parser.add_argument("--smoke-n", type=int, default=20_000)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.03,
        help="smoke mode fails if tracing costs more than this fraction "
        "of the untraced baseline on the serial backend (default 0.03)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_telemetry.json",
        help="result JSON path (default ./BENCH_telemetry.json)",
    )
    args = parser.parse_args(argv)

    document = run(args)

    failures = []
    for check, passed in document["determinism"].items():
        if not passed:
            failures.append(f"determinism violated: {check}")
    if args.smoke:
        # The hard overhead gate applies to the serial backend: pool
        # backends' wall-clock is dominated by scheduling jitter at
        # smoke sizes, which would make the gate flaky.
        overhead = document["results"]["serial"]["traced_overhead"]
        if overhead > args.max_overhead:
            failures.append(
                f"tracing overhead {overhead:.2%} exceeds the "
                f"{args.max_overhead:.0%} budget on the serial backend"
            )

    document["failures"] = failures
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
