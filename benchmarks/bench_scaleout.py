"""Benchmark pre-fork scale-out: N SO_REUSEPORT workers, one plan store.

A single :class:`~http.server.ThreadingHTTPServer` process serves every
request under one GIL, so sample throughput stops scaling no matter how
fast the engine's vectorized passes get.  ``dpcopula serve --workers N``
breaks that cap with pre-fork workers that each bind the same port via
``SO_REUSEPORT`` and attach to one mmap-published copy of every compiled
sampler plan.  This benchmark measures that trajectory: closed-loop HTTP
clients hammer ``POST /models/<id>/sample`` against fleets of 1, 2 and 4
workers over the *same* model, and every response is checked bit for bit
against a serial ``ReleasedModel.sample`` draw with the same seed — the
scale-out must not cost determinism.

Honest numbers: speedup comes from real CPU parallelism, so the run
records ``cpu_count`` and flags itself ``cpu_limited`` when the fleet is
wider than the machine.  The speedup gate only applies where the cores
exist to back it (single-core CI runners record throughput but skip the
assertion, as CI does).

Usage::

    PYTHONPATH=src python benchmarks/bench_scaleout.py            # full
    PYTHONPATH=src python benchmarks/bench_scaleout.py --smoke    # CI-sized

Exit status is non-zero if any response is not bitwise identical to its
serial draw, or (given enough cores) if the widest fleet falls short of
``--min-speedup`` over the single-worker baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from bench_sampling import make_model
from repro.service import ModelRegistry, PreforkServer, ServiceConfig
from repro.service.prefork import SUPPORTS_REUSE_PORT


def _post_sample(port: int, model_id: str, n: int, seed: int):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/models/{model_id}/sample",
        data=json.dumps({"n": n, "seed": seed}).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        worker = response.headers.get("X-DPCopula-Worker")
        return json.loads(response.read()), worker


def run_fleet(
    model,
    workers: int,
    requests: int,
    records_per_request: int,
    clients: int,
    serial_by_seed,
):
    """Serve ``requests`` sample calls from a ``workers``-wide fleet.

    Returns (seconds, workers_observed, mismatches): wall-clock for the
    timed closed loop, the set of worker labels that answered, and how
    many responses failed the bitwise gate.
    """
    with tempfile.TemporaryDirectory(prefix="dpc-scaleout-") as tmp:
        config = ServiceConfig(
            data_dir=Path(tmp) / "data",
            epsilon_cap=10.0,
            workers=workers,
            shared_store_mode="mmap" if workers > 1 else "off",
        )
        config.ensure_layout()
        model_id = ModelRegistry(config.models_dir).put(
            model, dataset_id="bench", method="kendall"
        ).model_id
        supervisor = PreforkServer(config, port=0, quiet=True)
        supervisor.start(timeout=120)
        try:
            port = supervisor.port
            seeds = sorted(serial_by_seed)
            # Warm every worker's plan cache out of the timed region.
            for _ in range(workers * 4):
                _post_sample(port, model_id, records_per_request, seeds[0])

            counter = {"next": 0}
            counter_lock = threading.Lock()
            workers_observed = set()
            mismatches = [0]

            def client():
                while True:
                    with counter_lock:
                        index = counter["next"]
                        if index >= requests:
                            return
                        counter["next"] = index + 1
                    seed = seeds[index % len(seeds)]
                    body, worker = _post_sample(
                        port, model_id, records_per_request, seed
                    )
                    values = np.asarray(body["records"], dtype=np.int64)
                    with counter_lock:
                        workers_observed.add(worker)
                        if not np.array_equal(values, serial_by_seed[seed]):
                            mismatches[0] += 1

            threads = [threading.Thread(target=client) for _ in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            seconds = time.perf_counter() - start
        finally:
            supervisor.stop()
    return seconds, workers_observed, mismatches[0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        help="fleet widths to benchmark (default: 1 2 4; smoke: 1 2)",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--m", type=int, default=8, help="model attributes")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="required speedup of the widest fleet over 1 worker "
        "(default: 2.5, smoke: 1.5); only enforced when the machine "
        "has at least that many cores",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_scaleout.json",
    )
    args = parser.parse_args(argv)

    widths = args.workers or ([1, 2] if args.smoke else [1, 2, 4])
    requests = args.requests or (60 if args.smoke else 400)
    records = args.records or (50 if args.smoke else 200)
    clients = args.clients or max(8, 2 * max(widths))
    min_speedup = args.min_speedup or (1.5 if args.smoke else 2.5)
    cpu_count = os.cpu_count() or 1
    cpu_limited = cpu_count < max(widths)

    model = make_model(args.m, n_records=20_000)
    seeds = list(range(8))
    serial_by_seed = {
        seed: model.sample(records, rng=np.random.default_rng(seed)).values
        for seed in seeds
    }

    results = {}
    failures = []
    total_mismatches = 0
    for workers in widths:
        seconds, observed, mismatches = run_fleet(
            model, workers, requests, records, clients, serial_by_seed
        )
        total_mismatches += mismatches
        throughput = requests * records / seconds
        results[f"workers_{workers}"] = {
            "workers": workers,
            "seconds": seconds,
            "samples_per_second": throughput,
            "requests_per_second": requests / seconds,
            "workers_observed": sorted(observed, key=int),
            "bitwise_mismatches": mismatches,
        }
        print(
            f"workers={workers}: {throughput:,.0f} samples/s "
            f"({requests / seconds:,.1f} req/s, served by {sorted(observed)})"
        )

    base = results[f"workers_{widths[0]}"]["samples_per_second"]
    for entry in results.values():
        entry["speedup_vs_1_worker"] = entry["samples_per_second"] / base

    widest = results[f"workers_{max(widths)}"]
    if total_mismatches:
        failures.append(
            f"{total_mismatches} responses were not bitwise identical to "
            "their serial ReleasedModel.sample draws"
        )
    speedup_gate = "skipped (single run)"
    if len(widths) > 1:
        if cpu_count < max(widths):
            speedup_gate = (
                f"skipped ({cpu_count} core(s) cannot back "
                f"{max(widths)} workers)"
            )
        elif widest["speedup_vs_1_worker"] < min_speedup:
            speedup_gate = "failed"
            failures.append(
                f"{max(widths)}-worker speedup "
                f"{widest['speedup_vs_1_worker']:.2f}x is below the "
                f"{min_speedup:.2f}x gate"
            )
        else:
            speedup_gate = f"passed (>= {min_speedup:.2f}x)"

    document = {
        "benchmark": "bench_scaleout",
        "smoke": args.smoke,
        "cpu_count": cpu_count,
        "cpu_limited": cpu_limited,
        "supports_reuse_port": SUPPORTS_REUSE_PORT,
        "workload": {
            "m": args.m,
            "requests": requests,
            "records_per_request": records,
            "clients": clients,
            "fleet_widths": widths,
        },
        "determinism": {
            "all_responses_bitwise_identical_to_serial": total_mismatches == 0
        },
        "speedup_gate": speedup_gate,
        "results": results,
        "failures": failures,
    }
    args.output.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
