"""Benchmark the parallel execution layer on the Kendall-matrix hot path.

The paper's complexity story (§4.2, Figure 11) is dominated by the
``O(m² n̂ log n̂)`` pairwise Kendall stage, so that is the workload this
benchmark times, at the scalability experiment's shape (default m=16
attributes, n=100k records):

``serial``
    The benchmark baseline: the seed repository's serial hot path — a
    Python loop calling :func:`kendall_tau_merge` on raw float columns,
    re-deriving each column's rank structure once per pair.  Kept here
    (re-implemented locally) so the perf trajectory always measures
    against the same fixed reference.
``serial_optimized`` / ``thread`` / ``process``
    Today's :func:`kendall_tau_matrix` — cached per-column rank codings
    plus the compiled pair kernel — run through each
    :class:`~repro.parallel.ExecutionContext` backend.

Besides wall-clock, the run *verifies* the two contracts the layer
makes: every backend's matrix is bitwise identical, and the optimized
kernel equals the legacy implementation bitwise.  Results land in
``BENCH_parallel.json`` — the repo's perf-trajectory ledger for this
hot path.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full (m=16, n=100k)
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke    # CI-sized, asserts

Exit status is non-zero if determinism breaks or (in ``--smoke`` mode)
the parallel backends regress beyond ``--tolerance`` × the serial
baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.parallel import ExecutionContext
from repro.stats.kendall import kendall_tau_matrix, kendall_tau_merge


def legacy_kendall_tau_matrix(values: np.ndarray) -> np.ndarray:
    """The seed repository's serial matrix loop: the fixed perf baseline."""
    values = np.asarray(values, dtype=float)
    m = values.shape[1]
    matrix = np.eye(m)
    for j in range(m):
        for k in range(j + 1, m):
            tau = kendall_tau_merge(values[:, j], values[:, k])
            matrix[j, k] = matrix[k, j] = tau
    return matrix


def make_workload(m: int, n: int, seed: int = 20140324) -> np.ndarray:
    """A mixed-domain (continuous-ish, medium, small) integer matrix."""
    rng = np.random.default_rng(seed)
    domains = []
    for j in range(m):
        domains.append((500, 50, 5)[j % 3])
    columns = [rng.integers(0, d, size=n) for d in domains]
    return np.column_stack(columns).astype(float)


def timed(fn, repeats: int):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(args) -> dict:
    m, n = (args.smoke_m, args.smoke_n) if args.smoke else (args.m, args.n)
    values = make_workload(m, n)
    workers = args.workers
    pairs = m * (m - 1) // 2
    print(f"workload: m={m} ({pairs} pairs), n={n}, workers={workers}")

    results = {}
    seconds, baseline_matrix = timed(
        lambda: legacy_kendall_tau_matrix(values), args.repeats
    )
    results["serial"] = {
        "seconds": seconds,
        "implementation": "seed per-pair kendall_tau_merge loop (baseline)",
    }
    print(f"  serial (seed baseline)      {seconds:8.3f}s")

    contexts = {
        "serial_optimized": ExecutionContext("serial"),
        "thread": ExecutionContext("thread", max_workers=workers),
        "process": ExecutionContext("process", max_workers=workers),
    }
    matrices = {}
    for name, context in contexts.items():
        seconds, matrix = timed(
            lambda context=context: kendall_tau_matrix(values, context=context),
            args.repeats,
        )
        matrices[name] = matrix
        results[name] = {
            "seconds": seconds,
            "speedup_vs_serial": results["serial"]["seconds"] / seconds,
            "implementation": (
                f"rank-code cache + compiled pair kernel ({context.backend} backend)"
            ),
        }
        print(
            f"  {name:<27} {seconds:8.3f}s "
            f"({results[name]['speedup_vs_serial']:.2f}x vs serial)"
        )

    determinism = {
        "optimized_equals_baseline": bool(
            np.array_equal(baseline_matrix, matrices["serial_optimized"])
        ),
        "thread_equals_serial": bool(
            np.array_equal(matrices["serial_optimized"], matrices["thread"])
        ),
        "process_equals_serial": bool(
            np.array_equal(matrices["serial_optimized"], matrices["process"])
        ),
    }

    document = {
        "benchmark": "bench_parallel",
        "workload": {"m": m, "n": n, "pairs": pairs, "workers": workers},
        "smoke": bool(args.smoke),
        "results": results,
        "determinism": determinism,
    }
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--m", type=int, default=16, help="attributes (default 16)")
    parser.add_argument(
        "--n", type=int, default=100_000, help="records (default 100000)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool workers (default 4)"
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="timing repeats; best is kept"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small workload, asserts determinism and tolerance",
    )
    parser.add_argument("--smoke-m", type=int, default=8)
    parser.add_argument("--smoke-n", type=int, default=20_000)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="smoke mode fails if a parallel backend is slower than "
        "tolerance x the serial baseline (default 1.5)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_parallel.json",
        help="result JSON path (default ./BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)

    document = run(args)

    failures = []
    for check, passed in document["determinism"].items():
        if not passed:
            failures.append(f"determinism violated: {check}")
    if args.smoke:
        baseline = document["results"]["serial"]["seconds"]
        for name in ("thread", "process"):
            seconds = document["results"][name]["seconds"]
            if seconds > args.tolerance * baseline:
                failures.append(
                    f"{name} backend regressed: {seconds:.3f}s > "
                    f"{args.tolerance} x serial baseline {baseline:.3f}s"
                )

    document["failures"] = failures
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
