"""Extension bench: the extra baselines beyond the paper's comparison.

DPCube (cited by the paper as comparable to PSD) and the Qardaji
UG/AG grids (cited as the 2-D specialists) against DPCopula and PSD on
the 2-D workload where all of them apply.  This quantifies the paper's
two side-claims: DPCube ≈ PSD, and grids are strong specifically in 2-D.
"""

from conftest import run_once

from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.experiments.figures import FigureResult
from repro.experiments.runner import average_evaluation, make_method
from repro.queries.range_query import random_workload

METHODS = ("dpcopula-kendall", "psd", "dpcube", "ug", "ag")


def _run(scale):
    correlation = random_correlation_matrix(2, rng=20, strength=0.6)
    spec = SyntheticSpec(
        n_records=scale.n_records,
        domain_sizes=(scale.domain_size,) * 2,
        correlation=correlation,
    )
    data = gaussian_dependence_data(spec, rng=21)
    workload = random_workload(data.schema, scale.n_queries, rng=22)
    result = FigureResult(
        "extra-baselines",
        "2D: DPCopula vs PSD vs DPCube vs UG vs AG",
        {"n": scale.n_records, "domain": scale.domain_size},
    )
    for epsilon in (0.1, 1.0):
        for name in METHODS:
            method = make_method(name)
            timed = average_evaluation(
                method, data, workload, epsilon, n_runs=scale.n_runs, rng=23
            )
            result.add(
                epsilon, name, "relative_error",
                timed.evaluation.mean_relative_error,
            )
    return result


def bench_extra_baselines(benchmark, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    print()
    print(result.to_table())
    assert set(result.methods()) == set(METHODS)
