"""Benchmark the sampling engine on the serve hot path.

The serve-time cost of a sample request splits into *per-model* work
(PSD repair + Cholesky of the DP correlation matrix, normalizing every
noisy margin into CDF lookup tables) and *per-request* work (three
vectorized passes: latent normals, normal CDF, margin inversion).  The
pre-engine serve path redid all of the per-model work on every request;
the engine compiles it once into a :class:`~repro.engine.SamplerPlan`
and coalesces concurrent requests into shared elementwise passes.  This
benchmark times that trajectory at the paper's scalability shape
(default m=16 attributes) for a stream of serve-sized requests —
small draws (default 25 records, e.g. preview/inspection traffic)
where the per-model work the engine eliminates dominates wall-clock:

``serve_baseline``
    The pre-engine request path: ``ReleasedModel.sample`` per request,
    rebuilding margins, repairing/factorizing the correlation matrix
    and reconstructing the inverter every time.  The fixed baseline.
``plan``
    A compiled :class:`SamplerPlan` serving each request serially —
    per-model work hoisted out of the request path.
``engine_coalesced``
    ``SamplerPlan.sample_batch`` over micro-batches, the execution the
    request coalescer performs for concurrent traffic: per-request
    latent draws (bitwise safety) with one shared normal-CDF pass and
    one shared margin-inversion pass.

Besides throughput, the run *verifies* the engine's bitwise contract:
every plan-served request equals the pre-engine path bit for bit, and
every coalesced request equals its serial draw bit for bit.  Results
land in ``BENCH_sampling.json`` — the perf-trajectory ledger for the
serve hot path.

Usage::

    PYTHONPATH=src python benchmarks/bench_sampling.py            # full (m=16)
    PYTHONPATH=src python benchmarks/bench_sampling.py --smoke    # CI-sized, asserts

Exit status is non-zero if determinism breaks or the coalesced engine
path falls short of ``--min-speedup`` over the pre-engine baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.data.dataset import Attribute, Schema
from repro.engine import compile_plan
from repro.io import ReleasedModel


def make_model(m: int, n_records: int, seed: int = 20140324) -> ReleasedModel:
    """A released model with mixed domains and a random PSD correlation."""
    rng = np.random.default_rng(seed)
    domains = [(500, 50, 5)[j % 3] for j in range(m)]
    schema = Schema(
        [Attribute(f"a{j}", domain) for j, domain in enumerate(domains)]
    )
    # Random correlation: normalize a random Gram matrix to unit diagonal.
    basis = rng.standard_normal((m, m))
    gram = basis @ basis.T + m * np.eye(m)
    scale = np.sqrt(np.diag(gram))
    correlation = gram / np.outer(scale, scale)
    # Noisy margins: positive counts with Laplace-like perturbation.
    margin_counts = [
        np.maximum(rng.uniform(0.0, 2.0 * n_records / d, size=d), 0.0)
        for d in domains
    ]
    return ReleasedModel(
        margin_counts=margin_counts,
        correlation=correlation,
        schema=schema,
        n_records=n_records,
        epsilon=1.0,
    )


def timed(fn, repeats: int):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(args) -> dict:
    if args.smoke:
        m, requests, n = args.smoke_m, args.smoke_requests, args.smoke_n
    else:
        m, requests, n = args.m, args.requests, args.n
    batch = args.batch
    model = make_model(m, n_records=100_000)
    plan = compile_plan(model, "bench-model", generation=1)
    total_records = requests * n
    print(
        f"workload: m={m}, {requests} requests x {n} records "
        f"(coalesced batch={batch})"
    )

    results = {}

    def serve_baseline():
        return [
            model.sample(n, rng=np.random.default_rng(seed)).values
            for seed in range(requests)
        ]

    seconds, baseline_outputs = timed(serve_baseline, args.repeats)
    results["serve_baseline"] = {
        "seconds": seconds,
        "samples_per_second": total_records / seconds,
        "implementation": (
            "pre-engine serve path: ReleasedModel.sample per request "
            "(margins + Cholesky + inverter rebuilt every call)"
        ),
    }
    print(
        f"  serve_baseline    {seconds:8.3f}s "
        f"({results['serve_baseline']['samples_per_second']:12.0f} samples/s)"
    )

    def plan_serial():
        return [
            plan.sample(n, np.random.default_rng(seed)).values
            for seed in range(requests)
        ]

    seconds, plan_outputs = timed(plan_serial, args.repeats)
    results["plan"] = {
        "seconds": seconds,
        "samples_per_second": total_records / seconds,
        "speedup_vs_baseline": results["serve_baseline"]["seconds"] / seconds,
        "implementation": (
            "compiled SamplerPlan per request (cached Cholesky + "
            "inverter tables)"
        ),
    }
    print(
        f"  plan              {seconds:8.3f}s "
        f"({results['plan']['samples_per_second']:12.0f} samples/s, "
        f"{results['plan']['speedup_vs_baseline']:.2f}x)"
    )

    def engine_coalesced():
        outputs = [None] * requests
        for start in range(0, requests, batch):
            stop = min(start + batch, requests)
            drawn = plan.sample_batch(
                [(n, np.random.default_rng(seed)) for seed in range(start, stop)]
            )
            for offset, dataset in enumerate(drawn):
                outputs[start + offset] = dataset.values
        return outputs

    seconds, coalesced_outputs = timed(engine_coalesced, args.repeats)
    results["engine_coalesced"] = {
        "seconds": seconds,
        "samples_per_second": total_records / seconds,
        "speedup_vs_baseline": results["serve_baseline"]["seconds"] / seconds,
        "implementation": (
            "SamplerPlan.sample_batch micro-batches (per-request latent "
            "draws, shared normal-CDF + margin-inversion passes)"
        ),
    }
    print(
        f"  engine_coalesced  {seconds:8.3f}s "
        f"({results['engine_coalesced']['samples_per_second']:12.0f} samples/s, "
        f"{results['engine_coalesced']['speedup_vs_baseline']:.2f}x)"
    )

    determinism = {
        "plan_equals_baseline": all(
            np.array_equal(a, b)
            for a, b in zip(plan_outputs, baseline_outputs)
        ),
        "coalesced_equals_serial": all(
            np.array_equal(a, b)
            for a, b in zip(coalesced_outputs, plan_outputs)
        ),
    }

    return {
        "benchmark": "bench_sampling",
        "workload": {
            "m": m,
            "requests": requests,
            "records_per_request": n,
            "total_records": total_records,
            "coalesced_batch": batch,
        },
        "smoke": bool(args.smoke),
        "results": results,
        "determinism": determinism,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--m", type=int, default=16, help="attributes (default 16)")
    parser.add_argument(
        "--requests", type=int, default=800, help="sample requests (default 800)"
    )
    parser.add_argument(
        "--n", type=int, default=25, help="records per request (default 25)"
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=16,
        help="requests per coalesced micro-batch (default 16)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats; best is kept"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small workload, relaxed speedup floor",
    )
    parser.add_argument("--smoke-m", type=int, default=8)
    parser.add_argument("--smoke-requests", type=int, default=60)
    parser.add_argument("--smoke-n", type=int, default=50)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if engine_coalesced is below this speedup over the "
        "serve baseline (default 5.0, or 2.0 with --smoke)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_sampling.json",
        help="result JSON path (default ./BENCH_sampling.json)",
    )
    args = parser.parse_args(argv)
    if args.min_speedup is None:
        args.min_speedup = 2.0 if args.smoke else 5.0

    document = run(args)

    failures = []
    for check, passed in document["determinism"].items():
        if not passed:
            failures.append(f"determinism violated: {check}")
    speedup = document["results"]["engine_coalesced"]["speedup_vs_baseline"]
    if speedup < args.min_speedup:
        failures.append(
            f"engine_coalesced speedup {speedup:.2f}x is below the "
            f"{args.min_speedup}x floor"
        )

    document["failures"] = failures
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
