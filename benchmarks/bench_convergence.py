"""Section 4.3: the convergence theorem, measured.

Theorem 4.3 says the DPCopula-Kendall synthetic distribution converges
to the original joint distribution as n grows with ε fixed.  This bench
runs the empirical convergence study (margin sup-distance, Kendall
matrix error, Monte-Carlo joint-CDF distance) over a cardinality sweep
and prints the series; all three distances should fall.
"""

import numpy as np
from conftest import run_once

from repro.core.convergence import run_convergence_study
from repro.core.dpcopula import DPCopulaKendall
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data
from repro.experiments.figures import FigureResult

CORRELATION = np.array(
    [[1.0, 0.6, 0.3], [0.6, 1.0, 0.4], [0.3, 0.4, 1.0]]
)
CARDINALITIES = (500, 2_000, 8_000, 32_000)


def _make_dataset(n):
    spec = SyntheticSpec(
        n_records=n, domain_sizes=(100, 100, 100), correlation=CORRELATION
    )
    return gaussian_dependence_data(spec, rng=0)


def _run(scale):
    points = run_convergence_study(
        CARDINALITIES,
        make_dataset=_make_dataset,
        make_synthesizer=lambda: DPCopulaKendall(
            epsilon=1.0, subsample=None, rng=1
        ),
        rng=2,
    )
    result = FigureResult(
        "convergence",
        "Theorem 4.3: synthetic-vs-original distances vs cardinality",
        {"epsilon": 1.0, "m": 3},
    )
    for point in points:
        result.add(point.n_records, "dpcopula-kendall", "margin_sup_distance",
                   point.margin_sup_distance)
        result.add(point.n_records, "dpcopula-kendall", "tau_error",
                   point.tau_error)
        result.add(point.n_records, "dpcopula-kendall", "joint_cdf_sup_distance",
                   point.joint_cdf_sup_distance)
    return result


def bench_convergence_theorem(benchmark, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    print()
    print(result.to_table())
    margins = [v for _, v in result.series("dpcopula-kendall", "margin_sup_distance")]
    assert margins[-1] < margins[0], "margin distance must shrink with n"
