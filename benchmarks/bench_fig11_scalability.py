"""Figure 11: fit runtime vs. cardinality (a) and dimensionality (b).

Expected shape: every method roughly linear in n; DPCopula quadratic but
mild in m (the sampling optimisation bounds the Kendall cost); PSD
unaffected by domain size thanks to its point input.
"""

from conftest import run_once

from repro.experiments.figures import fig11_scalability


def bench_fig11_scalability(benchmark, bench_scale):
    result = run_once(
        benchmark,
        fig11_scalability,
        scale=bench_scale.with_(n_records=8_000),
        cardinalities=(2_000, 4_000, 8_000, 16_000),
    )
    print()
    print(result.to_table())
    assert set(result.metrics()) == {"seconds_vs_n", "seconds_vs_m"}
