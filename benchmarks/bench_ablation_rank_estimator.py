"""Ablation: Kendall's tau vs Spearman's rho as the rank estimator.

Section 3.2 justifies Kendall's tau over Spearman's rho ("better
statistical properties").  This bench measures the claim in the setting
that matters for DPCopula: the accuracy of the recovered Gaussian-copula
correlation parameter via the respective elliptical conversions
(``sin(π τ / 2)`` vs ``2 sin(π ρ_s / 6)``) on finite samples, across a
grid of true correlations and sample sizes (no DP noise — this isolates
the estimator, since a DP Spearman variant would additionally need its
own sensitivity analysis).
"""

import numpy as np
from conftest import run_once

from repro.experiments.figures import FigureResult
from repro.stats.correlation import (
    correlation_from_spearman,
    correlation_from_tau,
    spearman_rho,
)
from repro.stats.kendall import kendall_tau

SAMPLE_SIZES = (50, 200, 1000)
TRUE_RHOS = (0.2, 0.5, 0.8)
TRIALS = 60


def _run(scale):
    result = FigureResult(
        "ablation-rank-estimator",
        "Kendall vs Spearman: correlation recovery error",
        {"trials": TRIALS},
    )
    rng = np.random.default_rng(30)
    for n in SAMPLE_SIZES:
        for true_rho in TRUE_RHOS:
            cov = np.array([[1.0, true_rho], [true_rho, 1.0]])
            kendall_errors, spearman_errors = [], []
            for _ in range(TRIALS):
                latent = rng.multivariate_normal([0, 0], cov, size=n)
                via_tau = correlation_from_tau(
                    kendall_tau(latent[:, 0], latent[:, 1])
                )
                via_rho_s = correlation_from_spearman(
                    spearman_rho(latent[:, 0], latent[:, 1])
                )
                kendall_errors.append(abs(via_tau - true_rho))
                spearman_errors.append(abs(via_rho_s - true_rho))
            label = f"n={n},rho={true_rho}"
            result.add(label, "kendall", "mean_abs_error",
                       float(np.mean(kendall_errors)))
            result.add(label, "spearman", "mean_abs_error",
                       float(np.mean(spearman_errors)))
    return result


def bench_ablation_rank_estimator(benchmark, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    print()
    print(result.to_table())
    kendall = [v for _, v in result.series("kendall", "mean_abs_error")]
    spearman = [v for _, v in result.series("spearman", "mean_abs_error")]
    # The paper's claim, on average over the grid.
    assert float(np.mean(kendall)) <= float(np.mean(spearman)) * 1.2
