"""Benchmark DPCopula vs baselines on the workload-aware utility suite.

The paper's evaluation stops at random range-count queries; this bench
runs the full modern scorecard over the named scenario catalog
(:mod:`repro.experiments.scenarios`): anchored range queries, every
1..3-way coarsened marginal (TVD), and the train-on-synthetic /
test-on-real ML harness — DPCopula-Kendall against the in-repo
baselines (Privelet+, PSD, FP, P-HP) at each ε.

Besides the scenario × ε × method matrix, the run *verifies*:

* every reported metric is finite;
* the whole suite is deterministic — re-running one cell with the same
  seed reproduces its JSON byte for byte (the scenario generators, the
  splits, the workloads and every model are seed-driven);
* DPCopula's scores stay sane (marginal TVD and ML accuracy delta
  within loose floors — regressions in the sampler or the estimators
  show up here long before they look like "a slightly worse number").

Results land in ``BENCH_utility.json`` — the utility ledger the
evaluation docs point at (see docs/EVALUATION.md).

Usage::

    PYTHONPATH=src python benchmarks/bench_utility.py           # full matrix
    PYTHONPATH=src python benchmarks/bench_utility.py --smoke   # CI-sized

Exit status is non-zero on any failed check.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.scenarios import run_scenario  # noqa: E402

FULL_SCENARIOS = ("acs-income", "acs-employment", "credit-default", "zipf-mixed")
FULL_EPSILONS = (0.5, 1.0)
FULL_METHODS = ("dpcopula-kendall", "privelet", "psd", "fp", "php")

SMOKE_SCENARIOS = ("smoke-mixed",)
SMOKE_EPSILONS = (1.0,)
SMOKE_METHODS = ("dpcopula-kendall", "psd")

#: Sanity ceilings for DPCopula at ε ≥ 0.5 on these scenarios.  Loose on
#: purpose: they catch a broken sampler/estimator (TVD near the ~1.0 of
#: noise-dominated baselines), not ordinary statistical wiggle.
MAX_DPCOPULA_AVG_TVD = 0.6
MAX_DPCOPULA_ACC_DELTA = 0.35


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def _check_cell(cell: dict, failures: list) -> None:
    label = f"{cell['scenario']} eps={cell['epsilon']}"
    for method in cell["methods"]:
        name = method["method"]
        flat = [
            method["range_queries"]["mean_relative_error"],
            method["marginals"]["avg_tvd"],
            method["marginals"]["max_tvd"],
        ]
        if method["ml"] is not None:
            flat.extend(
                score["accuracy_delta"] for score in method["ml"]["models"]
            )
        if not all(_finite(value) for value in flat):
            failures.append(f"{label} {name}: non-finite metric in {flat}")
        if name.startswith("dpcopula"):
            if method["marginals"]["avg_tvd"] > MAX_DPCOPULA_AVG_TVD:
                failures.append(
                    f"{label} {name}: avg marginal TVD "
                    f"{method['marginals']['avg_tvd']:.3f} exceeds the "
                    f"{MAX_DPCOPULA_AVG_TVD} sanity ceiling"
                )
            if method["ml"] is not None:
                worst = max(
                    score["accuracy_delta"] for score in method["ml"]["models"]
                )
                if worst > MAX_DPCOPULA_ACC_DELTA:
                    failures.append(
                        f"{label} {name}: ML accuracy delta {worst:.3f} "
                        f"exceeds the {MAX_DPCOPULA_ACC_DELTA} sanity ceiling"
                    )


def run(args) -> dict:
    if args.smoke:
        scenarios, epsilons, methods = SMOKE_SCENARIOS, SMOKE_EPSILONS, SMOKE_METHODS
    else:
        scenarios, epsilons, methods = FULL_SCENARIOS, FULL_EPSILONS, FULL_METHODS

    cells = []
    failures: list = []
    for scenario in scenarios:
        for epsilon in epsilons:
            started = time.perf_counter()
            result = run_scenario(
                scenario,
                methods=methods,
                epsilon=epsilon,
                seed=args.seed,
                n_queries=args.queries,
                max_marginals=args.max_marginals,
            )
            elapsed = time.perf_counter() - started
            cell = result.to_dict()
            cell["cell_seconds"] = elapsed
            cells.append(cell)
            _check_cell(cell, failures)
            best = min(
                cell["methods"], key=lambda m: m["marginals"]["avg_tvd"]
            )
            print(
                f"{scenario:<16} eps={epsilon:<4g} {elapsed:6.1f}s  "
                f"best marginal TVD: {best['method']} "
                f"({best['marginals']['avg_tvd']:.4f})"
            )

    # Determinism: the first cell re-run with the same seed must
    # reproduce its JSON exactly (timings excluded, they never enter
    # to_dict()).
    repeat = run_scenario(
        scenarios[0],
        methods=methods,
        epsilon=epsilons[0],
        seed=args.seed,
        n_queries=args.queries,
        max_marginals=args.max_marginals,
    ).to_dict()
    first = {k: v for k, v in cells[0].items() if k != "cell_seconds"}
    # fit_seconds is wall-clock and legitimately differs; strip it.
    for document in (first, repeat):
        for method in document["methods"]:
            method.pop("fit_seconds", None)
    deterministic = json.dumps(first, sort_keys=True) == json.dumps(
        repeat, sort_keys=True
    )
    if not deterministic:
        failures.append("re-running a cell with the same seed changed its report")

    return {
        "benchmark": "bench_utility",
        "smoke": bool(args.smoke),
        "seed": args.seed,
        "workload": {
            "scenarios": list(scenarios),
            "epsilons": list(epsilons),
            "methods": list(methods),
            "n_queries": args.queries,
            "max_marginals_per_order": args.max_marginals,
        },
        "deterministic": deterministic,
        "cells": cells,
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--queries",
        type=int,
        default=60,
        help="anchored range queries per cell (default 60)",
    )
    parser.add_argument(
        "--max-marginals",
        type=int,
        default=20,
        help="marginal cap per order (default 20)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: one tiny scenario, two methods",
    )
    parser.add_argument(
        "--output",
        default="BENCH_utility.json",
        help="result JSON path (default ./BENCH_utility.json)",
    )
    args = parser.parse_args(argv)

    document = run(args)
    Path(args.output).write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n"
    )
    print(f"\nresults -> {args.output}")
    if document["failures"]:
        for failure in document["failures"]:
            print(f"FAILED: {failure}", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
