"""Figure 8: query accuracy vs. query range size (2-D synthetic, ε = 0.1).

Expected shape: relative error falls with range size while absolute
error rises (small ranges have tiny true answers); DPCopula below PSD
and P-HP throughout.
"""

from conftest import run_once

from repro.experiments.figures import fig08_range_size


def bench_fig08_range_size(benchmark, bench_scale):
    result = run_once(
        benchmark,
        fig08_range_size,
        scale=bench_scale,
        epsilon=0.1,
        selectivities=(1e-4, 1e-3, 1e-2, 0.05, 0.25),
    )
    print()
    print(result.to_table())
    assert set(result.metrics()) == {"relative_error", "absolute_error"}
