"""Figure 9: relative error vs. marginal distribution (8-D synthetic).

Gaussian, uniform and zipf margins under a Gaussian dependence, across
the ε sweep.  Expected shape: DPCopula below PSD for every margin
family, with the clearest gap on skewed (zipf) data.
"""

from conftest import run_once

from repro.experiments.figures import fig09_distribution


def bench_fig09_distribution(benchmark, bench_scale):
    result = run_once(
        benchmark,
        fig09_distribution,
        scale=bench_scale.with_(epsilons=(0.1, 1.0)),
    )
    print()
    print(result.to_table())
    margins = {m.split(":")[1] for m in result.methods()}
    assert margins == {"gaussian", "uniform", "zipf"}
