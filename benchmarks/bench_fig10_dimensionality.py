"""Figure 10: query accuracy vs. dimensionality (2-D to 8-D, |A_i| fixed).

Expected shape: both relative and absolute error grow with m for both
methods (sparser data, thinner per-piece budget slices); DPCopula stays
below PSD with a widening gap.
"""

from conftest import run_once

from repro.experiments.figures import fig10_dimensionality


def bench_fig10_dimensionality(benchmark, bench_scale):
    result = run_once(benchmark, fig10_dimensionality, scale=bench_scale)
    print()
    print(result.to_table())
    xs = [x for x, _ in result.series("dpcopula-kendall", "relative_error")]
    assert xs == list(bench_scale.dimensions)
