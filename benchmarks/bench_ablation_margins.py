"""Ablation: which 1-D publisher should supply DPCopula's DP margins?

Section 4.1 notes DPCopula "can take advantage of any existing methods to
compute DP marginal histograms" and the paper picks EFPA.  This bench
swaps the margin publisher (EFPA / identity / NoiseFirst /
StructureFirst / Privelet) inside DPCopula-Kendall on a smooth
(gaussian) and a spiky (zipf) margin family and reports the end-to-end
range-query error of the synthetic data.
"""

import numpy as np
from conftest import run_once

from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.experiments.figures import FigureResult
from repro.experiments.runner import average_evaluation, make_method
from repro.queries.range_query import random_workload

PUBLISHERS = (
    "efpa",
    "identity",
    "noisefirst",
    "structurefirst",
    "privelet",
    "hierarchical",
)


def _run(scale):
    result = FigureResult(
        "ablation-margins",
        "DPCopula-Kendall error by margin publisher",
        {"n": scale.n_records, "domain": scale.domain_size, "epsilon": 0.5},
    )
    correlation = random_correlation_matrix(4, rng=1, strength=0.6)
    for margins in ("gaussian", "zipf"):
        spec = SyntheticSpec(
            n_records=scale.n_records,
            domain_sizes=(scale.domain_size,) * 4,
            margins=margins,
            correlation=correlation,
        )
        data = gaussian_dependence_data(spec, rng=2)
        workload = random_workload(data.schema, scale.n_queries, rng=3)
        for name in PUBLISHERS:
            method = make_method("dpcopula-kendall", margin_publisher=name)
            timed = average_evaluation(
                method, data, workload, epsilon=0.5, n_runs=scale.n_runs, rng=4
            )
            result.add(
                margins, name, "relative_error", timed.evaluation.mean_relative_error
            )
    return result


def bench_ablation_margin_publishers(benchmark, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    print()
    print(result.to_table())
    assert set(result.methods()) == set(PUBLISHERS)
