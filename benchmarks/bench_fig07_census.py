"""Figure 7: relative error vs. privacy budget on the census datasets.

(a) US census (4 attributes, simulated): DPCopula-hybrid vs PSD, FP,
    Privelet+ and P-HP (dense baselines run on a coarsened grid — the
    paper likewise drops grid-input methods where bins explode);
(b) Brazil census (8 attributes, simulated): DPCopula-hybrid vs the
    point-input baselines (the 1.8·10^11-cell grid is unmaterializable,
    as in the paper).

Expected shape: DPCopula below every baseline, gap widening as ε shrinks.
"""

from conftest import run_once

from repro.experiments.figures import fig07_census


def bench_fig07a_us_census(benchmark, bench_scale):
    result = run_once(
        benchmark,
        fig07_census,
        "us",
        scale=bench_scale.with_(n_records=10_000, n_queries=40),
        dense_max_domain=128,
    )
    print()
    print(result.to_table())
    assert "dpcopula-hybrid" in result.methods()


def bench_fig07b_brazil_census(benchmark, bench_scale):
    result = run_once(
        benchmark,
        fig07_census,
        "brazil",
        scale=bench_scale.with_(n_records=10_000, n_queries=40),
    )
    print()
    print(result.to_table())
    assert "dpcopula-hybrid" in result.methods()
