"""CI smoke test for the fleet observatory.

Boots a real pre-fork fleet (2 SO_REUSEPORT workers) over a pre-seeded
data directory — a registered model and a privacy-ledger entry — with
the continuous utility probe enabled, then asserts the observatory's
externally visible contract:

* ``GET /budget`` replays the ledger into per-dataset burn-down
  timelines (and never blocks on the accountant's append lock);
* ``GET /debug/observatory`` answers from any worker, with probe
  results published by the fit owner;
* every response carries an ``X-Request-ID`` header;
* the durable trace-export ring has at least one trace file;
* the probe consumed zero ε — the ledger is byte-identical.

Usage::

    PYTHONPATH=src python tools/observatory_smoke.py

Exit status 0 on success; any assertion failure is fatal.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.core.dpcopula import DPCopulaKendall
from repro.data.dataset import Attribute, Dataset, Schema
from repro.io import ReleasedModel
from repro.service import ModelRegistry, PreforkServer, ServiceConfig


def _get(port: int, path: str):
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    with urllib.request.urlopen(request, timeout=30) as response:
        return (
            response.status,
            json.loads(response.read()),
            dict(response.headers),
        )


def seed_data_dir(root: Path) -> str:
    """A registered model plus one ledger charge, all offline."""
    config = ServiceConfig(data_dir=root)
    config.ensure_layout()

    rng = np.random.default_rng(7)
    values = np.column_stack(
        [rng.integers(0, 40, size=400), rng.integers(0, 30, size=400)]
    )
    dataset = Dataset(values, Schema([Attribute("a", 40), Attribute("b", 30)]))
    synthesizer = DPCopulaKendall(epsilon=1.0, rng=0)
    synthesizer.fit(dataset)
    model = ReleasedModel.from_synthesizer(synthesizer)
    registry = ModelRegistry(config.models_dir)
    model_id = registry.put(model, dataset_id="smoke", method="kendall").model_id

    entry = {
        "dataset": "smoke",
        "epsilon": 1.0,
        "kind": "charge",
        "label": f"fit:{model_id}",
        "key": f"fit:{model_id}",
        "timestamp": time.time(),
    }
    config.ledger_path.write_text(json.dumps(entry, sort_keys=True) + "\n")
    return model_id


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="observatory-smoke-") as tmp:
        root = Path(tmp)
        model_id = seed_data_dir(root)
        ledger_before = (root / "ledger.jsonl").read_bytes()

        config = ServiceConfig(
            data_dir=root,
            workers=2,
            shared_store_mode="mmap",
            probe_interval_seconds=0.25,
            probe_sample_size=64,
        )
        supervisor = PreforkServer(config, port=0, quiet=True)
        supervisor.start(timeout=90)
        try:
            port = supervisor.port

            status, budget, headers = _get(port, "/budget")
            assert status == 200, f"/budget returned {status}"
            assert headers.get("X-Request-ID"), "missing X-Request-ID header"
            by_id = {d["dataset_id"]: d for d in budget["datasets"]}
            assert by_id["smoke"]["epsilon_spent"] == 1.0, budget
            assert by_id["smoke"]["events"][0]["label"] == f"fit:{model_id}"

            # The fit owner's probe loop publishes within a few cycles.
            deadline = time.monotonic() + 60
            observatory = None
            while time.monotonic() < deadline:
                status, observatory, _ = _get(port, "/debug/observatory")
                assert status == 200, f"/debug/observatory returned {status}"
                if observatory.get("probes"):
                    break
                time.sleep(0.2)
            assert observatory and observatory.get("probes"), (
                "probe results never appeared in /debug/observatory"
            )
            probed = {m["model_id"] for m in observatory["probes"]["models"]}
            assert probed == {model_id}, observatory["probes"]

            # Request traffic lands in the durable per-worker ring.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                traces = list(config.traces_dir.glob("trace-*.jsonl*"))
                if traces:
                    break
                time.sleep(0.2)
            assert traces, "no trace-export file appeared"

            assert (root / "ledger.jsonl").read_bytes() == ledger_before, (
                "probing must not write to the privacy ledger"
            )
        finally:
            supervisor.stop()

    print("observatory smoke: OK")
    print(f"  model probed:   {model_id}")
    print(f"  trace files:    {[p.name for p in traces]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
