#!/usr/bin/env python
"""Documentation checks, run in CI (`python tools/check_docs.py`).

Four checks over ``README.md`` and ``docs/*.md``:

1. **Links** — every relative markdown link resolves to an existing
   file or directory in the repository.
2. **Reachability** — every page under ``docs/`` is reachable by
   following links from the ``docs/README.md`` index (no orphan docs).
3. **Doctests** — every fenced ```` ```pycon ```` example runs and
   produces the shown output (the same contract as docstring examples).
4. **CLI flags** — every ``--flag`` a ``dpcopula <command>`` line in a
   ```` ```bash ```` block mentions actually exists on that
   subcommand's argument parser, so the docs cannot drift from the CLI.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\S*)\s*$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    return [REPO_ROOT / "README.md", *sorted(DOCS_DIR.glob("*.md"))]


def _iter_prose_lines(path: Path) -> Iterable[Tuple[int, str]]:
    """(lineno, line) for lines outside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield lineno, line


def extract_code_blocks(path: Path, language: str) -> List[Tuple[int, str]]:
    """(first-content-lineno, text) of every ```<language> block."""
    blocks: List[Tuple[int, str]] = []
    current: List[str] = []
    start = 0
    in_block = False
    in_other_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        fence = FENCE_RE.match(line.strip())
        if fence:
            if in_block:
                blocks.append((start, "\n".join(current)))
                current, in_block = [], False
            elif in_other_fence:
                in_other_fence = False
            elif fence.group(1) == language:
                in_block, start = True, lineno + 1
            else:
                in_other_fence = True
            continue
        if in_block:
            current.append(line)
    return blocks


def relative_links(path: Path) -> List[Tuple[int, str]]:
    """(lineno, target) for every relative link outside code blocks."""
    links = []
    for lineno, line in _iter_prose_lines(path):
        for target in LINK_RE.findall(line):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            links.append((lineno, target.split("#")[0]))
    return links


def check_links(files: List[Path]) -> List[str]:
    errors = []
    for path in files:
        for lineno, target in relative_links(path):
            if not target:
                continue
            if not (path.parent / target).exists():
                rel = path.relative_to(REPO_ROOT)
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def check_reachability() -> List[str]:
    """Every docs/*.md must be reachable from the docs/README.md index."""
    index = DOCS_DIR / "README.md"
    if not index.exists():
        return ["docs/README.md: missing documentation index"]
    seen: Set[Path] = set()
    frontier = [index]
    while frontier:
        page = frontier.pop()
        if page in seen or page.suffix != ".md" or not page.exists():
            continue
        seen.add(page)
        for _, target in relative_links(page):
            if target:
                frontier.append((page.parent / target).resolve())
    return [
        f"docs/{orphan.name}: not reachable from docs/README.md"
        for orphan in sorted(DOCS_DIR.glob("*.md"))
        if orphan.resolve() not in seen
    ]


def check_doctests(files: List[Path]) -> List[str]:
    parser = doctest.DocTestParser()
    errors = []
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        for lineno, text in extract_code_blocks(path, "pycon"):
            test = parser.get_doctest(
                text, {}, name=str(rel), filename=str(path), lineno=lineno - 1
            )
            if not test.examples:
                continue
            transcript: List[str] = []
            runner = doctest.DocTestRunner(verbose=False)
            runner.run(test, out=transcript.append)
            if runner.failures:
                errors.append(
                    f"{rel}:{lineno}: doctest failure\n"
                    + "".join(transcript).rstrip()
                )
    return errors


def _cli_option_index() -> Dict[str, Set[str]]:
    """Subcommand name -> the option strings its parser accepts."""
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    index: Dict[str, Set[str]] = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                index[name] = {
                    option
                    for sub_action in subparser._actions
                    for option in sub_action.option_strings
                }
    return index


def check_cli_flags(files: List[Path]) -> List[str]:
    index = _cli_option_index()
    errors = []
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        for start, text in extract_code_blocks(path, "bash"):
            for offset, line in enumerate(text.splitlines()):
                tokens = line.split("#")[0].split()
                if "dpcopula" in tokens:
                    tokens = tokens[tokens.index("dpcopula") + 1 :]
                elif tokens[:3] == ["python", "-m", "repro"]:
                    tokens = tokens[3:]
                else:
                    continue
                if not tokens:
                    continue
                command, flags = tokens[0], tokens[1:]
                lineno = start + offset
                if command not in index:
                    errors.append(
                        f"{rel}:{lineno}: unknown dpcopula command "
                        f"{command!r} (commands: {sorted(index)})"
                    )
                    continue
                for flag in flags:
                    if not flag.startswith("--"):
                        continue
                    name = flag.split("=")[0]
                    if name not in index[command]:
                        errors.append(
                            f"{rel}:{lineno}: dpcopula {command} has no "
                            f"flag {name}"
                        )
    return errors


def run_all() -> List[str]:
    files = doc_files()
    return [
        *check_links(files),
        *check_reachability(),
        *check_doctests(files),
        *check_cli_flags(files),
    ]


def main() -> int:
    errors = run_all()
    for error in errors:
        print(error)
    count = len(doc_files())
    if errors:
        print(f"check_docs: {len(errors)} problem(s) across {count} files")
        return 1
    print(f"check_docs: {count} files OK (links, reachability, doctests, CLI flags)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
