"""User-facing synthesis command line.

``python -m repro`` (or the installed ``dpcopula`` script) is the tool a
data curator actually runs: read an integer-coded CSV, synthesize a DP
copy with a chosen method and budget, write the synthetic CSV, and print
the budget ledger plus a utility report.

Examples
--------
Synthesize with the default DPCopula-Kendall at ε = 1 (``fit`` is an
alias of ``synthesize``; ``--profile`` prints a per-stage timing tree)::

    dpcopula synthesize data.csv synthetic.csv --epsilon 1.0
    dpcopula fit data.csv synthetic.csv --profile

Use the hybrid for data with small-domain attributes, persist the model::

    dpcopula synthesize data.csv out.csv --method hybrid --save-model m.npz

Re-sample a previously released model (no new privacy cost)::

    dpcopula resample m.npz more.csv --n 50000

Inspect a dataset's schema::

    dpcopula inspect data.csv
    dpcopula inspect data.csv --json

Run the long-running synthesis service (upload datasets, fit models,
sample over HTTP — see docs/SERVICE.md)::

    dpcopula serve --data-dir ./service-data --port 8639

List, inspect or cancel the service's durable fit jobs (works offline
against the same data directory — see docs/RELIABILITY.md)::

    dpcopula jobs --data-dir ./service-data
    dpcopula jobs --data-dir ./service-data --show 3f2a9b0c11de
    dpcopula jobs --data-dir ./service-data --cancel 3f2a9b0c11de

Watch the fleet: privacy-budget burn-down per dataset, continuous
utility-probe results and drift events (live over HTTP, or offline
against the data directory — see docs/OBSERVABILITY.md)::

    dpcopula budget --url http://127.0.0.1:8639
    dpcopula budget --data-dir ./service-data --epsilon-cap 10.0
    dpcopula top --url http://127.0.0.1:8639 --watch 2
    dpcopula top --data-dir ./service-data
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import List, Optional

from contextlib import nullcontext

from repro.core.dpcopula import DPCopulaKendall, DPCopulaMLE
from repro.core.hybrid import DPCopulaHybrid
from repro.io import ReleasedModel, load_dataset_csv, save_dataset_csv
from repro.queries.metrics import utility_report
from repro.telemetry import trace


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``dpcopula`` command."""
    parser = argparse.ArgumentParser(
        prog="dpcopula",
        description="Differentially private data synthesization (DPCopula).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    synthesize = commands.add_parser(
        "synthesize",
        aliases=["fit"],
        help="fit DPCopula and write a synthetic CSV",
    )
    synthesize.add_argument("input", help="integer-coded CSV (name[domain] headers)")
    synthesize.add_argument("output", help="synthetic CSV to write")
    synthesize.add_argument(
        "--epsilon", type=float, default=1.0, help="privacy budget (default 1.0)"
    )
    synthesize.add_argument(
        "--method",
        choices=("kendall", "mle", "hybrid"),
        default="kendall",
        help="estimation method (default kendall)",
    )
    synthesize.add_argument(
        "--k", type=float, default=8.0, help="budget ratio eps1/eps2 (default 8)"
    )
    synthesize.add_argument(
        "--n", type=int, default=None, help="synthetic record count (default: input n)"
    )
    synthesize.add_argument("--seed", type=int, default=None, help="RNG seed")
    synthesize.add_argument(
        "--parallel-backend",
        choices=("serial", "thread", "process"),
        default=None,
        help="execution backend for the fit's hot loops (default: "
        "DPCOPULA_PARALLEL env var, else serial); results are identical "
        "on every backend for a fixed --seed",
    )
    synthesize.add_argument(
        "--parallel-workers",
        type=int,
        default=None,
        help="worker budget for --parallel-backend (default: available CPUs)",
    )
    synthesize.add_argument(
        "--save-model",
        metavar="PATH",
        default=None,
        help="persist the released model (NPZ) for later re-sampling",
    )
    synthesize.add_argument(
        "--report",
        action="store_true",
        help="print a distributional utility report (original vs synthetic)",
    )
    synthesize.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing tree (margins, correlation, "
        "PSD repair, sampling) after synthesis",
    )

    resample = commands.add_parser(
        "resample", help="sample from a persisted released model"
    )
    resample.add_argument("model", help="NPZ written by synthesize --save-model")
    resample.add_argument("output", help="synthetic CSV to write")
    resample.add_argument("--n", type=int, default=None, help="record count")
    resample.add_argument("--seed", type=int, default=None, help="RNG seed")
    resample.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing tree after sampling",
    )

    inspect = commands.add_parser("inspect", help="print a dataset's schema")
    inspect.add_argument("input", help="integer-coded CSV")
    inspect.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (same document as the service's "
        "dataset-inspect endpoint)",
    )

    evaluate = commands.add_parser(
        "evaluate",
        help="score DPCopula against baselines on a named scenario "
        "(range queries, k-way marginals, ML utility — see "
        "docs/EVALUATION.md)",
    )
    evaluate.add_argument(
        "--scenario",
        default=None,
        help="scenario name (see --list); required unless --list is given",
    )
    evaluate.add_argument(
        "--list",
        action="store_true",
        help="list the scenario catalog and exit",
    )
    evaluate.add_argument(
        "--methods",
        default=None,
        metavar="NAME,NAME,...",
        help="comma-separated method registry names (default: "
        "dpcopula-kendall,privelet,psd,fp,php)",
    )
    evaluate.add_argument(
        "--epsilon", type=float, default=1.0, help="privacy budget (default 1.0)"
    )
    evaluate.add_argument(
        "--seed",
        type=int,
        default=0,
        help="scenario seed: fixes the generated data, splits and "
        "workloads (default 0)",
    )
    evaluate.add_argument(
        "--queries",
        type=int,
        default=60,
        help="anchored range queries in the workload (default 60)",
    )
    evaluate.add_argument(
        "--marginal-k",
        type=int,
        default=3,
        help="evaluate all j-way marginals for j = 1..K (default 3)",
    )
    evaluate.add_argument(
        "--max-marginals",
        type=int,
        default=20,
        help="cap per marginal order, deterministic subsample beyond it "
        "(default 20)",
    )
    evaluate.add_argument(
        "--synthetic-records",
        type=int,
        default=None,
        help="records to materialize from structure-releasing baselines "
        "for the ML workload (default: the training-set size)",
    )
    evaluate.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the full JSON report to PATH",
    )
    evaluate.add_argument(
        "--json", action="store_true", help="print the JSON report to stdout"
    )

    serve = commands.add_parser(
        "serve", help="run the synthesis HTTP service (see docs/SERVICE.md)"
    )
    serve.add_argument(
        "--data-dir",
        required=True,
        help="directory for datasets, registered models and the privacy ledger",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8639, help="bind port")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pre-fork HTTP worker processes sharing the port via "
        "SO_REUSEPORT (default: DPCOPULA_WORKERS env var, else 1 — the "
        "single-process server); worker 0 owns fitting, every worker "
        "serves sampling",
    )
    serve.add_argument(
        "--epsilon-cap",
        type=float,
        default=10.0,
        help="lifetime per-dataset privacy cap enforced by the accountant "
        "(default 10.0)",
    )
    serve.add_argument(
        "--fit-workers",
        type=int,
        default=1,
        help="background fit-worker pool size (default 1: strictly "
        "serial, submission-ordered fitting)",
    )
    serve.add_argument(
        "--parallel-backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="execution backend each fit uses for its hot loops "
        "(default serial)",
    )
    serve.add_argument(
        "--parallel-workers",
        type=int,
        default=None,
        help="worker budget for --parallel-backend (default: available CPUs)",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "off"),
        default=None,
        help="structured JSON logging level for the service (overridden "
        "by the DPCOPULA_LOG environment variable)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.add_argument(
        "--max-queued-fits",
        type=int,
        default=32,
        help="bound on waiting fit jobs; submissions past it get "
        "429 + Retry-After (default 32; 0 disables the bound)",
    )
    serve.add_argument(
        "--fit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per fit job, enforced cooperatively "
        "at stage boundaries (default: no deadline)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-connection socket timeout for HTTP requests "
        "(default 30; 0 disables)",
    )
    serve.add_argument(
        "--coalesce-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="how long the sampling engine holds a batch open for "
        "concurrent sample requests to join (default 0: no idle wait; "
        "requests still coalesce while a batch executes)",
    )
    serve.add_argument(
        "--max-coalesced-records",
        type=int,
        default=262_144,
        help="record budget per coalesced sampling batch (default 262144)",
    )
    serve.add_argument(
        "--sample-queue-limit",
        type=int,
        default=256,
        help="bound on sample requests parked in the coalescer; arrivals "
        "past it get 429 + Retry-After (default 256; 0 disables the bound)",
    )
    serve.add_argument(
        "--shared-store",
        choices=("off", "mmap", "shm"),
        default=None,
        help="publish compiled sampler plans for pooled workers: "
        "memory-mapped files under <data-dir>/plans, or "
        "multiprocessing shared memory (default: mmap when --workers > 1 "
        "so the fleet serves one physical copy per plan, else off)",
    )
    serve.add_argument(
        "--model-cache-size",
        type=int,
        default=128,
        help="LRU bound on released models kept in server memory "
        "(default 128; 0 disables the bound)",
    )
    serve.add_argument(
        "--slow-request-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="requests slower than this are logged with their request id "
        "and counted (default 1.0; 0 disables slow-request logging)",
    )
    serve.add_argument(
        "--latency-buckets",
        default=None,
        metavar="SECONDS,SECONDS,...",
        help="override latency-histogram bucket boundaries, e.g. "
        "'0.01,0.1,1,10' (default: built-in 1ms-5min spread; the "
        "DPCOPULA_LATENCY_BUCKETS environment variable wins over this)",
    )
    serve.add_argument(
        "--no-trace-export",
        action="store_true",
        help="disable the durable per-worker trace-export ring under "
        "<data-dir>/traces/",
    )
    serve.add_argument(
        "--probe-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="period of the continuous utility-probe loop on the fit "
        "owner (default 0: disabled); probes draw deterministic samples "
        "from served models and cost zero privacy budget",
    )
    serve.add_argument(
        "--probe-sample-size",
        type=int,
        default=512,
        help="records drawn per model per probe cycle (default 512)",
    )
    serve.add_argument(
        "--probe-drift-threshold",
        type=float,
        default=0.05,
        help="emit a drift event when a hot-swapped generation's released "
        "statistics shift beyond this (default 0.05)",
    )

    budget = commands.add_parser(
        "budget",
        help="render per-dataset privacy-budget burn-down timelines "
        "from a service's ledger",
    )
    budget_source = budget.add_mutually_exclusive_group(required=True)
    budget_source.add_argument(
        "--data-dir",
        default=None,
        help="read the ledger offline from a serve data directory",
    )
    budget_source.add_argument(
        "--url",
        default=None,
        help="fetch GET /budget from a running service, e.g. "
        "http://127.0.0.1:8639",
    )
    budget.add_argument(
        "--epsilon-cap",
        type=float,
        default=10.0,
        help="lifetime cap to render headroom against in offline mode "
        "(the ledger records spends, not the cap; default 10.0)",
    )
    budget.add_argument(
        "--events",
        type=int,
        default=5,
        help="ledger events to show per dataset (default 5, newest last; "
        "0 hides the timeline)",
    )
    budget.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    top = commands.add_parser(
        "top",
        help="one-screen fleet dashboard: budgets, utility probes, drift, "
        "traces (see docs/OBSERVABILITY.md)",
    )
    top_source = top.add_mutually_exclusive_group(required=True)
    top_source.add_argument(
        "--data-dir",
        default=None,
        help="read observatory state offline from a serve data directory",
    )
    top_source.add_argument(
        "--url",
        default=None,
        help="fetch GET /debug/observatory from a running service",
    )
    top.add_argument(
        "--epsilon-cap",
        type=float,
        default=10.0,
        help="lifetime cap to render against in offline mode (default 10.0)",
    )
    top.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="refresh every SECONDS until interrupted (default: render once)",
    )
    top.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    jobs = commands.add_parser(
        "jobs",
        help="list, inspect or cancel the service's durable fit jobs "
        "(see docs/RELIABILITY.md)",
    )
    jobs.add_argument(
        "--data-dir",
        required=True,
        help="the serve data directory whose job journal to read",
    )
    jobs.add_argument(
        "--show", metavar="JOB_ID", default=None, help="print one job's full record"
    )
    jobs.add_argument(
        "--cancel",
        metavar="JOB_ID",
        default=None,
        help="request cooperative cancellation (takes effect before the "
        "job starts or at its next stage boundary)",
    )
    jobs.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def _parallel_context(args):
    """Build the ExecutionContext the synthesize command was asked for."""
    from repro.parallel import ExecutionContext, resolve_context

    if args.parallel_backend is None:
        return resolve_context(None)
    return ExecutionContext(
        backend=args.parallel_backend, max_workers=args.parallel_workers
    )


def _synthesize(args) -> int:
    if args.save_model and args.method == "hybrid":
        print(
            "error: --save-model is unsupported for the hybrid method: its "
            "per-cell models are not captured by the released-model format, "
            "so the saved file could not be resampled faithfully",
            file=sys.stderr,
        )
        return 2
    data = load_dataset_csv(args.input)
    print(f"loaded {data}")
    context = _parallel_context(args)
    profiling = (
        trace.trace_root("synthesize", method=args.method)
        if args.profile
        else nullcontext()
    )
    with profiling as root:
        if args.method == "hybrid":
            synthesizer = DPCopulaHybrid(
                args.epsilon, k=args.k, rng=args.seed, context=context
            )
            synthetic = synthesizer.fit_sample(data)
            if args.n is not None and args.n != synthetic.n_records:
                print(
                    "note: --n is ignored by the hybrid method (cell counts are "
                    "themselves DP releases)",
                    file=sys.stderr,
                )
            model = None
        else:
            cls = DPCopulaKendall if args.method == "kendall" else DPCopulaMLE
            synthesizer = cls(args.epsilon, k=args.k, rng=args.seed, context=context)
            synthesizer.fit(data)
            synthetic = synthesizer.sample(args.n)
            model = ReleasedModel.from_synthesizer(synthesizer)

    save_dataset_csv(synthetic, args.output)
    print(f"wrote {synthetic} -> {args.output}")
    print()
    print(synthesizer.budget_.summary())
    if root is not None:
        print()
        print("stage timings (seconds):")
        print(trace.render(root))

    if args.save_model:
        model.save(args.save_model)
        print(f"released model saved to {args.save_model}")

    if args.report:
        print()
        report = utility_report(data, synthetic)
        print(report)
        for j, name in enumerate(data.schema.names):
            print(
                f"  margin {name!r}: TVD={report.margin_tvds[j]:.4f} "
                f"KS={report.margin_kolmogorovs[j]:.4f}"
            )
    return 0


def _resample(args) -> int:
    model = ReleasedModel.load(args.model)
    profiling = (
        trace.trace_root("resample") if args.profile else nullcontext()
    )
    with profiling as root:
        synthetic = model.sample(args.n, rng=args.seed)
    save_dataset_csv(synthetic, args.output)
    print(
        f"sampled {synthetic.n_records} records from the released model "
        f"(epsilon={model.epsilon}) -> {args.output}"
    )
    print("re-sampling a released model is post-processing: no new privacy cost")
    if root is not None:
        print()
        print("stage timings (seconds):")
        print(trace.render(root))
    return 0


def _inspect(args) -> int:
    data = load_dataset_csv(args.input)
    if args.json:
        from repro.service.serializers import dataset_summary

        print(json.dumps(dataset_summary(data), indent=2, sort_keys=True))
        return 0
    print(data)
    print(f"domain space: {data.schema.domain_space():.6g} cells")
    for attribute in data.schema:
        kind = "small-domain" if attribute.is_small_domain else "large-domain"
        print(f"  {attribute.name}: |A| = {attribute.domain_size} ({kind})")
    small = data.schema.small_domain_indices()
    if small:
        print(
            "small-domain attributes present: the hybrid method "
            "(--method hybrid) will partition on them"
        )
    return 0


def _render_evaluation(result) -> None:
    """Human-readable scorecard for one scenario run."""
    print(
        f"scenario {result.scenario!r} (ε={result.epsilon:g}, "
        f"seed={result.seed}, n={result.n_records})"
    )
    header = (
        f"{'METHOD':<18} {'RANGE RE':<10} {'TVD avg':<9} {'TVD worst':<10} "
        f"{'ML Δacc':<9} {'ML Δauc':<9} FIT s"
    )
    print(header)
    for evaluation in result.evaluations:
        if evaluation.ml is not None:
            worst = max(evaluation.ml.scores, key=lambda s: s.accuracy_delta)
            delta_acc = f"{worst.accuracy_delta:+.4f}"
            delta_auc = f"{worst.auc_delta:+.4f}"
        else:
            delta_acc = delta_auc = "-"
        print(
            f"{evaluation.method:<18} "
            f"{evaluation.range_queries.mean_relative_error:<10.4f} "
            f"{evaluation.marginals.avg_tvd:<9.4f} "
            f"{evaluation.marginals.max_tvd:<10.4f} "
            f"{delta_acc:<9} {delta_auc:<9} "
            f"{evaluation.fit_seconds:.2f}"
        )
    for method, reason in sorted(result.skipped.items()):
        print(f"{method:<18} skipped: {reason}")


def _evaluate(args) -> int:
    from repro.experiments.scenarios import list_scenarios, make_scenario, run_scenario

    if args.list:
        for name in list_scenarios():
            scenario = make_scenario(name)
            domain = "x".join(str(s) for s in scenario.domain_sizes)
            print(
                f"{name:<16} {domain:<22} target={scenario.target:<10} "
                f"{scenario.description}"
            )
        return 0
    if args.scenario is None:
        print("error: --scenario is required (or use --list)", file=sys.stderr)
        return 2
    methods = args.methods.split(",") if args.methods else None
    try:
        result = run_scenario(
            args.scenario,
            methods=methods,
            epsilon=args.epsilon,
            seed=args.seed,
            n_queries=args.queries,
            marginal_k=args.marginal_k,
            max_marginals=args.max_marginals,
            synthetic_records=args.synthetic_records,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    document = result.to_dict()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"report written to {args.output}")
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        _render_evaluation(result)
    return 0


def _serve(args) -> int:
    from repro.service import (
        ServiceConfig,
        SynthesisService,
        build_server,
        resolve_worker_count,
    )

    try:
        workers = resolve_worker_count(args.workers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shared_store = args.shared_store
    if shared_store is None:
        # A fleet without a shared store would compile every plan once
        # per process; default to one mmap copy per machine instead.
        shared_store = "mmap" if workers > 1 else "off"
    latency_buckets = None
    if args.latency_buckets:
        from repro.telemetry.metrics import parse_latency_buckets

        try:
            latency_buckets = parse_latency_buckets(args.latency_buckets)
        except ValueError as exc:
            print(f"error: --latency-buckets: {exc}", file=sys.stderr)
            return 2
    config = ServiceConfig(
        data_dir=args.data_dir,
        epsilon_cap=args.epsilon_cap,
        fit_workers=args.fit_workers,
        parallel_backend=args.parallel_backend,
        parallel_workers=args.parallel_workers,
        log_level=args.log_level,
        max_queued_fits=args.max_queued_fits or None,
        fit_timeout_seconds=args.fit_timeout,
        request_timeout_seconds=args.request_timeout or None,
        coalesce_window_seconds=args.coalesce_window,
        max_coalesced_records=args.max_coalesced_records,
        sample_queue_limit=args.sample_queue_limit or None,
        shared_store_mode=shared_store,
        model_cache_size=args.model_cache_size or None,
        workers=workers,
        slow_request_seconds=args.slow_request_threshold or None,
        latency_buckets=latency_buckets,
        trace_export_enabled=not args.no_trace_export,
        probe_interval_seconds=args.probe_interval,
        probe_sample_size=args.probe_sample_size,
        probe_drift_threshold=args.probe_drift_threshold,
    )
    if workers > 1:
        return _serve_prefork(args, config, workers)
    service = SynthesisService(config)
    server = build_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    print(f"synthesis service listening on http://{host}:{port}")
    print(f"data directory: {args.data_dir} (ε cap {args.epsilon_cap:g}/dataset)")
    print(
        f"fit pool: {args.fit_workers} worker(s), "
        f"parallel backend: {args.parallel_backend}"
    )
    print(
        "endpoints: /health /healthz /metrics /budget /debug/observatory "
        "/datasets /fits /models — see docs/SERVICE.md and "
        "docs/OBSERVABILITY.md"
    )

    def _drain(signum, frame):  # pragma: no cover - signal delivery timing
        # Graceful drain: stop accepting, finish in-flight requests and
        # the running fit, leave queued jobs journaled for the next
        # start.  shutdown() must run off the serving thread.
        print("\nSIGTERM: draining (queued jobs stay journaled)", file=sys.stderr)
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.close()
    return 0


def _serve_prefork(args, config, workers: int) -> int:
    """Run the pre-fork fleet: supervisor in this process, N workers."""
    from repro.service.prefork import SUPPORTS_REUSE_PORT, PreforkServer

    supervisor = PreforkServer(
        config,
        host=args.host,
        port=args.port,
        quiet=not args.verbose,
    )
    supervisor.start()
    mode = "SO_REUSEPORT" if SUPPORTS_REUSE_PORT else "inherited listener"
    print(
        f"synthesis service listening on http://{args.host}:{supervisor.port} "
        f"({workers} workers, {mode})"
    )
    print(f"data directory: {args.data_dir} (ε cap {args.epsilon_cap:g}/dataset)")
    print(
        f"worker 0 owns fitting ({args.fit_workers} fit worker(s)); "
        f"shared plan store: {config.shared_store_mode}"
    )
    print(
        "endpoints: /health /healthz /metrics /budget /debug/observatory "
        "/datasets /fits /models — see docs/SERVICE.md and "
        "docs/OBSERVABILITY.md"
    )

    def _stop(signum, frame):  # pragma: no cover - signal delivery timing
        print(
            "\nSIGTERM: draining workers (queued jobs stay journaled)",
            file=sys.stderr,
        )
        supervisor.request_stop()

    try:
        signal.signal(signal.SIGTERM, _stop)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass
    try:
        supervisor.watch()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        supervisor.stop()
    return 0


def _fetch_json(url: str):
    """GET a service endpoint and parse the JSON body."""
    import urllib.request

    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _offline_budget(data_dir: str, epsilon_cap: float):
    """Replay a serve data directory's ledger without a running service."""
    from pathlib import Path

    from repro.service.accountant import replay_ledger
    from repro.telemetry.observatory import budget_timelines

    root = Path(data_dir)
    datasets = sorted(
        sidecar.stem for sidecar in (root / "datasets").glob("*.json")
    ) if (root / "datasets").exists() else []
    entries = replay_ledger(root / "ledger.jsonl")
    return budget_timelines(entries, epsilon_cap, datasets=datasets)


def _format_timestamp(value) -> str:
    import datetime

    try:
        moment = datetime.datetime.fromtimestamp(float(value))
    except (TypeError, ValueError, OSError, OverflowError):
        return "-"
    return moment.strftime("%Y-%m-%d %H:%M:%S")


def _utilization_bar(utilization: float, width: int = 24) -> str:
    filled = max(0, min(width, round(float(utilization) * width)))
    return "#" * filled + "." * (width - filled)


def _render_budget(document, events: int = 5) -> None:
    timelines = document.get("datasets", [])
    if not timelines:
        print("no datasets in the ledger")
        return
    print(f"privacy budget (ε cap {document.get('epsilon_cap', 0):g}/dataset)")
    for timeline in timelines:
        print(
            f"\n{timeline['dataset_id']}: "
            f"[{_utilization_bar(timeline['utilization'])}] "
            f"{timeline['epsilon_spent']:g} spent / "
            f"{timeline['epsilon_remaining']:g} remaining"
        )
        if events:
            for event in timeline.get("events", [])[-events:]:
                sign = "-" if event.get("kind") == "refund" else "+"
                print(
                    f"  {_format_timestamp(event.get('timestamp'))}  "
                    f"{sign}ε{event['epsilon']:<10g} "
                    f"spent={event['spent_after']:<10g} "
                    f"{event.get('label', '')}"
                )


def _budget(args) -> int:
    if args.url:
        document = _fetch_json(args.url.rstrip("/") + "/budget")
    else:
        document = _offline_budget(args.data_dir, args.epsilon_cap)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    _render_budget(document, events=args.events)
    return 0


def _observatory_document(args):
    """The dashboard document: live from the service, or off the files."""
    if args.url:
        return _fetch_json(args.url.rstrip("/") + "/debug/observatory")
    from pathlib import Path

    from repro.telemetry.export import list_trace_files
    from repro.telemetry.observatory import (
        load_probe_document,
        read_drift_events,
    )

    root = Path(args.data_dir)
    return {
        "served_by": "offline",
        "budget": _offline_budget(args.data_dir, args.epsilon_cap),
        "probes": load_probe_document(root / "observatory"),
        "drift_events": read_drift_events(root / "observatory"),
        "traces": {"enabled": None, "files": list_trace_files(root / "traces")},
        "workers": [],
    }


def _render_top(document) -> None:
    print(f"dpcopula top — served by worker {document.get('served_by')}")

    budget = document.get("budget") or {}
    print(f"\n-- privacy budget (ε cap {budget.get('epsilon_cap', 0):g}) --")
    for timeline in budget.get("datasets", []):
        print(
            f"  {timeline['dataset_id']:<20} "
            f"[{_utilization_bar(timeline['utilization'])}] "
            f"{timeline['epsilon_spent']:g}/{timeline['epsilon_cap']:g} spent"
        )
    if not budget.get("datasets"):
        print("  (no datasets)")

    probes = document.get("probes")
    print("\n-- utility probes --")
    if not probes:
        print("  (no probe results yet)")
    else:
        print(
            f"  cycle at {_format_timestamp(probes.get('written_at'))}, "
            f"{probes.get('models_probed')}/{probes.get('models_total')} "
            f"models, sample={probes.get('sample_size')}"
        )
        header = (
            f"  {'MODEL':<18} {'GEN':<4} {'TVD(max)':<10} {'2WAY(max)':<10} "
            f"{'TAU ERR':<10} MISFIT"
        )
        print(header)
        for model in probes.get("models", []):
            # Probe documents written before the k-way gauge existed
            # lack the field; render a dash rather than failing.
            kway = model.get("kway_tvd_max")
            kway_text = f"{kway:<10.4f}" if kway is not None else f"{'-':<10}"
            print(
                f"  {model['model_id']:<18} {model['generation']:<4} "
                f"{model['margin_tvd_max']:<10.4f} {kway_text}"
                f"{model['tau_error']:<10.4f} {model['copula_misfit']:.4f}"
            )

    drift = document.get("drift_events") or []
    print("\n-- drift events --")
    if not drift:
        print("  (none)")
    for event in drift[-5:]:
        print(
            f"  {_format_timestamp(event.get('ts'))}  {event.get('model_id')} "
            f"gen {event.get('from_generation')}→{event.get('to_generation')} "
            f"{event.get('metric')}={event.get('value'):.4f} "
            f"(threshold {event.get('threshold'):g})"
        )

    traces = document.get("traces") or {}
    print("\n-- trace export --")
    files = traces.get("files", [])
    if not files:
        print("  (no trace files)")
    for entry in files:
        print(
            f"  {entry['file']:<24} {entry['bytes']:>10} bytes  "
            f"modified {_format_timestamp(entry['modified_at'])}"
        )

    workers = document.get("workers") or []
    if workers:
        print("\n-- workers --")
        for worker in workers:
            print(f"  worker {worker.get('worker')}  pid {worker.get('pid')}")


def _top(args) -> int:
    import time as _time

    while True:
        document = _observatory_document(args)
        if args.json:
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            _render_top(document)
        if args.watch is None:
            return 0
        try:
            _time.sleep(args.watch)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
        print()


def _jobs(args) -> int:
    from pathlib import Path

    from repro.resilience.journal import JobJournal

    jobs_dir = Path(args.data_dir) / "jobs"
    if not jobs_dir.exists():
        print(f"no job journal under {args.data_dir!r}", file=sys.stderr)
        return 1
    journal = JobJournal(jobs_dir)
    if args.cancel:
        try:
            record = journal.request_cancel(args.cancel)
        except KeyError:
            print(f"no journaled job with id {args.cancel!r}", file=sys.stderr)
            return 1
        if record.state == "queued":
            record = journal.update(
                args.cancel, state="cancelled", error="cancelled via CLI"
            )
        print(f"cancellation requested for {args.cancel} (state: {record.state})")
        return 0
    if args.show:
        try:
            record = journal.load(args.show)
        except KeyError:
            print(f"no journaled job with id {args.show!r}", file=sys.stderr)
            return 1
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    records = journal.list()
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True))
        return 0
    if not records:
        print("no journaled jobs")
        return 0
    print(f"{'JOB ID':<14} {'STATE':<10} {'DATASET':<16} {'METHOD':<10} "
          f"{'EPSILON':<8} STAGES")
    for record in records:
        stages = ",".join(record.stages_done) or "-"
        print(
            f"{record.job_id:<14} {record.state:<10} {record.dataset_id:<16} "
            f"{record.method:<10} {record.epsilon:<8g} {stages}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``dpcopula`` command."""
    args = build_parser().parse_args(argv)
    if args.command in ("synthesize", "fit"):
        return _synthesize(args)
    if args.command == "resample":
        return _resample(args)
    if args.command == "evaluate":
        return _evaluate(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "jobs":
        return _jobs(args)
    if args.command == "budget":
        return _budget(args)
    if args.command == "top":
        return _top(args)
    return _inspect(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
