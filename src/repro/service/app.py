"""The synthesis service: release once, serve forever.

:class:`SynthesisService` is the transport-agnostic core behind the
HTTP API (:mod:`repro.service.http`) and the ``dpcopula serve`` CLI.
It ties together the four stateful pieces:

* :class:`~repro.service.datasets.DatasetStore` — uploaded originals;
* :class:`~repro.service.accountant.PrivacyAccountant` — the durable
  per-dataset ε ledger;
* :class:`~repro.service.jobs.FitWorker` — background fitting;
* :class:`~repro.service.registry.ModelRegistry` — released models.

The privacy story in one sentence: fits charge the accountant *before*
touching the data and are refused once a dataset's lifetime ε cap is
reached, while sampling a registered model is pure post-processing
(paper §3.3 / Algorithm 3) and is therefore unmetered, unlimited and
safe to serve concurrently.

Resilience (docs/RELIABILITY.md): every fit job is journaled durably
(:class:`~repro.resilience.journal.JobJournal`), charged idempotently
(the ledger deduplicates by job id, so retries and restarts can never
double-charge), checkpointed per stage, and recovered on startup —
interrupted jobs resume from their checkpoints and draw bitwise the
noise an uninterrupted run would have drawn.

Pre-fork fleets (docs/SERVICE.md): when the config carries a
``worker_index``, exactly worker 0 — the **fit owner** — runs the fit
pool, startup recovery and a journal poller; every other worker serves
reads and sampling itself but *journals* fit submissions as ``queued``
records that the owner's poller picks up within a poll interval.  The
durable journal is thereby both the queue and the API: ``job_status`` /
``list_jobs`` / ``cancel_job`` already fall back to it, so any worker
answers for any job.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.dpcopula import DEFAULT_RATIO_K, DPCopulaKendall, DPCopulaMLE
from repro.engine import (
    EngineOverloadedError,
    RequestCoalescer,
    SamplingEngine,
    build_plan_store,
)
from repro.io import ReleasedModel
from repro.resilience.journal import JobJournal, JobRecord
from repro.resilience.retry import RetryPolicy, call_with_retry, mark_no_retry
from repro.service.accountant import PrivacyAccountant, replay_ledger
from repro.service.config import ServiceConfig
from repro.service.datasets import DatasetStore
from repro.service.errors import (
    BudgetRefusedError,
    NotFoundError,
    QueueFullError,
    ValidationError,
)
from repro.parallel import ExecutionContext
from repro.service.jobs import FitCheckpoint, FitJob, FitWorker
from repro.service.registry import ModelRegistry
from repro.service.serializers import dataset_summary, dataset_to_rows
from repro.telemetry import (
    TraceExporter,
    configure_logging,
    get_logger,
    metrics,
    trace,
)

__all__ = ["SynthesisService", "FIT_METHODS"]

_logger = get_logger("service.app")

_FIT_SECONDS = metrics.REGISTRY.histogram(
    "dpcopula_fit_seconds",
    "End-to-end fit wall-clock seconds (label: method)",
)
_SAMPLE_SECONDS = metrics.REGISTRY.histogram(
    "dpcopula_sample_seconds",
    "Sample-request wall-clock seconds",
)
_SAMPLE_RECORDS = metrics.REGISTRY.counter(
    "dpcopula_sample_records_total",
    "Synthetic records served by the sampling endpoint",
)

#: Methods the service can fit.  The hybrid is deliberately absent: its
#: per-cell models are not captured by :class:`~repro.io.ReleasedModel`,
#: so it cannot be registered for later sampling (see cli.py for the
#: same restriction on ``--save-model``).
FIT_METHODS = {
    "kendall": DPCopulaKendall,
    "mle": DPCopulaMLE,
}

#: Upper bound on records per sample request; prevents a single request
#: from materializing an unbounded array in server memory.
MAX_SAMPLE_N = 1_000_000

#: Retry schedule for durable-state I/O around a fit (ledger appends,
#: registry writes).  These are idempotent — the ledger dedupes by job
#: key and the registry put is keyed by the deterministic model id — so
#: retrying transient filesystem errors is always safe.
IO_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.05, multiplier=4.0)

_JOBS_RECOVERED = metrics.REGISTRY.counter(
    "dpcopula_jobs_recovered_total",
    "Journaled fit jobs re-enqueued at service startup",
)
_EPS_REFUNDED = metrics.REGISTRY.counter(
    "dpcopula_epsilon_refunded_total",
    "Epsilon refunded for fits that failed before drawing any noise",
)


def _key_error_message(exc: KeyError) -> str:
    """The message inside a ``KeyError`` (``str()`` would re-quote it)."""
    return str(exc.args[0]) if exc.args else str(exc)


class SynthesisService:
    """Application core for the DP synthesis server."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        configure_logging(config.log_level)
        # Resolve latency-histogram buckets before any request traffic:
        # the env var beats the config field, and rebucketing clears the
        # affected series, which is only safe this early.
        buckets = config.latency_buckets
        env_buckets = os.environ.get(metrics.LATENCY_BUCKETS_ENV_VAR)
        if env_buckets:
            buckets = metrics.parse_latency_buckets(env_buckets)
        if buckets is not None:
            metrics.REGISTRY.configure_latency_buckets(buckets)
        config.ensure_layout()
        self.datasets = DatasetStore(config.datasets_dir)
        self.registry = ModelRegistry(
            config.models_dir, max_cached_models=config.model_cache_size
        )
        self.accountant = PrivacyAccountant(config.ledger_path, config.epsilon_cap)
        # The sampling engine: compiled plans from the registry, arrays
        # optionally re-homed in a shared read-only store, concurrent
        # requests coalesced into one vectorized draw (docs/PERFORMANCE.md).
        self.engine = SamplingEngine(
            self.registry.get_plan,
            coalescer=RequestCoalescer(
                window_seconds=config.coalesce_window_seconds,
                max_batch_records=config.max_coalesced_records,
                max_pending_requests=config.sample_queue_limit,
            ),
            store=build_plan_store(config.shared_store_mode, config.plans_dir),
        )
        self.journal = JobJournal(config.jobs_dir)
        # One stateless execution context serves every fit worker; each
        # map_tasks call builds its own pool, so concurrent fits never
        # contend on shared executor state.
        self.context = ExecutionContext(
            backend=config.parallel_backend, max_workers=config.parallel_workers
        )
        self._poller_stop = threading.Event()
        self._poller: Optional[threading.Thread] = None
        self._jobs_dir_mtime: Optional[int] = None
        if config.is_fit_owner:
            self.worker: Optional[FitWorker] = FitWorker(
                self._execute_fit,
                max_workers=config.fit_workers,
                max_queue=config.max_queued_fits,
                job_timeout=config.fit_timeout_seconds,
                journal=self.journal,
            )
            self._recover_jobs()
            if config.multi_worker:
                # Followers journal fit submissions; the owner's poller
                # turns those durable records into queued work.
                self._poller = threading.Thread(
                    target=self._poll_follower_submissions,
                    name="dpcopula-fit-journal-poller",
                    daemon=True,
                )
                self._poller.start()
        else:
            # Follower worker: no fit pool — submissions are journaled
            # for the owner, everything else is served locally.
            self.worker = None
        self._metrics_flusher = None
        if config.multi_worker and config.worker_index is not None:
            from repro.telemetry.aggregate import MetricsFlusher

            self._metrics_flusher = MetricsFlusher(
                metrics.REGISTRY,
                config.metrics_dir,
                config.worker_index,
                interval=config.metrics_flush_seconds,
            ).start()
        # Durable trace export: completed request/fit traces append to a
        # per-worker JSONL ring under <data_dir>/traces/.
        self.trace_exporter: Optional[TraceExporter] = None
        if config.trace_export_enabled:
            self.trace_exporter = TraceExporter(
                config.traces_dir,
                worker_label=config.worker_label,
                max_bytes=config.trace_export_max_bytes,
                max_files=config.trace_export_files,
                slow_threshold=config.slow_request_seconds,
            ).install()
        # Continuous utility probes run on the fit owner only — one
        # prober per deployment — and publish results to
        # <data_dir>/observatory/ for every worker to serve.  The probe
        # object exists even with the loop disabled (interval 0) so
        # operators and tests can trigger on-demand cycles.
        self.probe = None
        if config.is_fit_owner:
            from repro.telemetry.observatory import UtilityProbe

            self.probe = UtilityProbe(
                self.registry,
                config.observatory_dir,
                worker_label=config.worker_label,
                sample_size=config.probe_sample_size,
                drift_threshold=config.probe_drift_threshold,
                interval=config.probe_interval_seconds,
            )
            self.probe.start()

    # -- datasets ---------------------------------------------------------

    def upload_dataset(self, dataset_id: str, csv_text: str) -> Dict[str, Any]:
        """Validate, persist and summarize an uploaded CSV."""
        if not csv_text or not csv_text.strip():
            raise ValidationError("empty CSV upload")
        try:
            return self.datasets.put(dataset_id, csv_text)
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc

    def inspect_dataset(self, dataset_id: str) -> Dict[str, Any]:
        """The shared ``inspect --json`` document plus accounting state."""
        try:
            dataset = self.datasets.get(dataset_id)
        except KeyError as exc:
            raise NotFoundError(_key_error_message(exc)) from exc
        summary = dataset_summary(dataset, name=dataset_id)
        summary["budget"] = self.accountant.summary(dataset_id)
        return summary

    def list_datasets(self) -> List[Dict[str, Any]]:
        return self.datasets.list()

    def budget_summary(self, dataset_id: str) -> Dict[str, Any]:
        if dataset_id not in self.datasets:
            raise NotFoundError(f"no dataset uploaded under id {dataset_id!r}")
        return self.accountant.summary(dataset_id)

    # -- fitting ----------------------------------------------------------

    def submit_fit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate a fit request and enqueue it; returns the job view.

        The authoritative budget charge happens in the worker (under the
        accountant's lock, in submission order); this method fast-fails
        requests that *already* cannot fit so clients get an immediate
        409 instead of a failed job.
        """
        if not isinstance(payload, dict):
            raise ValidationError("fit request body must be a JSON object")
        dataset_id = payload.get("dataset_id")
        if not isinstance(dataset_id, str) or dataset_id not in self.datasets:
            raise NotFoundError(f"no dataset uploaded under id {dataset_id!r}")
        method = payload.get("method", "kendall")
        if method not in FIT_METHODS:
            supported = ", ".join(sorted(FIT_METHODS))
            detail = (
                " (the hybrid's per-cell models cannot be registered for "
                "later sampling)"
                if method == "hybrid"
                else ""
            )
            raise ValidationError(
                f"unsupported fit method {method!r}: the service fits "
                f"{supported}{detail}"
            )
        try:
            epsilon = float(payload.get("epsilon", 1.0))
            k = float(payload.get("k", DEFAULT_RATIO_K))
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"epsilon and k must be numbers: {exc}") from exc
        if epsilon <= 0 or k <= 0:
            raise ValidationError("epsilon and k must be positive")
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValidationError("seed must be an integer or null")
        if not self.accountant.can_charge(dataset_id, epsilon):
            raise BudgetRefusedError(
                f"fit refused: ε={epsilon:.6g} exceeds the remaining "
                f"{self.accountant.remaining(dataset_id):.6g} of dataset "
                f"{dataset_id!r}'s lifetime cap "
                f"{self.accountant.epsilon_cap:.6g}"
            )
        if seed is None:
            # Resolve the seed *now* so it can be journaled: a resumed
            # or retried attempt must replay the exact same RNG streams
            # to release bitwise the same model for the same charge.
            seed = int.from_bytes(os.urandom(8), "big")
        job = FitJob(
            job_id=FitWorker.new_job_id(),
            dataset_id=dataset_id,
            method=method,
            epsilon=epsilon,
            k=k,
            seed=seed,
        )
        if self.worker is None:
            # Follower worker in a pre-fork fleet: the journal *is* the
            # queue.  Enforce the same waiting-job bound the owner's
            # in-memory queue would, then journal the record for the
            # owner's poller to pick up.
            bound = self.config.max_queued_fits
            if bound is not None:
                queued = sum(1 for r in self.journal.list() if r.state == "queued")
                if queued >= bound:
                    raise QueueFullError(
                        f"fit queue is full ({bound} jobs waiting); retry later",
                        retry_after=5.0,
                    )
            record = self.journal.create(
                JobRecord(
                    job_id=job.job_id,
                    dataset_id=dataset_id,
                    method=method,
                    epsilon=epsilon,
                    k=k,
                    seed=seed,
                )
            )
            _logger.info(
                "fit submission journaled for the fit owner",
                extra={"job_id": job.job_id, "dataset": dataset_id},
            )
            return self._job_view(record)
        # Journal before enqueueing so the worker can never observe an
        # unjournaled job; a queue-full refusal takes the record back.
        self.journal.create(
            JobRecord(
                job_id=job.job_id,
                dataset_id=dataset_id,
                method=method,
                epsilon=epsilon,
                k=k,
                seed=seed,
            )
        )
        try:
            return self.worker.submit(job).to_dict()
        except BaseException:
            self.journal.delete(job.job_id)
            raise

    def _recover_jobs(self) -> None:
        """Re-enqueue journaled jobs a previous process left unfinished.

        Jobs found ``queued`` or ``running`` are put back on the queue;
        their fits resume from stage checkpoints and their charges are
        deduplicated by the ledger, so recovery costs no extra ε.  Jobs
        whose dataset has vanished are explicitly ``voided``.
        """
        for record in self.journal.recoverable():
            if record.dataset_id not in self.datasets:
                self.journal.void(
                    record.job_id,
                    f"dataset {record.dataset_id!r} no longer exists",
                )
                continue
            job = FitJob(
                job_id=record.job_id,
                dataset_id=record.dataset_id,
                method=record.method,
                epsilon=record.epsilon,
                k=record.k,
                seed=record.seed,
                submitted_at=record.submitted_at,
            )
            self.journal.update(record.job_id, state="queued")
            self.worker.submit(job, force=True)
            _JOBS_RECOVERED.inc()
            _logger.info(
                "recovered journaled fit job",
                extra={
                    "job_id": record.job_id,
                    "dataset": record.dataset_id,
                    "stages_done": record.stages_done,
                },
            )

    #: How often the fit owner scans the journal for follower
    #: submissions (seconds).  A directory-mtime guard makes the idle
    #: cost one ``stat`` per interval.
    JOURNAL_POLL_SECONDS = 0.2

    def _poll_follower_submissions(self) -> None:
        """Fit-owner loop: adopt ``queued`` journal records it never saw.

        Followers create those records in :meth:`submit_fit`; recovery
        wrote the rest.  ``submit(force=True)`` bypasses the in-memory
        bound because the journal already admitted the job — refusing
        here would strand a record the client was told is queued.
        """
        while not self._poller_stop.wait(self.JOURNAL_POLL_SECONDS):
            try:
                mtime = os.stat(self.config.jobs_dir).st_mtime_ns
            except OSError:
                continue
            if mtime == self._jobs_dir_mtime:
                continue
            self._jobs_dir_mtime = mtime
            try:
                for record in self.journal.list():
                    if record.state != "queued" or self.worker.known(record.job_id):
                        continue
                    job = FitJob(
                        job_id=record.job_id,
                        dataset_id=record.dataset_id,
                        method=record.method,
                        epsilon=record.epsilon,
                        k=record.k,
                        seed=record.seed,
                        submitted_at=record.submitted_at,
                    )
                    self.worker.submit(job, force=True)
                    _logger.info(
                        "adopted follower fit submission",
                        extra={"job_id": record.job_id},
                    )
            except Exception:  # pragma: no cover - defensive
                _logger.exception("journal poll failed")

    def _execute_fit(self, job: FitJob) -> str:
        """Worker entry point: charge the ledger, fit, register.

        Every service fit runs under an active trace: the spans feed the
        per-stage latency histograms, and the fit's provenance — wall
        clock, execution backend, worker budget — is persisted into the
        model's registry sidecar so ``GET /models/<id>`` (and the CLI's
        ``inspect --json``) can always answer *how was this released
        model produced?*

        The method is a *resumable* unit of work: every effect is
        idempotent keyed by the job id (ledger charge, stage
        checkpoints, the deterministic ``m-<job_id>`` model id), so the
        worker — or a restarted service — can safely run it again after
        any interruption.
        """
        # Crash-after-register recovery: if a previous attempt got as
        # far as registering the model, the release already happened
        # and there is nothing left to do.
        model_id = f"m-{job.job_id}"
        if model_id in self.registry:
            return model_id
        try:
            dataset = self.datasets.get(job.dataset_id)
        except KeyError as exc:
            # A missing dataset cannot heal; don't let retry layers or
            # a restart loop chew on it.
            raise mark_no_retry(
                NotFoundError(_key_error_message(exc))
            ) from exc
        # Charge before fitting: once the mechanisms below see the data
        # the privacy loss is real, so an overdraft must stop us here.
        # The idempotency key makes re-attempts free: the first journaled
        # charge for this job id is the only one that ever counts.
        call_with_retry(
            lambda: self.accountant.charge(
                job.dataset_id,
                job.epsilon,
                label=f"fit:{job.method}:{job.job_id}",
                key=f"fit:{job.job_id}",
            ),
            IO_RETRY_POLICY,
            operation="accountant.charge",
        )
        checkpoint = (
            FitCheckpoint(self.journal, job.job_id)
            if job.job_id in self.journal
            else None
        )
        started = time.perf_counter()
        synthesizer = FIT_METHODS[job.method](
            job.epsilon, k=job.k, rng=job.seed, context=self.context
        )
        try:
            with trace.trace_root("service.fit", method=job.method) as profile:
                synthesizer.fit(dataset, checkpoint=checkpoint)
        except BaseException as exc:
            self._maybe_refund(job, synthesizer, exc)
            raise
        fit_seconds = time.perf_counter() - started
        _FIT_SECONDS.observe(fit_seconds, method=job.method)
        _logger.debug("fit profile", extra={"profile": profile.to_dict()})
        model = ReleasedModel.from_synthesizer(synthesizer)
        record = call_with_retry(
            lambda: self.registry.put(
                model,
                dataset_id=job.dataset_id,
                method=job.method,
                model_id=model_id,
                extra={
                    "k": job.k,
                    "job_id": job.job_id,
                    "fit_seconds": round(fit_seconds, 6),
                    "parallel_backend": self.context.backend,
                    "parallel_workers": self.context.max_workers,
                    "fit_workers": self.config.fit_workers,
                },
            ),
            IO_RETRY_POLICY,
            operation="registry.put",
        )
        return record.model_id

    def _maybe_refund(self, job: FitJob, synthesizer, exc: BaseException) -> None:
        """Refund the job's charge iff no noise was ever drawn for it.

        The provably-safe window: ``privacy_touched_`` is still False
        (this attempt ran no DP mechanism), the journal records no
        stage as ever computed (no earlier attempt did either), *and*
        no stage checkpoint survives on disk (no earlier attempt left a
        durable release the journal failed to record).  Inside it the
        data never influenced any releasable value, so the charge
        corresponds to zero privacy loss.  Outside it — even for a
        failed fit — the noise exists and the ε is genuinely spent;
        refunding would be a privacy violation, so we never do.
        """
        if getattr(synthesizer, "privacy_touched_", True):
            return
        if job.job_id in self.journal:
            record = self.journal.load(job.job_id)
            if record.stages_done or record.stage_computed:
                return
        if self.journal.has_stage_checkpoints(job.job_id):
            # A persisted stage NPZ is a durable DP release even when
            # the lifecycle record never recorded the stage (a crash
            # can tear the record update, or delete the record while
            # checkpoints linger).  Noise exists on disk, so the ε is
            # spent: never refund.
            return
        try:
            refunded = self.accountant.refund(
                job.dataset_id,
                job.epsilon,
                label=f"refund:{job.method}:{job.job_id}",
                key=f"refund:{job.job_id}",
            )
        except OSError:
            _logger.exception(
                "refund failed; epsilon remains charged",
                extra={"job_id": job.job_id, "dataset": job.dataset_id},
            )
            return
        if refunded:
            _EPS_REFUNDED.inc(refunded)
            _logger.info(
                "epsilon refunded: fit failed before any noise was drawn",
                extra={
                    "job_id": job.job_id,
                    "dataset": job.dataset_id,
                    "epsilon": job.epsilon,
                    "cause": f"{type(exc).__name__}: {exc}",
                },
            )

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        """Request cooperative cancellation of a fit job.

        Queued jobs are cancelled before they start; running jobs stop
        at their next stage boundary.  Finished jobs are left untouched
        (the flag is recorded but has no effect).  Returns the job view.
        """
        if self.worker is not None:
            try:
                job = self.worker.request_cancel(job_id)
                return job.to_dict()
            except KeyError:
                pass
        # Not in worker memory (e.g. journaled by a previous process,
        # or this is a follower worker): flag it in the journal so the
        # owner/restart won't resurrect it.
        try:
            record = self.journal.request_cancel(job_id)
        except KeyError as exc:
            raise NotFoundError(f"no fit job with id {job_id!r}") from exc
        if record.state == "queued":
            record = self.journal.update(
                job_id, state="cancelled", error="cancelled before start"
            )
        return self._job_view(record)

    @staticmethod
    def _job_view(record: JobRecord) -> Dict[str, Any]:
        """Map a journal record onto the API's job document shape."""
        return {
            "job_id": record.job_id,
            "dataset_id": record.dataset_id,
            "method": record.method,
            "epsilon": record.epsilon,
            "k": record.k,
            "seed": record.seed,
            "status": record.state,
            "model_id": record.model_id,
            "error": record.error,
            "submitted_at": record.submitted_at,
            "started_at": None,
            "finished_at": None,
            "cancel_requested": record.cancel_requested,
        }

    def job_status(self, job_id: str) -> Dict[str, Any]:
        if self.worker is not None:
            try:
                return self.worker.get(job_id).to_dict()
            except KeyError:
                pass
        try:
            return self._job_view(self.journal.load(job_id))
        except KeyError as exc:
            raise NotFoundError(f"no fit job with id {job_id!r}") from exc

    def list_jobs(self) -> List[Dict[str, Any]]:
        """All known jobs: live worker state plus journal-only history."""
        views = (
            {job.job_id: job.to_dict() for job in self.worker.list()}
            if self.worker is not None
            else {}
        )
        for record in self.journal.list():
            if record.job_id not in views:
                views[record.job_id] = self._job_view(record)
        ordered = sorted(
            views.values(), key=lambda v: v["submitted_at"], reverse=True
        )
        return ordered

    # -- models -----------------------------------------------------------

    def list_models(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self.registry.list()]

    def model_info(self, model_id: str) -> Dict[str, Any]:
        try:
            return self.registry.record(model_id).to_dict()
        except KeyError as exc:
            raise NotFoundError(_key_error_message(exc)) from exc

    def sample(
        self,
        model_id: str,
        n: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Draw ``n`` synthetic records from a registered model.

        Served by the sampling engine: the model's compiled
        :class:`~repro.engine.plan.SamplerPlan` does the per-model work
        once, and concurrent requests coalesce into one vectorized draw
        — bitwise identical per request to an uncoalesced serial draw,
        so a seeded request always reproduces the same records.  Costs
        no privacy budget — this is post-processing of an
        already-released model.
        """
        try:
            record = self.registry.record(model_id)
        except KeyError as exc:
            raise NotFoundError(_key_error_message(exc)) from exc
        if n is None:
            n = record.n_records
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise ValidationError(f"n must be a positive integer, got {n!r}")
        if n > MAX_SAMPLE_N:
            raise ValidationError(
                f"n={n} exceeds the per-request limit of {MAX_SAMPLE_N}; "
                "page your sampling across requests"
            )
        if seed is not None and not isinstance(seed, int):
            raise ValidationError("seed must be an integer or null")
        started = time.perf_counter()
        try:
            synthetic = self.engine.sample(model_id, n, seed=seed)
        except KeyError as exc:
            # The model vanished between the sidecar read and the plan
            # lookup (concurrent delete): surface the same 404.
            raise NotFoundError(_key_error_message(exc)) from exc
        except EngineOverloadedError as exc:
            raise QueueFullError(str(exc), retry_after=exc.retry_after) from exc
        elapsed = time.perf_counter() - started
        _SAMPLE_SECONDS.observe(elapsed)
        _SAMPLE_RECORDS.inc(n)
        _logger.debug(
            "sampled records",
            extra={"model_id": model_id, "n": n, "seconds": round(elapsed, 6)},
        )
        result = dataset_to_rows(synthetic)
        result.update(
            {
                "model_id": model_id,
                "dataset_id": record.dataset_id,
                "epsilon": record.epsilon,
                "seed": seed,
                "privacy_cost": 0.0,
            }
        )
        return result

    # -- observability ----------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """JSON view of every registered metric (refreshes live gauges).

        In a pre-fork fleet the view aggregates every worker's snapshot
        file, with a ``worker`` label on each series — a scrape routed
        to any worker sees the whole fleet.
        """
        self._refresh_gauges()
        if self._metrics_flusher is not None:
            from repro.telemetry.aggregate import (
                aggregate_snapshot,
                read_worker_snapshots,
            )

            self._metrics_flusher.flush()
            return aggregate_snapshot(
                read_worker_snapshots(self.config.metrics_dir)
            )
        return metrics.REGISTRY.snapshot()

    def metrics_text(self) -> str:
        """Prometheus text-exposition view of the metrics registry."""
        self._refresh_gauges()
        if self._metrics_flusher is not None:
            from repro.telemetry.aggregate import (
                read_worker_snapshots,
                render_prometheus_multi,
            )

            self._metrics_flusher.flush()
            return render_prometheus_multi(
                read_worker_snapshots(self.config.metrics_dir)
            )
        return metrics.REGISTRY.render_prometheus()

    def _refresh_gauges(self) -> None:
        # Queue depth is scrape-time state, not event-time state: refresh
        # it here so an idle-but-backed-up queue cannot go stale.
        queue_depth = (
            self.worker.queue_depth()
            if self.worker is not None
            else sum(1 for r in self.journal.list() if r.state == "queued")
        )
        metrics.REGISTRY.gauge(
            "dpcopula_fit_queue_depth",
            "Fit jobs waiting in the worker queue (excludes the running job)",
        ).set(queue_depth)
        metrics.REGISTRY.gauge(
            "dpcopula_engine_pending_requests",
            "Sample requests parked in the coalescer awaiting a batch",
        ).set(self.engine.pending())
        metrics.REGISTRY.gauge(
            "dpcopula_registry_cached_models",
            "Released models resident in the registry's LRU cache",
        ).set(self.registry.cached_models())
        self.journal.refresh_state_gauge()

    def budget_overview(self) -> Dict[str, Any]:
        """Per-dataset ε burn-down timelines from a pure ledger read.

        Replays the append-only ledger without taking its lock — the
        budget endpoint never contends with a fit's charge path — and
        unions datasets seen in the ledger with datasets currently
        uploaded, so never-fitted datasets still appear with their full
        cap remaining.
        """
        known = [
            summary["dataset_id"]
            for summary in self.datasets.list()
            if summary.get("dataset_id")
        ]
        from repro.telemetry.observatory import budget_timelines

        entries = replay_ledger(self.config.ledger_path)
        return budget_timelines(
            entries, self.accountant.epsilon_cap, datasets=known
        )

    def observatory_snapshot(self) -> Dict[str, Any]:
        """The ``GET /debug/observatory`` document: fleet state at a glance.

        Aggregates the privacy-budget timelines, the latest utility-probe
        results and drift events (published by the fit owner's prober),
        the trace-ring inventory, and per-worker liveness — readable from
        any worker because everything flows through the shared data dir.
        """
        from repro.telemetry.export import list_trace_files
        from repro.telemetry.observatory import (
            load_probe_document,
            read_drift_events,
        )

        snapshot = self.metrics_snapshot()
        document: Dict[str, Any] = {
            "served_by": self.config.worker_label,
            "budget": self.budget_overview(),
            "probes": load_probe_document(self.config.observatory_dir),
            "drift_events": read_drift_events(self.config.observatory_dir),
            "traces": {
                "enabled": self.trace_exporter is not None,
                "files": list_trace_files(self.config.traces_dir),
            },
            "requests_total": self._sum_counter(
                snapshot, "dpcopula_http_requests_total"
            ),
            "slow_requests_total": self._sum_counter(
                snapshot, "dpcopula_http_slow_requests_total"
            ),
            "traces_exported_total": self._sum_counter(
                snapshot, "dpcopula_traces_exported_total"
            ),
        }
        if self._metrics_flusher is not None:
            from repro.telemetry.aggregate import read_worker_snapshots

            self._metrics_flusher.flush()
            document["workers"] = [
                {
                    "worker": index,
                    "pid": doc.get("pid"),
                    "written_at": doc.get("written_at"),
                }
                for index, doc in sorted(
                    read_worker_snapshots(self.config.metrics_dir).items()
                )
            ]
        else:
            document["workers"] = [
                {"worker": self.config.worker_label, "pid": os.getpid()}
            ]
        return document

    @staticmethod
    def _sum_counter(snapshot: Dict[str, Any], name: str) -> float:
        """Total of a counter across all its series (and all workers)."""
        doc = snapshot.get(name)
        if not isinstance(doc, dict):
            return 0.0
        return float(
            sum(series.get("value", 0.0) for series in doc.get("series", []))
        )

    def healthz(self) -> Dict[str, Any]:
        """Liveness/readiness document; ``healthy`` is the 200/503 verdict.

        A service that cannot run fits (dead worker threads), cannot
        journal privacy spends (read-only ledger) or cannot register
        models (read-only models dir) is unhealthy: it would accept
        requests it can never honor — or worse, fit without accounting.
        Follower workers in a pre-fork fleet have no fit pool, so their
        ``fit_worker_alive`` check is vacuously true.
        """
        worker_alive = self.worker.alive() if self.worker is not None else True
        ledger_dir = self.config.ledger_path.parent
        ledger_writable = os.access(
            self.config.ledger_path
            if self.config.ledger_path.exists()
            else ledger_dir,
            os.W_OK,
        )
        models_writable = os.access(self.config.models_dir, os.W_OK)
        jobs_writable = os.access(self.config.jobs_dir, os.W_OK)
        checks = {
            "fit_worker_alive": worker_alive,
            "ledger_writable": ledger_writable,
            "models_dir_writable": models_writable,
            "jobs_dir_writable": jobs_writable,
        }
        return {
            "healthy": all(checks.values()),
            "checks": checks,
            "queue_depth": (
                self.worker.queue_depth() if self.worker is not None else 0
            ),
        }

    # -- lifecycle --------------------------------------------------------

    def close(self, drain: bool = False) -> None:
        """Stop the fit worker.

        ``drain=False`` (the default, and what SIGTERM uses) finishes
        the jobs currently running and leaves still-queued jobs in the
        durable journal, where the next start recovers them.
        ``drain=True`` processes the whole queue first.
        """
        self._poller_stop.set()
        if self._poller is not None:
            self._poller.join(timeout=5.0)
        if self.probe is not None:
            self.probe.stop()
        if self.worker is not None:
            self.worker.close(drain=drain)
        if self._metrics_flusher is not None:
            self._metrics_flusher.stop()
        if self.trace_exporter is not None:
            self.trace_exporter.uninstall()
        self.engine.close()
