"""Pre-fork multi-process serving: N workers, one port, one plan store.

A single :class:`~http.server.ThreadingHTTPServer` process caps sample
throughput at one GIL no matter how fast the engine gets.  This module
breaks that cap the classic Unix way: ``dpcopula serve --workers N``
runs a small supervisor that forks N worker processes, each running the
full service stack (handler + :class:`~repro.engine.engine.SamplingEngine`)
against the *same* data directory.

Socket sharing
--------------
Preferred: every worker binds its own listening socket to the same
address with ``SO_REUSEPORT`` — the kernel load-balances incoming
connections across the workers with no userspace accept lock.  The
supervisor first binds a non-listening *holder* socket to fix the port
(essential for ``--port 0`` in tests) and keeps it open for the fleet's
lifetime; bound-but-not-listening sockets receive no connections, so
the holder only reserves the address.  Fallback (platforms without
``SO_REUSEPORT``): the supervisor binds and listens once, and every
forked worker accepts from the inherited socket.

Division of labor
-----------------
Worker 0 is the **fit owner** (see ``ServiceConfig.is_fit_owner``): it
runs the fit pool, startup job recovery and the journal poller that
adopts follower submissions.  All workers serve reads and sampling.
Cross-process coherence rides on durable state grown elsewhere in this
PR: flocked ledger appends, sidecar-fingerprint generation watching in
the registry, and the race-safe mmap plan store.

Supervision
-----------
The supervisor watches worker processes and respawns crashed ones with
a capped exponential backoff (a worker that lived a while resets its
backoff).  ``SIGTERM`` to the supervisor fans out to every worker; each
worker stops accepting, finishes its in-flight requests and exits —
queued fit jobs stay journaled for the next start.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
import warnings
from dataclasses import replace
from typing import Dict, Optional

from repro.service.config import ServiceConfig
from repro.telemetry import get_logger
from repro.telemetry.aggregate import prune_worker_snapshot

__all__ = [
    "PreforkServer",
    "SUPPORTS_REUSE_PORT",
    "WORKERS_ENV_VAR",
    "resolve_worker_count",
]

_logger = get_logger("service.prefork")

#: Environment override for ``--workers``, mirroring ``DPCOPULA_PARALLEL``.
WORKERS_ENV_VAR = "DPCOPULA_WORKERS"

#: Whether this platform can bind N listening sockets to one port.
SUPPORTS_REUSE_PORT = hasattr(socket, "SO_REUSEPORT")

#: A worker that survives this long gets its respawn backoff reset.
_STABLE_SECONDS = 5.0


def resolve_worker_count(value: Optional[int] = None) -> int:
    """Resolve and validate the pre-fork worker count.

    An explicit ``value`` (the CLI's ``--workers``) wins; ``None``
    consults the ``DPCOPULA_WORKERS`` environment variable and falls
    back to 1 (single-process serving).  Counts below 1 are rejected;
    counts above the available CPU cores draw a warning — extra workers
    cost memory without adding throughput.
    """
    source = "--workers"
    if value is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        source = WORKERS_ENV_VAR
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    value = int(value)
    if value < 1:
        raise ValueError(f"{source} must be >= 1, got {value}")
    cores = os.cpu_count() or 1
    if value > cores:
        warnings.warn(
            f"{source}={value} exceeds the {cores} available CPU core(s); "
            "extra workers add memory overhead without sampling throughput",
            RuntimeWarning,
            stacklevel=2,
        )
    return value


def _worker_main(
    config: ServiceConfig,
    host: str,
    port: int,
    worker_index: int,
    quiet: bool,
    reuse_port: bool,
    listen_socket: Optional[socket.socket],
    ready_queue,
) -> None:
    """Entry point of one forked worker process.

    Builds its own service + server, announces readiness, and serves
    until SIGTERM — which drains: stop accepting, finish in-flight
    requests, close the service (queued fits stay journaled).
    """
    # Imported here, not at module top: the supervisor process should
    # stay lean and never construct service state of its own.
    from repro.service.app import SynthesisService
    from repro.service.http import build_server

    service = SynthesisService(config)
    server = build_server(
        service,
        host=host,
        port=port,
        quiet=quiet,
        reuse_port=reuse_port,
        listen_socket=listen_socket,
        worker_label=str(worker_index),
    )

    def _drain(signum, frame):  # pragma: no cover - signal delivery timing
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    # The supervisor coordinates interactive shutdown; a Ctrl-C hits
    # the whole process group, so workers defer to the SIGTERM fan-out.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    ready_queue.put((worker_index, os.getpid()))
    _logger.info(
        "worker serving",
        extra={"worker": worker_index, "pid": os.getpid(), "port": port},
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()


class PreforkServer:
    """Supervisor for a fleet of pre-fork HTTP worker processes.

    Parameters
    ----------
    config:
        The fleet-wide :class:`ServiceConfig`; ``config.workers`` is the
        fleet size and each worker gets ``worker_index`` stamped in.
    host, port:
        Bind address.  ``port=0`` resolves an ephemeral port once (via
        the holder socket) that every worker then shares.
    quiet:
        Suppress per-request logging in workers.
    respawn:
        Whether the watch loop restarts crashed workers.
    force_inherited_socket:
        Use the parent-bound listener fallback even where
        ``SO_REUSEPORT`` exists (exercised by tests on both paths).
    """

    def __init__(
        self,
        config: ServiceConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        respawn: bool = True,
        max_respawn_delay: float = 2.0,
        force_inherited_socket: bool = False,
    ):
        if config.workers < 1:
            raise ValueError(f"config.workers must be >= 1, got {config.workers}")
        self.config = config
        self.host = host
        self.requested_port = port
        self.quiet = quiet
        self.respawn = respawn
        self.max_respawn_delay = float(max_respawn_delay)
        self.reuse_port = SUPPORTS_REUSE_PORT and not force_inherited_socket
        self.port: Optional[int] = None
        self.restarts: Dict[int, int] = {}
        self._ctx = multiprocessing.get_context("fork")
        self._ready_queue = self._ctx.Queue()
        self._ready_indexes: set = set()
        self._processes: Dict[int, multiprocessing.Process] = {}
        self._spawned_at: Dict[int, float] = {}
        self._backoff: Dict[int, float] = {}
        self._holder: Optional[socket.socket] = None
        self._listen_socket: Optional[socket.socket] = None
        self._stopping = threading.Event()
        self._stopped = False

    # -- lifecycle --------------------------------------------------------

    def start(self, timeout: float = 60.0) -> "PreforkServer":
        """Bind the port, fork every worker, wait until all are serving."""
        if self._holder is not None:
            raise RuntimeError("PreforkServer already started")
        self._holder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if self.reuse_port:
            self._holder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._holder.bind((self.host, self.requested_port))
            # Never listened: the holder only pins the (possibly
            # ephemeral) port so workers can bind it by number.
        else:
            self._holder.bind((self.host, self.requested_port))
            self._holder.listen(128)
            self._holder.set_inheritable(True)
            self._listen_socket = self._holder
        self.port = self._holder.getsockname()[1]
        for index in range(self.config.workers):
            self._spawn(index)
        self.wait_ready(timeout=timeout)
        return self

    def _spawn(self, index: int) -> None:
        self._ready_indexes.discard(index)
        # Drop any metrics snapshot left by a previous process at this
        # index (a crashed worker, or a prior deployment over the same
        # data dir): `GET /metrics` aggregation must never mix a dead
        # process's last flush with the new process's counters under
        # the same worker label.
        prune_worker_snapshot(self.config.metrics_dir, index)
        config = replace(self.config, worker_index=index)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                config,
                self.host,
                self.port,
                index,
                self.quiet,
                self.reuse_port,
                self._listen_socket,
                self._ready_queue,
            ),
            name=f"dpcopula-worker-{index}",
        )
        process.start()
        self._processes[index] = process
        self._spawned_at[index] = time.monotonic()

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every currently-spawned worker announced itself.

        Readiness is remembered per index across calls, so waiting
        after a respawn only waits for the respawned worker(s).
        """
        import queue as queue_module

        deadline = time.monotonic() + timeout
        while True:
            pending = set(self._processes) - self._ready_indexes
            if not pending:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"workers {sorted(pending)} not ready within {timeout}s"
                )
            try:
                index, _pid = self._ready_queue.get(timeout=min(remaining, 0.5))
            except queue_module.Empty:
                for index in sorted(pending):
                    process = self._processes.get(index)
                    if process is not None and not process.is_alive():
                        raise RuntimeError(
                            f"worker {index} died during startup "
                            f"(exit code {process.exitcode})"
                        )
                continue
            self._ready_indexes.add(index)

    def alive_workers(self) -> Dict[int, int]:
        """Index → pid of every live worker process."""
        return {
            index: process.pid
            for index, process in self._processes.items()
            if process.is_alive()
        }

    # -- supervision ------------------------------------------------------

    def reap_and_respawn(self) -> int:
        """One supervision pass; returns how many workers were respawned.

        A crashed worker (any unexpected exit) is restarted with a
        capped exponential backoff; a worker that had been serving for
        a while restarts immediately (its backoff resets).  Shared
        durable state — the mmap plan store, the registry sidecars, the
        ledger — lives in the data directory, so a respawned worker
        attaches to the *current* model generations, not a reset.
        """
        respawned = 0
        for index, process in list(self._processes.items()):
            if process.is_alive():
                continue
            process.join()
            if self._stopping.is_set() or not self.respawn:
                continue
            lifetime = time.monotonic() - self._spawned_at.get(index, 0.0)
            if lifetime >= _STABLE_SECONDS:
                self._backoff[index] = 0.0
            delay = self._backoff.get(index, 0.0)
            _logger.warning(
                "worker died; respawning",
                extra={
                    "worker": index,
                    "exitcode": process.exitcode,
                    "backoff": delay,
                },
            )
            if delay > 0:
                if self._stopping.wait(delay):
                    continue
            self._backoff[index] = min(
                max(delay * 2.0, 0.1), self.max_respawn_delay
            )
            self._spawn(index)
            self.restarts[index] = self.restarts.get(index, 0) + 1
            respawned += 1
        return respawned

    def watch(self, poll: float = 0.2) -> None:
        """Supervise until :meth:`request_stop`: respawn crashed workers."""
        while not self._stopping.is_set():
            self.reap_and_respawn()
            self._stopping.wait(poll)

    # -- shutdown ---------------------------------------------------------

    def request_stop(self) -> None:
        """SIGTERM fan-out: each worker drains in-flight work and exits."""
        self._stopping.set()
        for process in self._processes.values():
            if process.is_alive() and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except (ProcessLookupError, PermissionError):
                    pass

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and join every worker, then release the port (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self.request_stop()
        deadline = time.monotonic() + timeout
        for process in self._processes.values():
            process.join(max(0.0, deadline - time.monotonic()))
        for process in self._processes.values():
            if process.is_alive():  # pragma: no cover - drain overrun
                _logger.warning(
                    "worker did not drain in time; killing",
                    extra={"pid": process.pid},
                )
                process.terminate()
                process.join(2.0)
        if self._holder is not None:
            self._holder.close()
            self._holder = None
            self._listen_socket = None
        self._ready_queue.close()
        self._ready_queue.join_thread()
