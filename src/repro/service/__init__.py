"""Long-running synthesis service: fit once, sample forever.

The paper's structure makes a server the natural deployment shape: a
DPCopula release spends privacy budget exactly once at fit time, and
sampling from the released model afterwards is pure post-processing
with zero additional cost (§3.3 / Algorithm 3).  This subpackage turns
the library into that server:

* :class:`ModelRegistry` persists released models on disk;
* :class:`PrivacyAccountant` journals every fit's ε spend and enforces
  a per-dataset lifetime cap across process restarts;
* :class:`FitWorker` runs fits on a background queue with job polling;
* :class:`SynthesisService` + :func:`build_server` expose it all as a
  concurrent, stdlib-only JSON HTTP API (``dpcopula serve``);
* :class:`PreforkServer` scales that API across N worker processes
  sharing one port (``dpcopula serve --workers N``).
"""

from repro.service.accountant import PrivacyAccountant
from repro.service.app import FIT_METHODS, SynthesisService
from repro.service.config import ServiceConfig
from repro.service.datasets import DatasetStore
from repro.service.errors import (
    BudgetRefusedError,
    NotFoundError,
    ServiceError,
    ValidationError,
)
from repro.service.http import build_server
from repro.service.jobs import FitJob, FitWorker, JobStatus
from repro.service.prefork import PreforkServer, resolve_worker_count
from repro.service.registry import ModelRecord, ModelRegistry
from repro.service.serializers import dataset_summary, dataset_to_rows

__all__ = [
    "PrivacyAccountant",
    "SynthesisService",
    "FIT_METHODS",
    "ServiceConfig",
    "DatasetStore",
    "ServiceError",
    "NotFoundError",
    "ValidationError",
    "BudgetRefusedError",
    "build_server",
    "PreforkServer",
    "resolve_worker_count",
    "FitJob",
    "FitWorker",
    "JobStatus",
    "ModelRecord",
    "ModelRegistry",
    "dataset_summary",
    "dataset_to_rows",
]
