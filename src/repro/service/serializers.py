"""JSON-ready views of datasets and models.

One serializer per concept, shared by every surface that talks about it:
``dpcopula inspect --json`` and the service's ``GET /datasets/<id>``
return the same :func:`dataset_summary` document, so scripts written
against one work against the other.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.data.dataset import Dataset, Schema


def schema_spec(schema: Schema) -> list:
    """Schema as a JSON-ready ``[[name, domain_size], ...]`` list."""
    return [[a.name, a.domain_size] for a in schema]


def dataset_summary(dataset: Dataset, name: Optional[str] = None) -> Dict[str, Any]:
    """The machine-readable counterpart of ``dpcopula inspect``.

    Mirrors the human-readable output field for field: schema with
    per-attribute domain classification, the total domain space, and
    whether the hybrid method is recommended (any small-domain
    attribute present).
    """
    schema = dataset.schema
    small = set(schema.small_domain_indices())
    summary: Dict[str, Any] = {
        "n_records": dataset.n_records,
        "dimensions": schema.dimensions,
        "domain_space": schema.domain_space(),
        "attributes": [
            {
                "name": attribute.name,
                "domain_size": attribute.domain_size,
                "kind": "small-domain" if j in small else "large-domain",
            }
            for j, attribute in enumerate(schema)
        ],
        "small_domain_attributes": [schema[j].name for j in sorted(small)],
        "hybrid_recommended": bool(small),
    }
    if name is not None:
        summary["dataset_id"] = name
    return summary


def dataset_to_rows(dataset: Dataset) -> Dict[str, Any]:
    """A dataset's records as a JSON-ready columns-plus-rows document."""
    return {
        "columns": dataset.schema.names,
        "records": dataset.values.tolist(),
        "n_records": dataset.n_records,
    }
