"""Cross-request, cross-restart privacy accounting.

A single in-process :class:`~repro.dp.budget.PrivacyBudget` dies with
the process, which is exactly wrong for a long-running service: the
privacy loss a dataset has suffered is a property of the *data*, not of
any server instance.  :class:`PrivacyAccountant` therefore journals
every fit's ε spend to an append-only JSONL ledger file and rebuilds
the per-dataset ledgers from it on startup, so a restarted (or
horizontally re-deployed, pointed at the same data directory) service
keeps refusing fits that would push a dataset past its lifetime cap.

Sampling never goes through the accountant: drawing records from a
released model is post-processing and costs nothing (paper §3.3).

Resilience semantics (see docs/RELIABILITY.md):

* **Idempotency** — charges and refunds may carry an idempotency
  ``key``; an entry whose key is already journaled is a no-op.  The
  ledger itself is the deduplication source of truth, so a retried fit
  (worker crash, registry hiccup) can re-issue its charge safely and a
  restarted service can resume a journaled job without double-charging.
* **Refunds** — negative entries (``"kind": "refund"``) exist for
  exactly one case: a fit that failed *before drawing any noise*.  In
  that window the data never influenced a releasable value, so undoing
  the charge is provably safe.  Refunds after noise was drawn would
  break the DP guarantee and are never issued by the service.
* **Torn tails** — a crash mid-append can leave a truncated final
  line.  Replay drops exactly that line (the charge was rolled back
  in-memory when the append failed) and repairs the file back to a
  newline-terminated state so later appends start on a fresh line;
  corruption anywhere *else* still refuses startup, because a ledger
  we cannot read in the middle is a ledger we cannot trust.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.dp.budget import BudgetExhaustedError, PrivacyBudget
from repro.service.config import PathLike
from repro.telemetry import get_logger, metrics
from repro.utils import check_positive

__all__ = ["PrivacyAccountant", "BudgetExhaustedError"]

_logger = get_logger("service.accountant")

# Per-dataset privacy gauges: refreshed on every charge and on ledger
# replay, so /metrics always reflects the durable accounting state.
_EPS_SPENT = metrics.REGISTRY.gauge(
    "dpcopula_epsilon_spent",
    "Cumulative privacy budget charged per dataset (label: dataset)",
)
_EPS_REMAINING = metrics.REGISTRY.gauge(
    "dpcopula_epsilon_remaining",
    "Privacy budget left under the lifetime cap per dataset (label: dataset)",
)
_BUDGET_REFUSALS = metrics.REGISTRY.counter(
    "dpcopula_budget_refusals_total",
    "Charges refused because they would exceed a dataset's lifetime cap",
)


class PrivacyAccountant:
    """A durable per-dataset ε ledger with a configurable lifetime cap.

    Parameters
    ----------
    ledger_path:
        The append-only JSONL journal.  Created on first charge; an
        existing journal is replayed on construction, which is how the
        accountant survives process restarts.
    epsilon_cap:
        Maximum cumulative ε any single dataset may spend across all
        fits, ever.  Charges that would exceed it raise
        :class:`~repro.dp.budget.BudgetExhaustedError` and are *not*
        journaled.
    """

    def __init__(self, ledger_path: PathLike, epsilon_cap: float):
        self.ledger_path = Path(ledger_path)
        self.epsilon_cap = check_positive("epsilon_cap", epsilon_cap)
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []
        self._budgets: Dict[str, PrivacyBudget] = {}
        self._keys: set = set()
        self._replay()

    def _replay(self) -> None:
        """Rebuild per-dataset ledgers from the journal file.

        A truncated *final* line (torn append from a crash mid-write) is
        dropped with a warning — the matching in-memory charge was
        rolled back when the append raised, so the entry never took
        effect — and the file itself is repaired (truncated back to the
        last complete line, or newline-terminated if the tail parsed),
        so the next append starts on a fresh line instead of
        concatenating onto the leftover fragment.  Torn tails are
        recognized by the missing trailing newline (each append writes
        ``json + "\\n"`` in one call, so an interrupted one never
        reaches the newline); a *complete* line that fails to parse —
        anywhere, including last — aborts startup.

        Replay applies the same idempotency rule as :meth:`charge` /
        :meth:`refund`: an entry whose key is already journaled is
        skipped, so a retried append whose first attempt did reach disk
        (e.g. an fsync error after a successful write) cannot
        double-count on restart.
        """
        if not self.ledger_path.exists():
            return
        text = self.ledger_path.read_text()
        torn_tail = bool(text) and not text.endswith("\n")
        dropped_tail = False
        lines = text.split("\n")
        while lines and not lines[-1].strip():
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                dataset = str(entry["dataset"])
                epsilon = float(entry["epsilon"])
            except (ValueError, KeyError, TypeError) as exc:
                if torn_tail and lineno == len(lines):
                    _logger.warning(
                        "dropping truncated trailing ledger line",
                        extra={"ledger": str(self.ledger_path), "line": lineno},
                    )
                    dropped_tail = True
                    break
                # A ledger we cannot read is a ledger we cannot
                # trust; refusing to start is the only safe default.
                raise ValueError(
                    f"privacy ledger {self.ledger_path} is corrupt at "
                    f"line {lineno}: {exc}"
                ) from exc
            key = str(entry["key"]) if entry.get("key") else None
            if key is not None and key in self._keys:
                _logger.warning(
                    "skipping duplicate ledger entry on replay",
                    extra={
                        "ledger": str(self.ledger_path),
                        "line": lineno,
                        "key": key,
                    },
                )
                continue
            self._entries.append(entry)
            if key is not None:
                self._keys.add(key)
            budget = self._budgets.setdefault(
                dataset, PrivacyBudget(self.epsilon_cap)
            )
            label = str(entry.get("label", ""))
            if entry.get("kind", "charge") == "refund":
                budget.spent = max(0.0, budget.spent - epsilon)
                budget.log.append((label, -epsilon))
            else:
                # Historic spends are facts: replay them verbatim even
                # when they overdraw a since-lowered cap.
                budget.spent += epsilon
                budget.log.append((label, epsilon))
        if torn_tail:
            self._repair_torn_tail(text, dropped=dropped_tail)
        for dataset, budget in self._budgets.items():
            _EPS_SPENT.set(budget.spent, dataset=dataset)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset)
        if self._budgets:
            _logger.info(
                "privacy ledger replayed",
                extra={
                    "datasets": len(self._budgets),
                    "entries": len(self._entries),
                    "ledger": str(self.ledger_path),
                },
            )

    def spent(self, dataset_id: str) -> float:
        """Cumulative ε already charged to ``dataset_id``."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            return budget.spent if budget is not None else 0.0

    def remaining(self, dataset_id: str) -> float:
        """ε still available to ``dataset_id`` under the cap."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            return budget.remaining if budget is not None else self.epsilon_cap

    def can_charge(self, dataset_id: str, epsilon: float) -> bool:
        """Whether a charge of ``epsilon`` would fit under the cap."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            if budget is None:
                budget = PrivacyBudget(self.epsilon_cap)
            return budget.can_spend(epsilon)

    def has_key(self, key: str) -> bool:
        """Whether an entry with idempotency ``key`` is already journaled."""
        with self._lock:
            return key in self._keys

    def charge(
        self,
        dataset_id: str,
        epsilon: float,
        label: str = "fit",
        key: Optional[str] = None,
    ) -> float:
        """Charge ``epsilon`` against ``dataset_id`` and journal it.

        The in-memory spend and the journal append happen under one
        lock, so concurrent fit workers cannot jointly overdraw the
        cap.  Raises :class:`BudgetExhaustedError` (journaling nothing)
        when the charge does not fit.

        With an idempotency ``key`` the charge is exactly-once: if the
        key is already journaled the call returns 0.0 without spending
        anything.  Retried fit attempts and journal-resumed jobs pass
        their job id here so re-execution never double-charges.
        """
        check_positive("epsilon", epsilon)
        with self._lock:
            if key is not None and key in self._keys:
                _logger.info(
                    "charge skipped: idempotency key already journaled",
                    extra={"dataset": dataset_id, "key": key},
                )
                return 0.0
            budget = self._budgets.setdefault(
                dataset_id, PrivacyBudget(self.epsilon_cap)
            )
            try:
                budget.spend(epsilon, label)
            except BudgetExhaustedError:
                _BUDGET_REFUSALS.inc()
                _logger.warning(
                    "charge refused: lifetime cap",
                    extra={
                        "dataset": dataset_id,
                        "epsilon": float(epsilon),
                        "spent": budget.spent,
                        "cap": self.epsilon_cap,
                    },
                )
                raise
            entry = {
                "dataset": dataset_id,
                "epsilon": float(epsilon),
                "label": label,
                "timestamp": time.time(),
            }
            if key is not None:
                entry["key"] = key
            try:
                self._append(entry)
            except BaseException:
                # The journal is the source of truth: a spend we could
                # not record must not count against future charges.
                budget.spent -= float(epsilon)
                budget.log.pop()
                _logger.exception(
                    "ledger append failed; charge rolled back",
                    extra={"dataset": dataset_id, "ledger": str(self.ledger_path)},
                )
                raise
            self._entries.append(entry)
            if key is not None:
                self._keys.add(key)
            _EPS_SPENT.set(budget.spent, dataset=dataset_id)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset_id)
            _logger.info(
                "epsilon charged",
                extra={
                    "dataset": dataset_id,
                    "epsilon": float(epsilon),
                    "label": label,
                    "spent": budget.spent,
                    "remaining": budget.remaining,
                },
            )
            return float(epsilon)

    def refund(
        self,
        dataset_id: str,
        epsilon: float,
        label: str = "refund",
        key: Optional[str] = None,
    ) -> float:
        """Return ``epsilon`` to ``dataset_id`` and journal the refund.

        **Only safe before any noise was drawn.**  The service issues a
        refund solely when a charged fit failed while the synthesizer's
        ``privacy_touched_`` flag was still ``False`` and the job
        journal records no computed stage — i.e. no DP mechanism ever
        saw the data under this charge, so the privacy loss is
        provably zero (docs/RELIABILITY.md states the argument).  Like
        :meth:`charge`, refunds are idempotent under ``key``.
        """
        check_positive("epsilon", epsilon)
        with self._lock:
            if key is not None and key in self._keys:
                return 0.0
            budget = self._budgets.setdefault(
                dataset_id, PrivacyBudget(self.epsilon_cap)
            )
            entry = {
                "dataset": dataset_id,
                "epsilon": float(epsilon),
                "label": label,
                "kind": "refund",
                "timestamp": time.time(),
            }
            if key is not None:
                entry["key"] = key
            self._append(entry)
            budget.spent = max(0.0, budget.spent - float(epsilon))
            budget.log.append((label, -float(epsilon)))
            self._entries.append(entry)
            if key is not None:
                self._keys.add(key)
            _EPS_SPENT.set(budget.spent, dataset=dataset_id)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset_id)
            _logger.info(
                "epsilon refunded",
                extra={
                    "dataset": dataset_id,
                    "epsilon": float(epsilon),
                    "label": label,
                    "remaining": budget.remaining,
                },
            )
            return float(epsilon)

    def _repair_torn_tail(self, text: str, dropped: bool) -> None:
        """Restore the newline-terminated invariant after a torn append.

        Replay tolerates a torn tail in memory, but ``_append`` opens
        the file in append mode: left unrepaired, the first
        post-recovery entry would concatenate onto the leftover
        fragment, producing one merged line that ends with a newline —
        unreadable, and no longer recognizable as torn — so the *next*
        restart would refuse to start.  Repair before accepting writes:
        truncate the dropped fragment away, or (when the tail parsed as
        a complete entry that was replayed) complete it with the
        newline its append never reached.
        """
        if dropped:
            keep = text[: text.rfind("\n") + 1]
            with self.ledger_path.open("r+b") as handle:
                handle.truncate(len(keep.encode("utf-8")))
                handle.flush()
                os.fsync(handle.fileno())
        else:
            with self.ledger_path.open("a") as handle:
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
        _logger.warning(
            "repaired torn ledger tail",
            extra={
                "ledger": str(self.ledger_path),
                "action": "truncated" if dropped else "newline-terminated",
            },
        )

    def _append(self, entry: Dict[str, Any]) -> None:
        from repro.resilience import faults

        faults.inject("ledger.append")
        self.ledger_path.parent.mkdir(parents=True, exist_ok=True)
        with self.ledger_path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def entries(self, dataset_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Journal entries, optionally restricted to one dataset."""
        with self._lock:
            if dataset_id is None:
                return [dict(e) for e in self._entries]
            return [dict(e) for e in self._entries if e["dataset"] == dataset_id]

    def summary(self, dataset_id: str) -> Dict[str, Any]:
        """JSON-ready accounting state for one dataset."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            spent = budget.spent if budget is not None else 0.0
            remaining = budget.remaining if budget is not None else self.epsilon_cap
            charges = [
                {
                    "epsilon": e["epsilon"],
                    "label": e.get("label", ""),
                    "kind": e.get("kind", "charge"),
                    "timestamp": e.get("timestamp"),
                }
                for e in self._entries
                if e["dataset"] == dataset_id
            ]
        return {
            "dataset_id": dataset_id,
            "epsilon_cap": self.epsilon_cap,
            "epsilon_spent": spent,
            "epsilon_remaining": remaining,
            "charges": charges,
        }
