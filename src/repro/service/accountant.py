"""Cross-request, cross-restart privacy accounting.

A single in-process :class:`~repro.dp.budget.PrivacyBudget` dies with
the process, which is exactly wrong for a long-running service: the
privacy loss a dataset has suffered is a property of the *data*, not of
any server instance.  :class:`PrivacyAccountant` therefore journals
every fit's ε spend to an append-only JSONL ledger file and rebuilds
the per-dataset ledgers from it on startup, so a restarted (or
horizontally re-deployed, pointed at the same data directory) service
keeps refusing fits that would push a dataset past its lifetime cap.

Sampling never goes through the accountant: drawing records from a
released model is post-processing and costs nothing (paper §3.3).

Resilience semantics (see docs/RELIABILITY.md):

* **Idempotency** — charges and refunds may carry an idempotency
  ``key``; an entry whose key is already journaled is a no-op.  The
  ledger itself is the deduplication source of truth, so a retried fit
  (worker crash, registry hiccup) can re-issue its charge safely and a
  restarted service can resume a journaled job without double-charging.
* **Refunds** — negative entries (``"kind": "refund"``) exist for
  exactly one case: a fit that failed *before drawing any noise*.  In
  that window the data never influenced a releasable value, so undoing
  the charge is provably safe.  Refunds after noise was drawn would
  break the DP guarantee and are never issued by the service.
* **Torn tails** — a crash mid-append can leave a truncated final
  line.  Replay drops exactly that line (the charge was rolled back
  in-memory when the append failed) and repairs the file back to a
  newline-terminated state so later appends start on a fresh line;
  corruption anywhere *else* still refuses startup, because a ledger
  we cannot read in the middle is a ledger we cannot trust.
* **Inter-process safety** — pre-fork serving runs one accountant per
  worker process over the *same* ledger file.  Every mutation
  (append, tail repair) happens under an ``fcntl.flock`` on a
  sidecar lock file, and before deciding anything under that lock the
  accountant **catches up**: it replays whatever bytes sibling
  processes appended since its last read (deduplicated by idempotency
  key, exactly like startup replay).  The cap check therefore always
  runs against the union of every process's charges — two workers
  racing the last slice of a dataset's budget cannot jointly overdraw
  it.  Read paths (``spent``, ``summary``...) catch up lazily when
  the file has grown, so every worker's budget view converges.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.dp.budget import BudgetExhaustedError, PrivacyBudget
from repro.service.config import PathLike
from repro.telemetry import get_logger, metrics
from repro.utils import check_positive

__all__ = ["PrivacyAccountant", "BudgetExhaustedError", "replay_ledger"]

_logger = get_logger("service.accountant")


def replay_ledger(ledger_path: PathLike) -> List[Dict[str, Any]]:
    """Pure-read replay of a ledger file: parsed, deduplicated entries.

    The budget observatory's view of the world: one buffered read with
    **no locking whatsoever** — it never touches the flock sidecar, so
    rendering burn-down timelines adds zero contention to the append
    path.  Semantics mirror the accountant's replay: entries come back
    in append order, duplicates by idempotency key are dropped, and a
    torn final line (missing its newline) is *skipped*, not repaired —
    repairs are mutations and belong to the accountant.  Unlike startup
    replay this is diagnostic, so mid-file corruption skips the bad
    line instead of refusing: an observatory must be able to look at a
    damaged ledger.
    """
    try:
        text = Path(ledger_path).read_text(encoding="utf-8")
    except OSError:
        return []
    if not text:
        return []
    if not text.endswith("\n"):
        text = text.rpartition("\n")[0]  # drop the torn tail fragment
    entries: List[Dict[str, Any]] = []
    seen_keys: set = set()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if not isinstance(entry, dict) or "dataset" not in entry:
            continue
        try:
            float(entry["epsilon"])
        except (KeyError, TypeError, ValueError):
            continue
        key = entry.get("key")
        if key is not None:
            if key in seen_keys:
                continue
            seen_keys.add(key)
        entries.append(entry)
    return entries

# Per-dataset privacy gauges: refreshed on every charge and on ledger
# replay, so /metrics always reflects the durable accounting state.
_EPS_SPENT = metrics.REGISTRY.gauge(
    "dpcopula_epsilon_spent",
    "Cumulative privacy budget charged per dataset (label: dataset)",
)
_EPS_REMAINING = metrics.REGISTRY.gauge(
    "dpcopula_epsilon_remaining",
    "Privacy budget left under the lifetime cap per dataset (label: dataset)",
)
_BUDGET_REFUSALS = metrics.REGISTRY.counter(
    "dpcopula_budget_refusals_total",
    "Charges refused because they would exceed a dataset's lifetime cap",
)


class PrivacyAccountant:
    """A durable per-dataset ε ledger with a configurable lifetime cap.

    Parameters
    ----------
    ledger_path:
        The append-only JSONL journal.  Created on first charge; an
        existing journal is replayed on construction, which is how the
        accountant survives process restarts.
    epsilon_cap:
        Maximum cumulative ε any single dataset may spend across all
        fits, ever.  Charges that would exceed it raise
        :class:`~repro.dp.budget.BudgetExhaustedError` and are *not*
        journaled.
    """

    def __init__(self, ledger_path: PathLike, epsilon_cap: float):
        self.ledger_path = Path(ledger_path)
        self.lock_path = self.ledger_path.with_name(self.ledger_path.name + ".lock")
        self.epsilon_cap = check_positive("epsilon_cap", epsilon_cap)
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []
        self._budgets: Dict[str, PrivacyBudget] = {}
        self._keys: set = set()
        # Bytes of the ledger already applied in-memory; everything past
        # it was appended by a sibling process and is replayed on the
        # next catch-up.  Complete lines only: a torn fragment is never
        # consumed until it is repaired.
        self._offset = 0
        self._lineno = 0
        with self._lock, self._interprocess_lock():
            self._catch_up_locked(startup=True)

    @contextmanager
    def _interprocess_lock(self):
        """Exclusive ``fcntl.flock`` over the ledger's sidecar lock file.

        Serializes appends, tail repairs and catch-up replay across
        *processes* (the ``threading.Lock`` only covers this process).
        Closing the descriptor releases the lock, so a crashed holder
        can never wedge its siblings.  No-op where ``fcntl`` does not
        exist (non-POSIX) — there the accountant is single-process
        only, matching the pre-fork server's platform support.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)

    def _maybe_refresh_locked(self) -> None:
        """Catch up on sibling appends iff the file grew (thread lock held).

        A bare ``stat`` is the fast path: when the ledger's size equals
        the bytes we already consumed nothing new exists and no flock
        is taken.
        """
        try:
            size = self.ledger_path.stat().st_size
        except (FileNotFoundError, OSError):
            return
        if size != self._offset:
            with self._interprocess_lock():
                self._catch_up_locked()

    def _catch_up_locked(self, startup: bool = False) -> None:
        """Apply every ledger entry past ``self._offset`` (both locks held).

        This is startup replay *and* inter-process catch-up: the first
        call consumes the whole file, later calls only the bytes
        sibling processes appended since.  A truncated *final* line
        (torn append from a crash mid-write) is dropped with a warning
        — the matching in-memory charge was rolled back when the
        append raised, so the entry never took effect — and the file
        itself is repaired (truncated back to the last complete line,
        or newline-terminated if the tail parsed), so the next append
        starts on a fresh line instead of concatenating onto the
        leftover fragment.  Torn tails are recognized by the missing
        trailing newline (each append writes ``json + "\\n"`` in one
        call, so an interrupted one never reaches the newline); a
        *complete* line that fails to parse — anywhere, including last
        — raises, because a ledger we cannot read is a ledger we
        cannot trust.  Repairing under the flock is safe: every live
        appender holds it, so a torn tail can only belong to a dead
        writer.

        Catch-up applies the same idempotency rule as :meth:`charge` /
        :meth:`refund`: an entry whose key is already journaled is
        skipped, so a retried append whose first attempt did reach disk
        (e.g. an fsync error after a successful write) cannot
        double-count on restart, and a sibling's replay of our own
        entries cannot double-count either.
        """
        if not self.ledger_path.exists():
            return
        with self.ledger_path.open("rb") as handle:
            handle.seek(self._offset)
            raw = handle.read()
        if not raw:
            return
        text = raw.decode("utf-8")
        torn_tail = not text.endswith("\n")
        complete, _, fragment = text.rpartition("\n")
        lines = complete.split("\n") if complete else []
        for line in lines:
            self._lineno += 1
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
                str(entry["dataset"])
                float(entry["epsilon"])
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"privacy ledger {self.ledger_path} is corrupt at "
                    f"line {self._lineno}: {exc}"
                ) from exc
            self._apply_locked(entry)
        self._offset += len(complete.encode("utf-8")) + (1 if complete else 0)
        if torn_tail:
            dropped = True
            stripped = fragment.strip()
            if stripped:
                try:
                    entry = json.loads(stripped)
                    str(entry["dataset"])
                    float(entry["epsilon"])
                except (ValueError, KeyError, TypeError):
                    self._lineno += 1
                    _logger.warning(
                        "dropping truncated trailing ledger line",
                        extra={
                            "ledger": str(self.ledger_path),
                            "line": self._lineno,
                        },
                    )
                else:
                    # The tail is a complete entry whose append died
                    # between the write and the newline: keep it.
                    self._lineno += 1
                    self._apply_locked(entry)
                    self._offset += len(fragment.encode("utf-8"))
                    dropped = False
            self._repair_torn_tail_locked(dropped=dropped)
        for dataset, budget in self._budgets.items():
            _EPS_SPENT.set(budget.spent, dataset=dataset)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset)
        if startup and self._budgets:
            _logger.info(
                "privacy ledger replayed",
                extra={
                    "datasets": len(self._budgets),
                    "entries": len(self._entries),
                    "ledger": str(self.ledger_path),
                },
            )

    def _apply_locked(self, entry: Dict[str, Any]) -> None:
        """Fold one journaled entry into the in-memory ledgers."""
        key = str(entry["key"]) if entry.get("key") else None
        if key is not None and key in self._keys:
            _logger.warning(
                "skipping duplicate ledger entry on replay",
                extra={
                    "ledger": str(self.ledger_path),
                    "line": self._lineno,
                    "key": key,
                },
            )
            return
        self._entries.append(entry)
        if key is not None:
            self._keys.add(key)
        dataset = str(entry["dataset"])
        epsilon = float(entry["epsilon"])
        budget = self._budgets.setdefault(dataset, PrivacyBudget(self.epsilon_cap))
        label = str(entry.get("label", ""))
        if entry.get("kind", "charge") == "refund":
            budget.spent = max(0.0, budget.spent - epsilon)
            budget.log.append((label, -epsilon))
        else:
            # Historic spends are facts: replay them verbatim even
            # when they overdraw a since-lowered cap.
            budget.spent += epsilon
            budget.log.append((label, epsilon))

    def spent(self, dataset_id: str) -> float:
        """Cumulative ε already charged to ``dataset_id``."""
        with self._lock:
            self._maybe_refresh_locked()
            budget = self._budgets.get(dataset_id)
            return budget.spent if budget is not None else 0.0

    def remaining(self, dataset_id: str) -> float:
        """ε still available to ``dataset_id`` under the cap."""
        with self._lock:
            self._maybe_refresh_locked()
            budget = self._budgets.get(dataset_id)
            return budget.remaining if budget is not None else self.epsilon_cap

    def can_charge(self, dataset_id: str, epsilon: float) -> bool:
        """Whether a charge of ``epsilon`` would fit under the cap.

        Advisory in a multi-process fleet: the authoritative check runs
        inside :meth:`charge` under the inter-process lock; this one
        merely catches up first so refusals are as fresh as possible.
        """
        with self._lock:
            self._maybe_refresh_locked()
            budget = self._budgets.get(dataset_id)
            if budget is None:
                budget = PrivacyBudget(self.epsilon_cap)
            return budget.can_spend(epsilon)

    def has_key(self, key: str) -> bool:
        """Whether an entry with idempotency ``key`` is already journaled."""
        with self._lock:
            self._maybe_refresh_locked()
            return key in self._keys

    def charge(
        self,
        dataset_id: str,
        epsilon: float,
        label: str = "fit",
        key: Optional[str] = None,
    ) -> float:
        """Charge ``epsilon`` against ``dataset_id`` and journal it.

        The in-memory spend and the journal append happen under one
        lock, so concurrent fit workers cannot jointly overdraw the
        cap.  Raises :class:`BudgetExhaustedError` (journaling nothing)
        when the charge does not fit.

        With an idempotency ``key`` the charge is exactly-once: if the
        key is already journaled the call returns 0.0 without spending
        anything.  Retried fit attempts and journal-resumed jobs pass
        their job id here so re-execution never double-charges.
        """
        check_positive("epsilon", epsilon)
        with self._lock, self._interprocess_lock():
            # Catch up on sibling processes' appends *inside* the flock:
            # the cap check below must see every charge any process has
            # journaled, or two workers could jointly overdraw it.
            self._catch_up_locked()
            if key is not None and key in self._keys:
                _logger.info(
                    "charge skipped: idempotency key already journaled",
                    extra={"dataset": dataset_id, "key": key},
                )
                return 0.0
            budget = self._budgets.setdefault(
                dataset_id, PrivacyBudget(self.epsilon_cap)
            )
            try:
                budget.spend(epsilon, label)
            except BudgetExhaustedError:
                _BUDGET_REFUSALS.inc()
                _logger.warning(
                    "charge refused: lifetime cap",
                    extra={
                        "dataset": dataset_id,
                        "epsilon": float(epsilon),
                        "spent": budget.spent,
                        "cap": self.epsilon_cap,
                    },
                )
                raise
            entry = {
                "dataset": dataset_id,
                "epsilon": float(epsilon),
                "label": label,
                "timestamp": time.time(),
            }
            if key is not None:
                entry["key"] = key
            try:
                self._offset += self._append(entry)
                self._lineno += 1
            except BaseException:
                # The journal is the source of truth: a spend we could
                # not record must not count against future charges.
                budget.spent -= float(epsilon)
                budget.log.pop()
                _logger.exception(
                    "ledger append failed; charge rolled back",
                    extra={"dataset": dataset_id, "ledger": str(self.ledger_path)},
                )
                raise
            self._entries.append(entry)
            if key is not None:
                self._keys.add(key)
            _EPS_SPENT.set(budget.spent, dataset=dataset_id)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset_id)
            _logger.info(
                "epsilon charged",
                extra={
                    "dataset": dataset_id,
                    "epsilon": float(epsilon),
                    "label": label,
                    "spent": budget.spent,
                    "remaining": budget.remaining,
                },
            )
            return float(epsilon)

    def refund(
        self,
        dataset_id: str,
        epsilon: float,
        label: str = "refund",
        key: Optional[str] = None,
    ) -> float:
        """Return ``epsilon`` to ``dataset_id`` and journal the refund.

        **Only safe before any noise was drawn.**  The service issues a
        refund solely when a charged fit failed while the synthesizer's
        ``privacy_touched_`` flag was still ``False`` and the job
        journal records no computed stage — i.e. no DP mechanism ever
        saw the data under this charge, so the privacy loss is
        provably zero (docs/RELIABILITY.md states the argument).  Like
        :meth:`charge`, refunds are idempotent under ``key``.
        """
        check_positive("epsilon", epsilon)
        with self._lock, self._interprocess_lock():
            self._catch_up_locked()
            if key is not None and key in self._keys:
                return 0.0
            budget = self._budgets.setdefault(
                dataset_id, PrivacyBudget(self.epsilon_cap)
            )
            entry = {
                "dataset": dataset_id,
                "epsilon": float(epsilon),
                "label": label,
                "kind": "refund",
                "timestamp": time.time(),
            }
            if key is not None:
                entry["key"] = key
            self._offset += self._append(entry)
            self._lineno += 1
            budget.spent = max(0.0, budget.spent - float(epsilon))
            budget.log.append((label, -float(epsilon)))
            self._entries.append(entry)
            if key is not None:
                self._keys.add(key)
            _EPS_SPENT.set(budget.spent, dataset=dataset_id)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset_id)
            _logger.info(
                "epsilon refunded",
                extra={
                    "dataset": dataset_id,
                    "epsilon": float(epsilon),
                    "label": label,
                    "remaining": budget.remaining,
                },
            )
            return float(epsilon)

    def _repair_torn_tail_locked(self, dropped: bool) -> None:
        """Restore the newline-terminated invariant after a torn append.

        Catch-up tolerates a torn tail in memory, but ``_append`` opens
        the file in append mode: left unrepaired, the first
        post-recovery entry would concatenate onto the leftover
        fragment, producing one merged line that ends with a newline —
        unreadable, and no longer recognizable as torn — so the *next*
        restart would refuse to start.  Repair before accepting writes
        (the flock is held, so only a dead writer's fragment can be
        here): truncate the dropped fragment away, or (when the tail
        parsed as a complete entry that was replayed) complete it with
        the newline its append never reached.
        """
        if dropped:
            with self.ledger_path.open("r+b") as handle:
                handle.truncate(self._offset)
                handle.flush()
                os.fsync(handle.fileno())
        else:
            with self.ledger_path.open("a") as handle:
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._offset += 1
        _logger.warning(
            "repaired torn ledger tail",
            extra={
                "ledger": str(self.ledger_path),
                "action": "truncated" if dropped else "newline-terminated",
            },
        )

    def _append(self, entry: Dict[str, Any]) -> int:
        """Durably append one entry; returns the bytes written."""
        from repro.resilience import faults

        faults.inject("ledger.append")
        self.ledger_path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        with self.ledger_path.open("ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return len(data)

    def entries(self, dataset_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Journal entries, optionally restricted to one dataset."""
        with self._lock:
            self._maybe_refresh_locked()
            if dataset_id is None:
                return [dict(e) for e in self._entries]
            return [dict(e) for e in self._entries if e["dataset"] == dataset_id]

    def summary(self, dataset_id: str) -> Dict[str, Any]:
        """JSON-ready accounting state for one dataset."""
        with self._lock:
            self._maybe_refresh_locked()
            budget = self._budgets.get(dataset_id)
            spent = budget.spent if budget is not None else 0.0
            remaining = budget.remaining if budget is not None else self.epsilon_cap
            charges = [
                {
                    "epsilon": e["epsilon"],
                    "label": e.get("label", ""),
                    "kind": e.get("kind", "charge"),
                    "timestamp": e.get("timestamp"),
                }
                for e in self._entries
                if e["dataset"] == dataset_id
            ]
        return {
            "dataset_id": dataset_id,
            "epsilon_cap": self.epsilon_cap,
            "epsilon_spent": spent,
            "epsilon_remaining": remaining,
            "charges": charges,
        }
