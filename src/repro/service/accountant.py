"""Cross-request, cross-restart privacy accounting.

A single in-process :class:`~repro.dp.budget.PrivacyBudget` dies with
the process, which is exactly wrong for a long-running service: the
privacy loss a dataset has suffered is a property of the *data*, not of
any server instance.  :class:`PrivacyAccountant` therefore journals
every fit's ε spend to an append-only JSONL ledger file and rebuilds
the per-dataset ledgers from it on startup, so a restarted (or
horizontally re-deployed, pointed at the same data directory) service
keeps refusing fits that would push a dataset past its lifetime cap.

Sampling never goes through the accountant: drawing records from a
released model is post-processing and costs nothing (paper §3.3).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.dp.budget import BudgetExhaustedError, PrivacyBudget
from repro.service.config import PathLike
from repro.telemetry import get_logger, metrics
from repro.utils import check_positive

__all__ = ["PrivacyAccountant", "BudgetExhaustedError"]

_logger = get_logger("service.accountant")

# Per-dataset privacy gauges: refreshed on every charge and on ledger
# replay, so /metrics always reflects the durable accounting state.
_EPS_SPENT = metrics.REGISTRY.gauge(
    "dpcopula_epsilon_spent",
    "Cumulative privacy budget charged per dataset (label: dataset)",
)
_EPS_REMAINING = metrics.REGISTRY.gauge(
    "dpcopula_epsilon_remaining",
    "Privacy budget left under the lifetime cap per dataset (label: dataset)",
)
_BUDGET_REFUSALS = metrics.REGISTRY.counter(
    "dpcopula_budget_refusals_total",
    "Charges refused because they would exceed a dataset's lifetime cap",
)


class PrivacyAccountant:
    """A durable per-dataset ε ledger with a configurable lifetime cap.

    Parameters
    ----------
    ledger_path:
        The append-only JSONL journal.  Created on first charge; an
        existing journal is replayed on construction, which is how the
        accountant survives process restarts.
    epsilon_cap:
        Maximum cumulative ε any single dataset may spend across all
        fits, ever.  Charges that would exceed it raise
        :class:`~repro.dp.budget.BudgetExhaustedError` and are *not*
        journaled.
    """

    def __init__(self, ledger_path: PathLike, epsilon_cap: float):
        self.ledger_path = Path(ledger_path)
        self.epsilon_cap = check_positive("epsilon_cap", epsilon_cap)
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []
        self._budgets: Dict[str, PrivacyBudget] = {}
        self._replay()

    def _replay(self) -> None:
        """Rebuild per-dataset ledgers from the journal file."""
        if not self.ledger_path.exists():
            return
        per_dataset: Dict[str, List] = {}
        with self.ledger_path.open() as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    dataset = str(entry["dataset"])
                    epsilon = float(entry["epsilon"])
                except (ValueError, KeyError, TypeError) as exc:
                    # A ledger we cannot read is a ledger we cannot
                    # trust; refusing to start is the only safe default.
                    raise ValueError(
                        f"privacy ledger {self.ledger_path} is corrupt at "
                        f"line {lineno}: {exc}"
                    ) from exc
                self._entries.append(entry)
                per_dataset.setdefault(dataset, []).append(
                    (str(entry.get("label", "")), epsilon)
                )
        for dataset, spends in per_dataset.items():
            budget = PrivacyBudget.replay(self.epsilon_cap, spends)
            self._budgets[dataset] = budget
            _EPS_SPENT.set(budget.spent, dataset=dataset)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset)
        if per_dataset:
            _logger.info(
                "privacy ledger replayed",
                extra={
                    "datasets": len(per_dataset),
                    "entries": len(self._entries),
                    "ledger": str(self.ledger_path),
                },
            )

    def spent(self, dataset_id: str) -> float:
        """Cumulative ε already charged to ``dataset_id``."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            return budget.spent if budget is not None else 0.0

    def remaining(self, dataset_id: str) -> float:
        """ε still available to ``dataset_id`` under the cap."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            return budget.remaining if budget is not None else self.epsilon_cap

    def can_charge(self, dataset_id: str, epsilon: float) -> bool:
        """Whether a charge of ``epsilon`` would fit under the cap."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            if budget is None:
                budget = PrivacyBudget(self.epsilon_cap)
            return budget.can_spend(epsilon)

    def charge(self, dataset_id: str, epsilon: float, label: str = "fit") -> float:
        """Charge ``epsilon`` against ``dataset_id`` and journal it.

        The in-memory spend and the journal append happen under one
        lock, so concurrent fit workers cannot jointly overdraw the
        cap.  Raises :class:`BudgetExhaustedError` (journaling nothing)
        when the charge does not fit.
        """
        check_positive("epsilon", epsilon)
        with self._lock:
            budget = self._budgets.setdefault(
                dataset_id, PrivacyBudget(self.epsilon_cap)
            )
            try:
                budget.spend(epsilon, label)
            except BudgetExhaustedError:
                _BUDGET_REFUSALS.inc()
                _logger.warning(
                    "charge refused: lifetime cap",
                    extra={
                        "dataset": dataset_id,
                        "epsilon": float(epsilon),
                        "spent": budget.spent,
                        "cap": self.epsilon_cap,
                    },
                )
                raise
            entry = {
                "dataset": dataset_id,
                "epsilon": float(epsilon),
                "label": label,
                "timestamp": time.time(),
            }
            try:
                self._append(entry)
            except BaseException:
                # The journal is the source of truth: a spend we could
                # not record must not count against future charges.
                budget.spent -= float(epsilon)
                budget.log.pop()
                _logger.exception(
                    "ledger append failed; charge rolled back",
                    extra={"dataset": dataset_id, "ledger": str(self.ledger_path)},
                )
                raise
            self._entries.append(entry)
            _EPS_SPENT.set(budget.spent, dataset=dataset_id)
            _EPS_REMAINING.set(budget.remaining, dataset=dataset_id)
            _logger.info(
                "epsilon charged",
                extra={
                    "dataset": dataset_id,
                    "epsilon": float(epsilon),
                    "label": label,
                    "spent": budget.spent,
                    "remaining": budget.remaining,
                },
            )
            return float(epsilon)

    def _append(self, entry: Dict[str, Any]) -> None:
        self.ledger_path.parent.mkdir(parents=True, exist_ok=True)
        with self.ledger_path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def entries(self, dataset_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Journal entries, optionally restricted to one dataset."""
        with self._lock:
            if dataset_id is None:
                return [dict(e) for e in self._entries]
            return [dict(e) for e in self._entries if e["dataset"] == dataset_id]

    def summary(self, dataset_id: str) -> Dict[str, Any]:
        """JSON-ready accounting state for one dataset."""
        with self._lock:
            budget = self._budgets.get(dataset_id)
            spent = budget.spent if budget is not None else 0.0
            remaining = budget.remaining if budget is not None else self.epsilon_cap
            charges = [
                {
                    "epsilon": e["epsilon"],
                    "label": e.get("label", ""),
                    "timestamp": e.get("timestamp"),
                }
                for e in self._entries
                if e["dataset"] == dataset_id
            ]
        return {
            "dataset_id": dataset_id,
            "epsilon_cap": self.epsilon_cap,
            "epsilon_spent": spent,
            "epsilon_remaining": remaining,
            "charges": charges,
        }
