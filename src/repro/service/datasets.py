"""Store of uploaded original datasets.

Uploaded CSVs are the *sensitive* inputs: they are parsed and validated
on upload (schema header, domain bounds), persisted under the data
directory, and only ever read again by fit jobs.  The service never
returns original records over the API — only schema summaries and
privacy-paid synthetic samples leave the store.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.data.dataset import Dataset
from repro.io import load_dataset_csv
from repro.service.config import (
    PathLike,
    atomic_write_bytes,
    check_identifier,
    fsync_directory,
)
from repro.service.serializers import dataset_summary

__all__ = ["DatasetStore"]


class DatasetStore:
    """Filesystem-backed store: ``<directory>/<id>.csv`` + ``.json`` sidecar."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._cache: Dict[str, Dataset] = {}

    def _csv_path(self, dataset_id: str) -> Path:
        return self.directory / f"{dataset_id}.csv"

    def _sidecar_path(self, dataset_id: str) -> Path:
        return self.directory / f"{dataset_id}.json"

    def put(self, dataset_id: str, csv_text: str) -> Dict[str, Any]:
        """Validate and persist an uploaded CSV; return its summary."""
        check_identifier("dataset", dataset_id)
        with self._lock:
            if self._sidecar_path(dataset_id).exists():
                raise ValueError(f"dataset id {dataset_id!r} already exists")
            # Parse before persisting so malformed uploads leave no trace.
            staging = self.directory / f".{dataset_id}.upload.csv"
            with staging.open("w") as handle:
                handle.write(csv_text)
                handle.flush()
                os.fsync(handle.fileno())
            try:
                dataset = load_dataset_csv(staging)
            except Exception:
                staging.unlink(missing_ok=True)
                raise
            staging.replace(self._csv_path(dataset_id))
            fsync_directory(self.directory)
            summary = dataset_summary(dataset, name=dataset_id)
            summary["uploaded_at"] = time.time()
            atomic_write_bytes(
                self._sidecar_path(dataset_id),
                (json.dumps(summary, sort_keys=True, indent=2) + "\n").encode(),
            )
            self._cache[dataset_id] = dataset
        return summary

    def get(self, dataset_id: str) -> Dataset:
        """The parsed dataset, lazily loaded and cached."""
        with self._lock:
            cached = self._cache.get(dataset_id)
            if cached is not None:
                return cached
        if not self._sidecar_path(dataset_id).exists():
            raise KeyError(f"no dataset uploaded under id {dataset_id!r}")
        dataset = load_dataset_csv(self._csv_path(dataset_id))
        with self._lock:
            return self._cache.setdefault(dataset_id, dataset)

    def summary(self, dataset_id: str) -> Dict[str, Any]:
        """The upload-time summary sidecar."""
        sidecar = self._sidecar_path(dataset_id)
        if not sidecar.exists():
            raise KeyError(f"no dataset uploaded under id {dataset_id!r}")
        return json.loads(sidecar.read_text())

    def list(self) -> List[Dict[str, Any]]:
        """Summaries of all stored datasets, newest first."""
        summaries = [
            json.loads(sidecar.read_text())
            for sidecar in sorted(self.directory.glob("*.json"))
        ]
        summaries.sort(key=lambda s: s.get("uploaded_at", 0.0), reverse=True)
        return summaries

    def __contains__(self, dataset_id: str) -> bool:
        return self._sidecar_path(dataset_id).exists()
