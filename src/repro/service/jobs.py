"""Background fit jobs.

Fitting a DPCopula model is seconds-to-minutes of work (Kendall matrix
estimation is the hot path) while sampling a registered model is
milliseconds.  Running fits inline in HTTP handler threads would let a
single fit monopolize the request pool, so fits go through a dedicated
worker: ``POST /fits`` enqueues and returns immediately with a job id,
and clients poll ``GET /fits/<id>`` until the job reports ``done`` (with
the registered model id) or ``failed`` (with the error).

Jobs are processed by a bounded pool of worker threads (default one).
Workers pull from a single FIFO queue, so jobs *start* — and charge the
accountant — in submission order; with one worker (the default) budget
refusals are fully deterministic, while a larger pool trades that for
throughput: near-simultaneous jobs racing the last slice of a dataset's
budget may charge in either order, but the accountant's lock keeps every
individual charge atomic and the ε cap inviolable either way.  Each
worker can additionally share one parallel
:class:`~repro.parallel.ExecutionContext` for the fit itself — contexts
are stateless, so a single context serves the whole pool.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry import bind_context, get_logger, metrics

__all__ = ["FitJob", "FitWorker", "JobStatus"]

_logger = get_logger("service.jobs")

_QUEUE_DEPTH = metrics.REGISTRY.gauge(
    "dpcopula_fit_queue_depth",
    "Fit jobs waiting in the worker queue (excludes the running job)",
)
_JOBS_TOTAL = metrics.REGISTRY.counter(
    "dpcopula_fit_jobs_total",
    "Finished fit jobs, by outcome (label: status)",
)
_FIT_ERRORS = metrics.REGISTRY.counter(
    "dpcopula_fit_errors_total",
    "Failed fits, by pipeline stage (label: stage)",
)


class JobStatus:
    """Lifecycle states of a fit job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class FitJob:
    """One queued model-fitting request and its evolving status."""

    job_id: str
    dataset_id: str
    method: str
    epsilon: float
    k: float
    seed: Optional[int] = None
    status: str = JobStatus.QUEUED
    model_id: Optional[str] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "dataset_id": self.dataset_id,
            "method": self.method,
            "epsilon": self.epsilon,
            "k": self.k,
            "seed": self.seed,
            "status": self.status,
            "model_id": self.model_id,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class FitWorker:
    """A bounded pool of daemon threads draining a FIFO queue of fit jobs.

    Parameters
    ----------
    runner:
        Called with each job once a worker picks it up; returns the
        registered model id.  Exceptions mark the job ``failed`` with
        the exception message and never kill the worker.
    max_workers:
        Number of pool threads.  The default of 1 preserves strictly
        serial, submission-ordered processing (deterministic budget
        refusals); raise it to overlap independent fits.
    """

    _STOP = object()

    def __init__(self, runner: Callable[[FitJob], str], max_workers: int = 1):
        if int(max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._runner = runner
        self.max_workers = int(max_workers)
        self._queue: "queue.Queue" = queue.Queue()
        self._jobs: Dict[str, FitJob] = {}
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"dpcopula-fit-worker-{i}", daemon=True
            )
            for i in range(self.max_workers)
        ]
        for thread in self._threads:
            thread.start()

    @staticmethod
    def new_job_id() -> str:
        return uuid.uuid4().hex[:12]

    def submit(self, job: FitJob) -> FitJob:
        """Enqueue ``job`` and return it (status ``queued``)."""
        with self._lock:
            if job.job_id in self._jobs:
                raise ValueError(f"job id {job.job_id!r} already submitted")
            self._jobs[job.job_id] = job
        self._queue.put(job)
        _QUEUE_DEPTH.set(self._queue.qsize())
        _logger.info(
            "fit job queued",
            extra={
                "job_id": job.job_id,
                "dataset": job.dataset_id,
                "method": job.method,
                "epsilon": job.epsilon,
            },
        )
        return job

    def queue_depth(self) -> int:
        """Jobs waiting to start (the running job is not counted)."""
        return self._queue.qsize()

    def alive(self) -> bool:
        """Whether every pool thread is still draining the queue."""
        return all(thread.is_alive() for thread in self._threads)

    def get(self, job_id: str) -> FitJob:
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"no fit job with id {job_id!r}")
            return self._jobs[job_id]

    def list(self) -> List[FitJob]:
        with self._lock:
            jobs = list(self._jobs.values())
        jobs.sort(key=lambda j: j.submitted_at, reverse=True)
        return jobs

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.02) -> FitJob:
        """Block until ``job_id`` finishes (test/CLI convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job.status in (JobStatus.DONE, JobStatus.FAILED):
                return job
            time.sleep(poll)
        raise TimeoutError(f"fit job {job_id!r} did not finish in {timeout}s")

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker after its current job (idempotent)."""
        for _ in self._threads:
            self._queue.put(self._STOP)
        for thread in self._threads:
            thread.join(timeout)

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            job: FitJob = item
            _QUEUE_DEPTH.set(self._queue.qsize())
            job.status = JobStatus.RUNNING
            job.started_at = time.time()
            with bind_context(job_id=job.job_id):
                _logger.info(
                    "fit job started",
                    extra={"dataset": job.dataset_id, "method": job.method},
                )
                try:
                    job.model_id = self._runner(job)
                except Exception as exc:
                    # The job record keeps the one-line summary for API
                    # clients; the log carries the full traceback the
                    # summary used to swallow.
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.status = JobStatus.FAILED
                    _FIT_ERRORS.inc(stage="fit_job")
                    _JOBS_TOTAL.inc(status=JobStatus.FAILED)
                    _logger.exception(
                        "fit job failed",
                        extra={"dataset": job.dataset_id, "method": job.method},
                    )
                else:
                    job.status = JobStatus.DONE
                    _JOBS_TOTAL.inc(status=JobStatus.DONE)
                    _logger.info(
                        "fit job done",
                        extra={
                            "dataset": job.dataset_id,
                            "method": job.method,
                            "model_id": job.model_id,
                            "seconds": round(time.time() - job.started_at, 6),
                        },
                    )
                finally:
                    job.finished_at = time.time()
