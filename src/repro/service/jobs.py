"""Background fit jobs.

Fitting a DPCopula model is seconds-to-minutes of work (Kendall matrix
estimation is the hot path) while sampling a registered model is
milliseconds.  Running fits inline in HTTP handler threads would let a
single fit monopolize the request pool, so fits go through a dedicated
worker: ``POST /fits`` enqueues and returns immediately with a job id,
and clients poll ``GET /fits/<id>`` until the job reports ``done`` (with
the registered model id), ``failed`` (with the error) or ``cancelled``.

Jobs are processed by a bounded pool of worker threads (default one).
Workers pull from a single FIFO queue, so jobs *start* — and charge the
accountant — in submission order; with one worker (the default) budget
refusals are fully deterministic, while a larger pool trades that for
throughput: near-simultaneous jobs racing the last slice of a dataset's
budget may charge in either order, but the accountant's lock keeps every
individual charge atomic and the ε cap inviolable either way.  Each
worker can additionally share one parallel
:class:`~repro.parallel.ExecutionContext` for the fit itself — contexts
are stateless, so a single context serves the whole pool.

Resilience (see docs/RELIABILITY.md):

* The queue is *bounded* (``max_queue``): submissions past the bound
  are refused with :class:`~repro.service.errors.QueueFullError`, which
  the HTTP layer maps to 429 + ``Retry-After``.
* Every job is journaled to a durable
  :class:`~repro.resilience.journal.JobJournal` (when one is attached),
  so a restarted service re-enqueues interrupted jobs and resumes their
  fits from per-stage checkpoints via :class:`FitCheckpoint`.
* Jobs run under an optional wall-clock deadline (``job_timeout``),
  enforced cooperatively at fit-stage and parallel-task boundaries.
* Cancellation is cooperative too: the journal's ``cancel_requested``
  flag is honored before a job starts and at each stage boundary.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.resilience.deadlines import Deadline, DeadlineExceeded, deadline_scope
from repro.resilience.journal import JobJournal
from repro.service.errors import JobCancelledError, QueueFullError
from repro.telemetry import bind_context, get_logger, metrics

__all__ = ["FitCheckpoint", "FitJob", "FitWorker", "JobStatus"]

_logger = get_logger("service.jobs")

_QUEUE_DEPTH = metrics.REGISTRY.gauge(
    "dpcopula_fit_queue_depth",
    "Fit jobs waiting in the worker queue (excludes the running job)",
)
_JOBS_TOTAL = metrics.REGISTRY.counter(
    "dpcopula_fit_jobs_total",
    "Finished fit jobs, by outcome (label: status)",
)
_FIT_ERRORS = metrics.REGISTRY.counter(
    "dpcopula_fit_errors_total",
    "Failed fits, by pipeline stage (label: stage)",
)
_QUEUE_REFUSALS = metrics.REGISTRY.counter(
    "dpcopula_fit_queue_refusals_total",
    "Fit submissions refused because the worker queue was full",
)

#: Retry-After hint (seconds) returned with queue-full refusals.
QUEUE_FULL_RETRY_AFTER = 5.0


class JobStatus:
    """Lifecycle states of a fit job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class FitJob:
    """One queued model-fitting request and its evolving status."""

    job_id: str
    dataset_id: str
    method: str
    epsilon: float
    k: float
    seed: Optional[int] = None
    status: str = JobStatus.QUEUED
    model_id: Optional[str] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_requested: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "dataset_id": self.dataset_id,
            "method": self.method,
            "epsilon": self.epsilon,
            "k": self.k,
            "seed": self.seed,
            "status": self.status,
            "model_id": self.model_id,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
        }


class FitCheckpoint:
    """Journal-backed stage checkpoint store handed to ``fit()``.

    Adapts the :class:`~repro.resilience.journal.JobJournal` to the
    duck-typed ``load(stage)``/``save(stage, arrays)`` interface of
    :meth:`repro.core.dpcopula.DPCopulaSynthesizer.fit`, and doubles as
    the cooperative-cancellation poll point: every ``load`` (called at
    each stage boundary) checks the journal's cancel flag first and
    raises :class:`~repro.service.errors.JobCancelledError` when set.
    """

    def __init__(self, journal: JobJournal, job_id: str):
        self.journal = journal
        self.job_id = job_id

    def load(self, stage: str) -> Optional[Dict[str, np.ndarray]]:
        if self.journal.cancel_requested(self.job_id):
            raise JobCancelledError(
                f"fit job {self.job_id!r} cancelled before stage {stage!r}"
            )
        arrays = self.journal.load_stage(self.job_id, stage)
        if arrays is not None:
            _logger.info(
                "fit stage restored from checkpoint",
                extra={"job_id": self.job_id, "stage": stage},
            )
        return arrays

    def save(self, stage: str, arrays: Dict[str, np.ndarray]) -> None:
        # Journal the computation BEFORE persisting the noise-bearing
        # checkpoint.  A crash between the two then leaves a journal
        # that over-claims (stage marked computed, no checkpoint) —
        # which only blocks a refund and recomputes the stage bitwise
        # from its seed.  The opposite order would leave a durable DP
        # release on disk that the refund guard cannot see.
        self.journal.mark_stage_computed(self.job_id, stage)
        self.journal.save_stage(self.job_id, stage, arrays)
        record = self.journal.load(self.job_id)
        if stage not in record.stages_done:
            self.journal.update(
                self.job_id, stages_done=record.stages_done + [stage]
            )


class FitWorker:
    """A bounded pool of daemon threads draining a FIFO queue of fit jobs.

    Parameters
    ----------
    runner:
        Called with each job once a worker picks it up; returns the
        registered model id.  Exceptions mark the job ``failed`` with
        the exception message and never kill the worker.
    max_workers:
        Number of pool threads.  The default of 1 preserves strictly
        serial, submission-ordered processing (deterministic budget
        refusals); raise it to overlap independent fits.
    max_queue:
        Upper bound on *waiting* jobs; ``submit`` raises
        :class:`QueueFullError` beyond it.  ``None`` disables the bound.
    job_timeout:
        Per-job wall-clock deadline in seconds, installed around the
        runner with :func:`~repro.resilience.deadlines.deadline_scope`.
        ``None`` means unlimited.
    journal:
        Optional durable :class:`~repro.resilience.journal.JobJournal`;
        when attached, every lifecycle transition is persisted and jobs
        survive process restarts.
    """

    _STOP = object()

    def __init__(
        self,
        runner: Callable[[FitJob], str],
        max_workers: int = 1,
        max_queue: Optional[int] = None,
        job_timeout: Optional[float] = None,
        journal: Optional[JobJournal] = None,
    ):
        if int(max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_queue is not None and int(max_queue) < 1:
            raise ValueError(f"max_queue must be >= 1 or None, got {max_queue}")
        self._runner = runner
        self.max_workers = int(max_workers)
        self.max_queue = int(max_queue) if max_queue is not None else None
        self.job_timeout = job_timeout
        self.journal = journal
        self._queue: "queue.Queue" = queue.Queue()
        self._jobs: Dict[str, FitJob] = {}
        self._lock = threading.Lock()
        self._skip_pending = False
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"dpcopula-fit-worker-{i}", daemon=True
            )
            for i in range(self.max_workers)
        ]
        for thread in self._threads:
            thread.start()

    @staticmethod
    def new_job_id() -> str:
        return uuid.uuid4().hex[:12]

    def submit(self, job: FitJob, force: bool = False) -> FitJob:
        """Enqueue ``job`` and return it (status ``queued``).

        Raises :class:`QueueFullError` when the waiting-job bound is
        reached: shedding load at submission keeps both the queue and
        the durable journal from growing without limit under a
        misbehaving client.  ``force`` bypasses the bound — used for
        startup recovery, where every journaled job must re-enter the
        queue regardless of its length.
        """
        with self._lock:
            if job.job_id in self._jobs:
                raise ValueError(f"job id {job.job_id!r} already submitted")
            if (
                not force
                and self.max_queue is not None
                and self._queue.qsize() >= self.max_queue
            ):
                _QUEUE_REFUSALS.inc()
                _logger.warning(
                    "fit submission refused: queue full",
                    extra={"job_id": job.job_id, "max_queue": self.max_queue},
                )
                raise QueueFullError(
                    f"fit queue is full ({self.max_queue} jobs waiting); "
                    "retry later",
                    retry_after=QUEUE_FULL_RETRY_AFTER,
                )
            self._jobs[job.job_id] = job
            # Enqueue under the same lock as the bound check: concurrent
            # submits could otherwise each pass the check before either
            # puts, overshooting max_queue.  The queue is unbounded at
            # the queue.Queue level, so this put never blocks.
            self._queue.put(job)
        _QUEUE_DEPTH.set(self._queue.qsize())
        _logger.info(
            "fit job queued",
            extra={
                "job_id": job.job_id,
                "dataset": job.dataset_id,
                "method": job.method,
                "epsilon": job.epsilon,
            },
        )
        return job

    def queue_depth(self) -> int:
        """Jobs waiting to start (the running job is not counted)."""
        return self._queue.qsize()

    def alive(self) -> bool:
        """Whether every pool thread is still draining the queue."""
        return all(thread.is_alive() for thread in self._threads)

    def get(self, job_id: str) -> FitJob:
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"no fit job with id {job_id!r}")
            return self._jobs[job_id]

    def known(self, job_id: str) -> bool:
        """Whether this worker has ever accepted ``job_id``.

        Used by the fit owner's journal poller to tell follower
        submissions it has not picked up yet from jobs already in its
        queue or history.
        """
        with self._lock:
            return job_id in self._jobs

    def list(self) -> List[FitJob]:
        with self._lock:
            jobs = list(self._jobs.values())
        jobs.sort(key=lambda j: j.submitted_at, reverse=True)
        return jobs

    def request_cancel(self, job_id: str) -> FitJob:
        """Flag a job for cooperative cancellation (queued or running)."""
        job = self.get(job_id)
        job.cancel_requested = True
        if self.journal is not None and job.job_id in self.journal:
            self.journal.request_cancel(job.job_id)
        return job

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.02) -> FitJob:
        """Block until ``job_id`` finishes (test/CLI convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job.status in JobStatus.TERMINAL:
                return job
            time.sleep(poll)
        raise TimeoutError(f"fit job {job_id!r} did not finish in {timeout}s")

    def close(self, timeout: float = 5.0, drain: bool = False) -> None:
        """Stop the pool (idempotent).

        ``drain=False`` (the default) stops each worker after its
        current job; still-queued jobs are *skipped in memory but left
        journaled as queued*, so a restarted service re-enqueues and
        runs them.  ``drain=True`` processes everything already queued
        before stopping.
        """
        if not drain:
            self._skip_pending = True
        for _ in self._threads:
            self._queue.put(self._STOP)
        for thread in self._threads:
            thread.join(timeout)

    # -- worker loop ------------------------------------------------------

    def _journal_update(self, job_id: str, **fields: Any) -> None:
        """Best-effort journal transition; never kills the worker thread."""
        if self.journal is None or job_id not in self.journal:
            return
        try:
            self.journal.update(job_id, **fields)
        except OSError:
            _logger.exception(
                "journal update failed", extra={"job_id": job_id}
            )

    def _cancelled_before_start(self, job: FitJob) -> bool:
        if job.cancel_requested:
            return True
        if self.journal is not None and self.journal.cancel_requested(job.job_id):
            job.cancel_requested = True
            return True
        return False

    def _run_job(self, job: FitJob) -> str:
        if self.job_timeout is None:
            return self._runner(job)
        with deadline_scope(Deadline.after(self.job_timeout)):
            return self._runner(job)

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            job: FitJob = item
            _QUEUE_DEPTH.set(self._queue.qsize())
            if self._skip_pending:
                # Undrained shutdown: leave the job journaled as queued
                # so the next service start resumes it.
                _logger.info(
                    "skipping queued job at shutdown", extra={"job_id": job.job_id}
                )
                continue
            if self._cancelled_before_start(job):
                job.status = JobStatus.CANCELLED
                job.error = "cancelled before start"
                job.finished_at = time.time()
                self._journal_update(
                    job.job_id, state="cancelled", error=job.error
                )
                _JOBS_TOTAL.inc(status=JobStatus.CANCELLED)
                _logger.info(
                    "fit job cancelled before start", extra={"job_id": job.job_id}
                )
                continue
            job.status = JobStatus.RUNNING
            job.started_at = time.time()
            if self.journal is not None and job.job_id in self.journal:
                try:
                    attempts = self.journal.load(job.job_id).attempts
                except (KeyError, ValueError, OSError):
                    attempts = 0
                self._journal_update(
                    job.job_id, state="running", attempts=attempts + 1
                )
            with bind_context(job_id=job.job_id):
                _logger.info(
                    "fit job started",
                    extra={"dataset": job.dataset_id, "method": job.method},
                )
                try:
                    job.model_id = self._run_job(job)
                except JobCancelledError as exc:
                    job.error = str(exc)
                    job.status = JobStatus.CANCELLED
                    self._journal_update(
                        job.job_id, state="cancelled", error=job.error
                    )
                    _JOBS_TOTAL.inc(status=JobStatus.CANCELLED)
                    _logger.info(
                        "fit job cancelled",
                        extra={"dataset": job.dataset_id, "method": job.method},
                    )
                except DeadlineExceeded as exc:
                    job.error = f"DeadlineExceeded: {exc}"
                    job.status = JobStatus.FAILED
                    self._journal_update(
                        job.job_id, state="failed", error=job.error
                    )
                    _FIT_ERRORS.inc(stage="deadline")
                    _JOBS_TOTAL.inc(status=JobStatus.FAILED)
                    _logger.warning(
                        "fit job exceeded its deadline",
                        extra={
                            "dataset": job.dataset_id,
                            "method": job.method,
                            "timeout": self.job_timeout,
                        },
                    )
                except Exception as exc:
                    # The job record keeps the one-line summary for API
                    # clients; the log carries the full traceback the
                    # summary used to swallow.
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.status = JobStatus.FAILED
                    self._journal_update(
                        job.job_id, state="failed", error=job.error
                    )
                    _FIT_ERRORS.inc(stage="fit_job")
                    _JOBS_TOTAL.inc(status=JobStatus.FAILED)
                    _logger.exception(
                        "fit job failed",
                        extra={"dataset": job.dataset_id, "method": job.method},
                    )
                else:
                    job.status = JobStatus.DONE
                    self._journal_update(
                        job.job_id, state="done", model_id=job.model_id
                    )
                    if self.journal is not None:
                        self.journal.drop_stages(job.job_id)
                    _JOBS_TOTAL.inc(status=JobStatus.DONE)
                    _logger.info(
                        "fit job done",
                        extra={
                            "dataset": job.dataset_id,
                            "method": job.method,
                            "model_id": job.model_id,
                            "seconds": round(time.time() - job.started_at, 6),
                        },
                    )
                finally:
                    job.finished_at = time.time()
