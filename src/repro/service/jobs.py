"""Background fit jobs.

Fitting a DPCopula model is seconds-to-minutes of work (Kendall matrix
estimation is the hot path) while sampling a registered model is
milliseconds.  Running fits inline in HTTP handler threads would let a
single fit monopolize the request pool, so fits go through a dedicated
worker: ``POST /fits`` enqueues and returns immediately with a job id,
and clients poll ``GET /fits/<id>`` until the job reports ``done`` (with
the registered model id) or ``failed`` (with the error).

Jobs are processed by a bounded pool of worker threads (default one).
Workers pull from a single FIFO queue, so jobs *start* — and charge the
accountant — in submission order; with one worker (the default) budget
refusals are fully deterministic, while a larger pool trades that for
throughput: near-simultaneous jobs racing the last slice of a dataset's
budget may charge in either order, but the accountant's lock keeps every
individual charge atomic and the ε cap inviolable either way.  Each
worker can additionally share one parallel
:class:`~repro.parallel.ExecutionContext` for the fit itself — contexts
are stateless, so a single context serves the whole pool.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["FitJob", "FitWorker", "JobStatus"]


class JobStatus:
    """Lifecycle states of a fit job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class FitJob:
    """One queued model-fitting request and its evolving status."""

    job_id: str
    dataset_id: str
    method: str
    epsilon: float
    k: float
    seed: Optional[int] = None
    status: str = JobStatus.QUEUED
    model_id: Optional[str] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "dataset_id": self.dataset_id,
            "method": self.method,
            "epsilon": self.epsilon,
            "k": self.k,
            "seed": self.seed,
            "status": self.status,
            "model_id": self.model_id,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class FitWorker:
    """A bounded pool of daemon threads draining a FIFO queue of fit jobs.

    Parameters
    ----------
    runner:
        Called with each job once a worker picks it up; returns the
        registered model id.  Exceptions mark the job ``failed`` with
        the exception message and never kill the worker.
    max_workers:
        Number of pool threads.  The default of 1 preserves strictly
        serial, submission-ordered processing (deterministic budget
        refusals); raise it to overlap independent fits.
    """

    _STOP = object()

    def __init__(self, runner: Callable[[FitJob], str], max_workers: int = 1):
        if int(max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._runner = runner
        self.max_workers = int(max_workers)
        self._queue: "queue.Queue" = queue.Queue()
        self._jobs: Dict[str, FitJob] = {}
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"dpcopula-fit-worker-{i}", daemon=True
            )
            for i in range(self.max_workers)
        ]
        for thread in self._threads:
            thread.start()

    @staticmethod
    def new_job_id() -> str:
        return uuid.uuid4().hex[:12]

    def submit(self, job: FitJob) -> FitJob:
        """Enqueue ``job`` and return it (status ``queued``)."""
        with self._lock:
            if job.job_id in self._jobs:
                raise ValueError(f"job id {job.job_id!r} already submitted")
            self._jobs[job.job_id] = job
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> FitJob:
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"no fit job with id {job_id!r}")
            return self._jobs[job_id]

    def list(self) -> List[FitJob]:
        with self._lock:
            jobs = list(self._jobs.values())
        jobs.sort(key=lambda j: j.submitted_at, reverse=True)
        return jobs

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.02) -> FitJob:
        """Block until ``job_id`` finishes (test/CLI convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job.status in (JobStatus.DONE, JobStatus.FAILED):
                return job
            time.sleep(poll)
        raise TimeoutError(f"fit job {job_id!r} did not finish in {timeout}s")

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker after its current job (idempotent)."""
        for _ in self._threads:
            self._queue.put(self._STOP)
        for thread in self._threads:
            thread.join(timeout)

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            job: FitJob = item
            job.status = JobStatus.RUNNING
            job.started_at = time.time()
            try:
                job.model_id = self._runner(job)
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = JobStatus.FAILED
            else:
                job.status = JobStatus.DONE
            finally:
                job.finished_at = time.time()
