"""Service-level errors with HTTP status semantics."""

from __future__ import annotations


class ServiceError(Exception):
    """An operation failure the HTTP layer maps to a status code.

    Raised by :class:`~repro.service.app.SynthesisService` operations so
    the transport layer can translate failures uniformly; non-HTTP
    callers (tests, embedding applications) get an exception whose
    ``status`` documents the failure class.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


class NotFoundError(ServiceError):
    """A dataset, model or job id that does not exist (404)."""

    def __init__(self, message: str):
        super().__init__(404, message)


class ValidationError(ServiceError):
    """A malformed or unsupported request (400)."""

    def __init__(self, message: str):
        super().__init__(400, message)


class BudgetRefusedError(ServiceError):
    """A fit refused because it would exceed the dataset's ε cap (409)."""

    def __init__(self, message: str):
        super().__init__(409, message)
