"""Service-level errors with HTTP status semantics."""

from __future__ import annotations


class ServiceError(Exception):
    """An operation failure the HTTP layer maps to a status code.

    Raised by :class:`~repro.service.app.SynthesisService` operations so
    the transport layer can translate failures uniformly; non-HTTP
    callers (tests, embedding applications) get an exception whose
    ``status`` documents the failure class.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


class NotFoundError(ServiceError):
    """A dataset, model or job id that does not exist (404)."""

    def __init__(self, message: str):
        super().__init__(404, message)


class ValidationError(ServiceError):
    """A malformed or unsupported request (400)."""

    def __init__(self, message: str):
        super().__init__(400, message)


class BudgetRefusedError(ServiceError):
    """A fit refused because it would exceed the dataset's ε cap (409)."""

    def __init__(self, message: str):
        super().__init__(409, message)


class QueueFullError(ServiceError):
    """The fit queue is at capacity; retry after backoff (429).

    ``retry_after`` is a best-effort hint, surfaced by the HTTP layer
    as a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 30.0):
        super().__init__(429, message)
        self.retry_after = float(retry_after)


class JobCancelledError(ServiceError):
    """A fit job stopped because its cancellation flag was set (409).

    Raised cooperatively at stage boundaries by the checkpoint the job
    journal hands to ``fit()``; the worker maps it to the terminal
    ``cancelled`` state rather than ``failed``.
    """

    def __init__(self, message: str):
        super().__init__(409, message)
