"""Durable registry of released DPCopula models.

A fitted model is the *expensive* artifact: producing it consumed
privacy budget that can never be recovered.  Sampling from it is free
post-processing.  The registry therefore persists every released model
the moment a fit finishes — NPZ payload plus a JSON metadata sidecar —
and serves it forever, across process restarts, without refitting.

Listing reads only the lightweight sidecars; the NPZ payload is loaded
lazily on first sample and cached, so a registry with thousands of
models starts instantly.  The in-memory cache is **bounded**: at most
``max_cached_models`` entries stay resident, evicted least-recently-used
(evictions only drop the cached copy — the durable NPZ always remains,
so an evicted model silently reloads on next use).

Each cache entry carries the model's compiled
:class:`~repro.engine.plan.SamplerPlan` alongside the model itself, and
every model id has a monotonically increasing **generation** number.
:meth:`ModelRegistry.replace` hot-swaps a model's released state in
place and bumps the generation, which is how downstream plan consumers
(the sampling engine's shared stores and coalescer) atomically retire
stale plans.

Generations are **durable and cross-process**: the sidecar records the
current generation, and every cache hit re-checks the sidecar's stat
fingerprint (inode + mtime + size — one ``stat`` call, no read).  A
``replace`` performed by *any* process atomically swaps the sidecar, so
sibling pre-fork workers watching the fingerprint reload the model and
recompile the plan at the bumped generation on their very next lookup —
no request ever mixes old arrays with a new generation tag.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.engine.plan import SamplerPlan, compile_plan
from repro.io import MODEL_FORMAT_VERSION, ReleasedModel
from repro.service.config import PathLike, atomic_write_bytes, check_identifier
from repro.telemetry import metrics

__all__ = ["ModelRecord", "ModelRegistry"]

_EVICTIONS = metrics.REGISTRY.counter(
    "dpcopula_registry_evictions_total",
    "Models dropped from the registry's in-memory LRU cache",
)
_PLAN_HITS = metrics.REGISTRY.counter(
    "dpcopula_plan_cache_hits_total",
    "Sampler-plan lookups served from the registry cache",
)
_PLAN_MISSES = metrics.REGISTRY.counter(
    "dpcopula_plan_cache_misses_total",
    "Sampler-plan lookups that had to (re)load and compile",
)


@dataclass(frozen=True)
class ModelRecord:
    """Metadata sidecar for one registered model."""

    model_id: str
    dataset_id: str
    method: str
    epsilon: float
    n_records: int
    schema: List[List[Any]]
    created_at: float
    format_version: int = MODEL_FORMAT_VERSION
    generation: int = 1
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model_id": self.model_id,
            "dataset_id": self.dataset_id,
            "method": self.method,
            "epsilon": self.epsilon,
            "n_records": self.n_records,
            "schema": self.schema,
            "created_at": self.created_at,
            "format_version": self.format_version,
            "generation": self.generation,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModelRecord":
        return cls(
            model_id=str(payload["model_id"]),
            dataset_id=str(payload["dataset_id"]),
            method=str(payload["method"]),
            epsilon=float(payload["epsilon"]),
            n_records=int(payload["n_records"]),
            schema=[list(pair) for pair in payload["schema"]],
            created_at=float(payload["created_at"]),
            format_version=int(payload.get("format_version", 1)),
            generation=int(payload.get("generation", 1)),
            extra=dict(payload.get("extra", {})),
        )


#: Fingerprint of a sidecar file: (st_ino, st_mtime_ns, st_size).  An
#: atomic replace writes a new inode, so any swap — even from another
#: process — changes the fingerprint.
_Fingerprint = Optional[tuple]


@dataclass
class _CacheEntry:
    """One resident model plus its compiled sampler plan."""

    model: ReleasedModel
    plan: SamplerPlan
    fingerprint: _Fingerprint = None


class ModelRegistry:
    """Filesystem-backed store of :class:`~repro.io.ReleasedModel`s.

    Layout: ``<directory>/<model_id>.npz`` (the released state, written
    atomically) next to ``<directory>/<model_id>.json`` (the sidecar).
    The sidecar is written *after* the NPZ, so a sidecar's existence
    implies a complete payload; orphaned NPZs from a crash mid-``put``
    are invisible and harmless.

    Parameters
    ----------
    directory:
        Where the NPZ payloads and sidecars live.
    max_cached_models:
        LRU bound on models (and their compiled plans) held in memory.
        ``None`` caches without bound (the pre-engine behavior).
    """

    DEFAULT_MAX_CACHED_MODELS = 128

    def __init__(
        self,
        directory: PathLike,
        max_cached_models: Optional[int] = DEFAULT_MAX_CACHED_MODELS,
    ):
        if max_cached_models is not None and max_cached_models < 1:
            raise ValueError(
                f"max_cached_models must be >= 1 or None, got {max_cached_models}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_cached_models = max_cached_models
        self._lock = threading.RLock()
        self._cache: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        # Generations survive eviction: the counter invalidates plans
        # held *outside* the registry, so it must never reset while the
        # process lives.
        self._generations: Dict[str, int] = {}

    def _npz_path(self, model_id: str) -> Path:
        return self.directory / f"{model_id}.npz"

    def _sidecar_path(self, model_id: str) -> Path:
        return self.directory / f"{model_id}.json"

    @staticmethod
    def new_model_id() -> str:
        return uuid.uuid4().hex[:12]

    def put(
        self,
        model: ReleasedModel,
        dataset_id: str,
        method: str,
        model_id: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> ModelRecord:
        """Persist ``model`` and return its registry record."""
        model_id = check_identifier(
            "model", model_id if model_id is not None else self.new_model_id()
        )
        record = ModelRecord(
            model_id=model_id,
            dataset_id=dataset_id,
            method=method,
            epsilon=model.epsilon,
            n_records=model.n_records,
            schema=[[a.name, a.domain_size] for a in model.schema],
            created_at=time.time(),
            extra=dict(extra or {}),
        )
        with self._lock:
            if self._sidecar_path(model_id).exists():
                raise ValueError(f"model id {model_id!r} already registered")
            # NPZ first, sidecar last: the sidecar commits the model.
            buffer = io.BytesIO()
            model.save(buffer)
            atomic_write_bytes(self._npz_path(model_id), buffer.getvalue())
            atomic_write_bytes(
                self._sidecar_path(model_id),
                (json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n").encode(),
            )
            self._install_locked(model_id, model)
        return record

    def replace(self, model_id: str, model: ReleasedModel) -> ModelRecord:
        """Hot-swap the released state behind an already-registered id.

        Atomically overwrites the NPZ (readers see the old or the new
        payload, never a torn one), refreshes the sidecar's model-derived
        fields, bumps the id's **generation** (durably, in the sidecar)
        and recompiles the cached plan — so every downstream plan
        consumer keyed by ``(model_id, generation)`` — including sibling
        pre-fork worker processes watching the sidecar fingerprint —
        retires the stale plan on its next lookup.
        """
        model_id = check_identifier("model", model_id)
        with self._lock:
            if not self._sidecar_path(model_id).exists():
                raise KeyError(f"no model registered under id {model_id!r}")
            old = ModelRecord.from_dict(
                json.loads(self._sidecar_path(model_id).read_text())
            )
            generation = max(self._generation_locked(model_id), old.generation) + 1
            record = ModelRecord(
                model_id=model_id,
                dataset_id=old.dataset_id,
                method=old.method,
                epsilon=model.epsilon,
                n_records=model.n_records,
                schema=[[a.name, a.domain_size] for a in model.schema],
                created_at=time.time(),
                generation=generation,
                extra=dict(old.extra),
            )
            buffer = io.BytesIO()
            model.save(buffer)
            # NPZ first, then the sidecar: the sidecar swap is the
            # commit point sibling processes key their reload on.
            atomic_write_bytes(self._npz_path(model_id), buffer.getvalue())
            atomic_write_bytes(
                self._sidecar_path(model_id),
                (json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n").encode(),
            )
            self._generations[model_id] = generation
            self._cache.pop(model_id, None)
            self._install_locked(model_id, model)
        return record

    # -- cache machinery --------------------------------------------------

    def _sidecar_fingerprint(self, model_id: str) -> _Fingerprint:
        """Stat-level identity of the sidecar (``None`` when missing)."""
        try:
            stat = os.stat(self._sidecar_path(model_id))
        except OSError:
            return None
        return (stat.st_ino, stat.st_mtime_ns, stat.st_size)

    def _generation_locked(self, model_id: str) -> int:
        generation = self._generations.get(model_id)
        if generation is None:
            generation = 1
            sidecar = self._sidecar_path(model_id)
            if sidecar.exists():
                try:
                    generation = int(
                        json.loads(sidecar.read_text()).get("generation", 1)
                    )
                except (ValueError, KeyError, OSError):
                    generation = 1
            self._generations[model_id] = generation
        return generation

    def generation(self, model_id: str) -> int:
        """The id's current generation (bumped by every ``replace``).

        Cross-process aware: when the sidecar on disk has moved past
        this process's cached counter (a sibling's ``replace``), the
        durable value wins.  The counter never goes backwards.
        """
        with self._lock:
            cached = self._generation_locked(model_id)
            sidecar = self._sidecar_path(model_id)
            if sidecar.exists():
                try:
                    durable = int(json.loads(sidecar.read_text()).get("generation", 1))
                except (ValueError, KeyError, OSError):
                    durable = cached
                if durable > cached:
                    self._generations[model_id] = durable
                    return durable
            return cached

    def _install_locked(
        self,
        model_id: str,
        model: ReleasedModel,
        fingerprint: _Fingerprint = None,
    ) -> _CacheEntry:
        """Cache a model (compiling its plan) and enforce the LRU bound."""
        entry = _CacheEntry(
            model=model,
            plan=compile_plan(
                model, model_id, generation=self._generation_locked(model_id)
            ),
            fingerprint=(
                fingerprint
                if fingerprint is not None
                else self._sidecar_fingerprint(model_id)
            ),
        )
        self._cache[model_id] = entry
        self._cache.move_to_end(model_id)
        while (
            self.max_cached_models is not None
            and len(self._cache) > self.max_cached_models
        ):
            self._cache.popitem(last=False)
            _EVICTIONS.inc()
        return entry

    def _entry(self, model_id: str) -> _CacheEntry:
        """The id's cache entry, loading + compiling on miss (LRU touch).

        Every hit re-validates the sidecar's stat fingerprint: if a
        sibling process hot-swapped the model (``replace`` writes a new
        sidecar inode), the stale entry is dropped and reloaded at the
        durable generation — one ``stat`` call per lookup buys
        cross-process cache coherence.
        """
        with self._lock:
            entry = self._cache.get(model_id)
            if entry is not None:
                if entry.fingerprint == self._sidecar_fingerprint(model_id):
                    self._cache.move_to_end(model_id)
                    _PLAN_HITS.inc()
                    return entry
                # Swapped underneath us by another process: reload.
                self._cache.pop(model_id, None)
        if not self._sidecar_path(model_id).exists():
            raise KeyError(f"no model registered under id {model_id!r}")
        # Fingerprint-stable read: the NPZ lands before the sidecar in
        # put/replace, so re-checking the fingerprint after loading the
        # NPZ guarantees the (record, payload) pair is from one
        # publication — a swap mid-read just retries.
        for _ in range(3):
            fingerprint = self._sidecar_fingerprint(model_id)
            record = self.record(model_id)
            model = ReleasedModel.load(self._npz_path(model_id))
            if self._sidecar_fingerprint(model_id) == fingerprint:
                break
        with self._lock:
            # Re-check: another thread may have installed while we read
            # the NPZ; keep its entry (and plan identity) if fresh.
            entry = self._cache.get(model_id)
            if entry is not None and entry.fingerprint == fingerprint:
                self._cache.move_to_end(model_id)
                _PLAN_HITS.inc()
                return entry
            _PLAN_MISSES.inc()
            self._generations[model_id] = max(
                self._generations.get(model_id, 1), record.generation
            )
            return self._install_locked(model_id, model, fingerprint=fingerprint)

    def cached_models(self) -> int:
        """Models currently resident in the LRU cache."""
        with self._lock:
            return len(self._cache)

    def record(self, model_id: str) -> ModelRecord:
        """The metadata sidecar for ``model_id`` (no NPZ load)."""
        sidecar = self._sidecar_path(model_id)
        if not sidecar.exists():
            raise KeyError(f"no model registered under id {model_id!r}")
        return ModelRecord.from_dict(json.loads(sidecar.read_text()))

    def get(self, model_id: str) -> ReleasedModel:
        """The released model itself, lazily loaded and cached."""
        return self._entry(model_id).model

    def get_plan(self, model_id: str) -> SamplerPlan:
        """The model's compiled sampler plan (the engine's plan provider).

        Compiled once per cached model — generation-tagged so the
        engine's shared stores and coalescer can retire a plan the
        moment :meth:`replace` swaps the model underneath it.
        """
        return self._entry(model_id).plan

    def list(self) -> List[ModelRecord]:
        """All registered models, newest first, from sidecars only."""
        records = [
            ModelRecord.from_dict(json.loads(sidecar.read_text()))
            for sidecar in sorted(self.directory.glob("*.json"))
        ]
        records.sort(key=lambda r: r.created_at, reverse=True)
        return records

    def __contains__(self, model_id: str) -> bool:
        return self._sidecar_path(model_id).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
