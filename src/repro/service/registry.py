"""Durable registry of released DPCopula models.

A fitted model is the *expensive* artifact: producing it consumed
privacy budget that can never be recovered.  Sampling from it is free
post-processing.  The registry therefore persists every released model
the moment a fit finishes — NPZ payload plus a JSON metadata sidecar —
and serves it forever, across process restarts, without refitting.

Listing reads only the lightweight sidecars; the NPZ payload is loaded
lazily on first sample and cached, so a registry with thousands of
models starts instantly.
"""

from __future__ import annotations

import io
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.io import MODEL_FORMAT_VERSION, ReleasedModel
from repro.service.config import PathLike, atomic_write_bytes, check_identifier

__all__ = ["ModelRecord", "ModelRegistry"]


@dataclass(frozen=True)
class ModelRecord:
    """Metadata sidecar for one registered model."""

    model_id: str
    dataset_id: str
    method: str
    epsilon: float
    n_records: int
    schema: List[List[Any]]
    created_at: float
    format_version: int = MODEL_FORMAT_VERSION
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model_id": self.model_id,
            "dataset_id": self.dataset_id,
            "method": self.method,
            "epsilon": self.epsilon,
            "n_records": self.n_records,
            "schema": self.schema,
            "created_at": self.created_at,
            "format_version": self.format_version,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModelRecord":
        return cls(
            model_id=str(payload["model_id"]),
            dataset_id=str(payload["dataset_id"]),
            method=str(payload["method"]),
            epsilon=float(payload["epsilon"]),
            n_records=int(payload["n_records"]),
            schema=[list(pair) for pair in payload["schema"]],
            created_at=float(payload["created_at"]),
            format_version=int(payload.get("format_version", 1)),
            extra=dict(payload.get("extra", {})),
        )


class ModelRegistry:
    """Filesystem-backed store of :class:`~repro.io.ReleasedModel`s.

    Layout: ``<directory>/<model_id>.npz`` (the released state, written
    atomically) next to ``<directory>/<model_id>.json`` (the sidecar).
    The sidecar is written *after* the NPZ, so a sidecar's existence
    implies a complete payload; orphaned NPZs from a crash mid-``put``
    are invisible and harmless.
    """

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._cache: Dict[str, ReleasedModel] = {}

    def _npz_path(self, model_id: str) -> Path:
        return self.directory / f"{model_id}.npz"

    def _sidecar_path(self, model_id: str) -> Path:
        return self.directory / f"{model_id}.json"

    @staticmethod
    def new_model_id() -> str:
        return uuid.uuid4().hex[:12]

    def put(
        self,
        model: ReleasedModel,
        dataset_id: str,
        method: str,
        model_id: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> ModelRecord:
        """Persist ``model`` and return its registry record."""
        model_id = check_identifier(
            "model", model_id if model_id is not None else self.new_model_id()
        )
        record = ModelRecord(
            model_id=model_id,
            dataset_id=dataset_id,
            method=method,
            epsilon=model.epsilon,
            n_records=model.n_records,
            schema=[[a.name, a.domain_size] for a in model.schema],
            created_at=time.time(),
            extra=dict(extra or {}),
        )
        with self._lock:
            if self._sidecar_path(model_id).exists():
                raise ValueError(f"model id {model_id!r} already registered")
            # NPZ first, sidecar last: the sidecar commits the model.
            buffer = io.BytesIO()
            model.save(buffer)
            atomic_write_bytes(self._npz_path(model_id), buffer.getvalue())
            atomic_write_bytes(
                self._sidecar_path(model_id),
                (json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n").encode(),
            )
            self._cache[model_id] = model
        return record

    def record(self, model_id: str) -> ModelRecord:
        """The metadata sidecar for ``model_id`` (no NPZ load)."""
        sidecar = self._sidecar_path(model_id)
        if not sidecar.exists():
            raise KeyError(f"no model registered under id {model_id!r}")
        return ModelRecord.from_dict(json.loads(sidecar.read_text()))

    def get(self, model_id: str) -> ReleasedModel:
        """The released model itself, lazily loaded and cached."""
        with self._lock:
            cached = self._cache.get(model_id)
            if cached is not None:
                return cached
        if not self._sidecar_path(model_id).exists():
            raise KeyError(f"no model registered under id {model_id!r}")
        model = ReleasedModel.load(self._npz_path(model_id))
        with self._lock:
            return self._cache.setdefault(model_id, model)

    def list(self) -> List[ModelRecord]:
        """All registered models, newest first, from sidecars only."""
        records = [
            ModelRecord.from_dict(json.loads(sidecar.read_text()))
            for sidecar in sorted(self.directory.glob("*.json"))
        ]
        records.sort(key=lambda r: r.created_at, reverse=True)
        return records

    def __contains__(self, model_id: str) -> bool:
        return self._sidecar_path(model_id).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
