"""Stdlib-only JSON HTTP API over :class:`SynthesisService`.

Built on :class:`http.server.ThreadingHTTPServer` — no web framework,
no new dependencies.  One thread per request is exactly right here:
sampling requests are CPU-light NumPy calls that release the GIL in the
hot loops, and the heavy work (fitting) never runs in a request thread
at all (it goes through the background :class:`FitWorker`).

Endpoints
---------
========  ==============================  ==========================================
Method    Path                            Meaning
========  ==============================  ==========================================
GET       /health                         liveness + library version
GET       /healthz                        readiness probe: 200 healthy / 503 not
GET       /metrics                        Prometheus text (or JSON via Accept)
GET       /datasets                       list uploaded dataset summaries
POST      /datasets                       upload ``{"dataset_id", "csv"}``
GET       /datasets/<id>                  inspect (shared with ``inspect --json``)
GET       /datasets/<id>/budget           the accountant's view of the dataset
GET       /fits                           list fit jobs
POST      /fits                           submit ``{"dataset_id", "method", ...}``
GET       /fits/<id>                      poll job status
POST      /fits/<id>/cancel               request cooperative cancellation
GET       /models                         list registered model records
GET       /models/<id>                    one model record
POST      /models/<id>/sample             draw records: ``{"n", "seed"}``
GET       /budget                         per-dataset ε burn-down timelines
GET       /debug/observatory              fleet observatory document (JSON)
==========================================================================

All request and response bodies are JSON (UTF-8) except ``/metrics``,
which defaults to the Prometheus text exposition format and switches to
the JSON snapshot when the request's ``Accept`` header asks for
``application/json``.  Errors are ``{"error": "<message>"}`` with a
meaningful status code: 400 malformed, 404 unknown id, 409 privacy
budget refused, 405 wrong method, 429 fit queue full *or* sampling
engine overloaded (with a ``Retry-After`` header carrying the backoff
hint in seconds).

Sampling requests are served by the engine (:mod:`repro.engine`):
concurrent requests against the same model coalesce into one vectorized
draw, with per-request bitwise determinism — the thread-per-request
model pairs naturally with the coalescer's leader/follower hand-off.

Hardening: each connection runs under the config's
``request_timeout_seconds`` socket timeout, so a stalled client cannot
pin a handler thread; the serve CLI additionally installs a SIGTERM
handler that stops accepting, finishes in-flight work and leaves queued
jobs journaled for the next start (graceful drain).
"""

from __future__ import annotations

import json
import re
import socket
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.dp.budget import BudgetExhaustedError
from repro.service.app import SynthesisService
from repro.service.errors import ServiceError
from repro.telemetry import bind_context, get_logger, metrics, trace

__all__ = ["build_server", "SynthesisRequestHandler"]

_logger = get_logger("service.http")

_REQUESTS_TOTAL = metrics.REGISTRY.counter(
    "dpcopula_http_requests_total",
    "HTTP requests served, by method/route/status",
)
_THROTTLED_TOTAL = metrics.REGISTRY.counter(
    "dpcopula_http_throttled_total",
    "Requests refused with 429 (fit queue full or sampling engine overloaded)",
)
_REQUEST_SECONDS = metrics.REGISTRY.histogram(
    "dpcopula_http_request_seconds",
    "End-to-end request handling wall clock, by method/route "
    "(JSON snapshot carries per-bucket request-id exemplars)",
)
_SLOW_REQUESTS = metrics.REGISTRY.counter(
    "dpcopula_http_slow_requests_total",
    "Requests slower than the configured slow-request threshold (label: route)",
)

#: Uploads above this size are refused outright (64 MiB of CSV text).
MAX_BODY_BYTES = 64 * 1024 * 1024


class PlainText(str):
    """Handler return type that is sent verbatim instead of JSON-encoded."""

    content_type = "text/plain; version=0.0.4; charset=utf-8"


_ID = r"(?P<id>[A-Za-z0-9._-]+)"
_ROUTES = [
    ("GET", re.compile(r"^/health$"), "health"),
    ("GET", re.compile(r"^/healthz$"), "healthz"),
    ("GET", re.compile(r"^/metrics$"), "metrics"),
    ("GET", re.compile(r"^/datasets$"), "list_datasets"),
    ("POST", re.compile(r"^/datasets$"), "upload_dataset"),
    ("GET", re.compile(rf"^/datasets/{_ID}$"), "inspect_dataset"),
    ("GET", re.compile(rf"^/datasets/{_ID}/budget$"), "dataset_budget"),
    ("GET", re.compile(r"^/fits$"), "list_fits"),
    ("POST", re.compile(r"^/fits$"), "submit_fit"),
    ("GET", re.compile(rf"^/fits/{_ID}$"), "fit_status"),
    ("POST", re.compile(rf"^/fits/{_ID}/cancel$"), "cancel_fit"),
    ("GET", re.compile(r"^/models$"), "list_models"),
    ("GET", re.compile(rf"^/models/{_ID}$"), "model_info"),
    ("POST", re.compile(rf"^/models/{_ID}/sample$"), "sample_model"),
    ("GET", re.compile(r"^/budget$"), "budget"),
    ("GET", re.compile(r"^/debug/observatory$"), "observatory"),
]


class SynthesisRequestHandler(BaseHTTPRequestHandler):
    """Routes JSON requests to the attached :class:`SynthesisService`."""

    server_version = "dpcopula-synthesis"
    protocol_version = "HTTP/1.1"

    # Set by build_server on the handler subclass.
    service: SynthesisService = None  # type: ignore[assignment]
    quiet: bool = True
    #: The current request's correlation id, echoed as ``X-Request-ID``
    #: on every response (set per-request by ``_dispatch``).
    _request_id: Optional[str] = None
    #: Pre-fork worker identity echoed on every response (``None`` for
    #: the single-process server): lets clients and the scale-out bench
    #: see which process served them.
    worker_label: Optional[str] = None

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: Any,
        extra_headers: Optional[dict] = None,
    ) -> None:
        if isinstance(payload, PlainText):
            self._send_text(status, payload)
            return
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.worker_label is not None:
            self.send_header("X-DPCopula-Worker", self.worker_label)
        if self._request_id is not None:
            self.send_header("X-Request-ID", self._request_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, payload: PlainText) -> None:
        body = str(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", payload.content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.worker_label is not None:
            self.send_header("X-DPCopula-Worker", self.worker_label)
        if self._request_id is not None:
            self.send_header("X-Request-ID", self._request_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, f"request body is not valid JSON: {exc}")

    def _run_handler(self, name: str, handler, route_id) -> Tuple[int, Any]:
        """Invoke a route handler, under a per-request trace if exporting.

        When the durable trace exporter is installed, each request runs
        under its own trace root: spans opened anywhere below (engine,
        parallel chunks) collect into one tree, and on completion the
        exporter appends it to the worker's trace log keyed by the bound
        request id.  Without an exporter the request path stays exactly
        as cheap as before — one attribute read.
        """
        if self.service.trace_exporter is None:
            return handler(route_id)
        with trace.trace_root("http.request", method=self.command, route=name):
            return handler(route_id)

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        # Every request gets a request id bound into the logging context,
        # so all log lines a handler (or the service underneath) emits
        # carry it; clients get it back as X-Request-ID (an inbound one
        # is honored) for support correlation against exported traces.
        request_id = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:12]
        self._request_id = request_id
        started = time.perf_counter()
        with bind_context(request_id=request_id):
            matched_path = False
            for route_method, pattern, name in _ROUTES:
                match = pattern.match(path)
                if not match:
                    continue
                matched_path = True
                if route_method != method:
                    continue
                handler = getattr(self, f"_handle_{name}")
                extra_headers: Optional[dict] = None
                try:
                    status, payload = self._run_handler(
                        name, handler, match.groupdict().get("id")
                    )
                except ServiceError as exc:
                    status, payload = exc.status, {"error": exc.message}
                    retry_after = getattr(exc, "retry_after", None)
                    if retry_after is not None:
                        # Shed load politely: tell the client when the
                        # queue is worth trying again.
                        extra_headers = {"Retry-After": f"{retry_after:g}"}
                    if status == 429:
                        _THROTTLED_TOTAL.inc()
                except BudgetExhaustedError as exc:
                    status, payload = 409, {"error": str(exc)}
                except Exception as exc:  # pragma: no cover - defensive
                    # The client gets the one-liner; the log keeps the
                    # traceback that used to vanish with it.
                    _logger.exception(
                        "unhandled request error",
                        extra={"method": method, "path": path},
                    )
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                elapsed = time.perf_counter() - started
                _REQUESTS_TOTAL.inc(method=method, route=name, status=str(status))
                _REQUEST_SECONDS.observe(
                    elapsed, exemplar=request_id, method=method, route=name
                )
                slow_after = self.service.config.slow_request_seconds
                if slow_after is not None and elapsed >= slow_after:
                    _SLOW_REQUESTS.inc(route=name)
                    _logger.warning(
                        "slow request",
                        extra={
                            "method": method,
                            "path": path,
                            "status": status,
                            "seconds": round(elapsed, 6),
                            "threshold": slow_after,
                        },
                    )
                _logger.debug(
                    "request served",
                    extra={
                        "method": method,
                        "path": path,
                        "status": status,
                        "seconds": round(elapsed, 6),
                    },
                )
                self._send_json(status, payload, extra_headers)
                return
            if matched_path:
                status, payload = 405, {
                    "error": f"method {method} not allowed on {path}"
                }
            else:
                status, payload = 404, {"error": f"no route for {method} {path}"}
            _REQUESTS_TOTAL.inc(method=method, route="<unrouted>", status=str(status))
            self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    # -- handlers ---------------------------------------------------------

    def _handle_health(self, _: Optional[str]) -> Tuple[int, Any]:
        from repro import __version__

        return 200, {
            "status": "ok",
            "version": __version__,
            "epsilon_cap": self.service.config.epsilon_cap,
        }

    def _handle_healthz(self, _: Optional[str]) -> Tuple[int, Any]:
        document = self.service.healthz()
        return (200 if document["healthy"] else 503), document

    def _handle_metrics(self, _: Optional[str]) -> Tuple[int, Any]:
        accept = self.headers.get("Accept", "")
        if "application/json" in accept:
            return 200, self.service.metrics_snapshot()
        return 200, PlainText(self.service.metrics_text())

    def _handle_list_datasets(self, _: Optional[str]) -> Tuple[int, Any]:
        return 200, {"datasets": self.service.list_datasets()}

    def _handle_upload_dataset(self, _: Optional[str]) -> Tuple[int, Any]:
        body = self._read_json_body()
        if not isinstance(body, dict):
            raise ServiceError(400, "upload body must be a JSON object")
        dataset_id = body.get("dataset_id")
        csv_text = body.get("csv")
        if not isinstance(dataset_id, str) or not isinstance(csv_text, str):
            raise ServiceError(
                400, 'upload requires string fields "dataset_id" and "csv"'
            )
        return 201, self.service.upload_dataset(dataset_id, csv_text)

    def _handle_inspect_dataset(self, dataset_id: str) -> Tuple[int, Any]:
        return 200, self.service.inspect_dataset(dataset_id)

    def _handle_dataset_budget(self, dataset_id: str) -> Tuple[int, Any]:
        return 200, self.service.budget_summary(dataset_id)

    def _handle_list_fits(self, _: Optional[str]) -> Tuple[int, Any]:
        return 200, {"jobs": self.service.list_jobs()}

    def _handle_submit_fit(self, _: Optional[str]) -> Tuple[int, Any]:
        return 202, self.service.submit_fit(self._read_json_body())

    def _handle_fit_status(self, job_id: str) -> Tuple[int, Any]:
        return 200, self.service.job_status(job_id)

    def _handle_cancel_fit(self, job_id: str) -> Tuple[int, Any]:
        return 202, self.service.cancel_job(job_id)

    def _handle_list_models(self, _: Optional[str]) -> Tuple[int, Any]:
        return 200, {"models": self.service.list_models()}

    def _handle_model_info(self, model_id: str) -> Tuple[int, Any]:
        return 200, self.service.model_info(model_id)

    def _handle_sample_model(self, model_id: str) -> Tuple[int, Any]:
        body = self._read_json_body()
        if not isinstance(body, dict):
            raise ServiceError(400, "sample body must be a JSON object")
        return 200, self.service.sample(
            model_id, n=body.get("n"), seed=body.get("seed")
        )

    def _handle_budget(self, _: Optional[str]) -> Tuple[int, Any]:
        return 200, self.service.budget_overview()

    def _handle_observatory(self, _: Optional[str]) -> Tuple[int, Any]:
        return 200, self.service.observatory_snapshot()


class _ReusePortHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server whose listening socket sets SO_REUSEPORT.

    With SO_REUSEPORT, N sibling processes each bind their *own*
    listening socket to the same address and the kernel load-balances
    incoming connections across them — the pre-fork scale-out model
    (:mod:`repro.service.prefork`).  The option must be set before
    ``bind``, hence the override rather than a post-hoc setsockopt.
    """

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def build_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    *,
    reuse_port: bool = False,
    listen_socket: Optional[socket.socket] = None,
    worker_label: Optional[str] = None,
) -> ThreadingHTTPServer:
    """A ready-to-run threaded HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (useful for tests); read the
    actual port from ``server.server_address[1]``.  The caller owns the
    lifecycle: ``serve_forever()`` to run, then ``shutdown()`` /
    ``server_close()`` and ``service.close()`` to stop.

    Each connection inherits the config's ``request_timeout_seconds``
    as its socket timeout: a client that opens a connection and stalls
    mid-request is disconnected instead of holding a handler thread
    (and its memory) hostage indefinitely.

    Pre-fork options (see :mod:`repro.service.prefork`):

    ``reuse_port``
        Bind with ``SO_REUSEPORT`` so sibling worker processes can bind
        the same address and share incoming connections kernel-side.
    ``listen_socket``
        Adopt an already-bound, already-listening socket (the
        no-SO_REUSEPORT fallback: the parent binds once and every
        forked worker accepts from the inherited socket).  Mutually
        exclusive with ``reuse_port``; ``host``/``port`` are ignored.
    ``worker_label``
        Echoed on every response as ``X-DPCopula-Worker``.
    """
    if reuse_port and listen_socket is not None:
        raise ValueError("pass either reuse_port or listen_socket, not both")
    handler = type(
        "BoundSynthesisRequestHandler",
        (SynthesisRequestHandler,),
        {
            "service": service,
            "quiet": quiet,
            "timeout": service.config.request_timeout_seconds,
            "worker_label": worker_label,
        },
    )
    if listen_socket is not None:
        server = ThreadingHTTPServer(
            listen_socket.getsockname()[:2], handler, bind_and_activate=False
        )
        server.socket.close()
        server.socket = listen_socket
        server.server_address = listen_socket.getsockname()[:2]
        bound_host, bound_port = server.server_address[:2]
        server.server_name = socket.getfqdn(bound_host)
        server.server_port = bound_port
    elif reuse_port:
        server = _ReusePortHTTPServer((host, port), handler)
    else:
        server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
