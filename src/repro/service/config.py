"""Configuration and on-disk layout of the synthesis service.

Everything the service persists lives under one data directory::

    <data_dir>/
        datasets/<id>.csv      uploaded integer-coded datasets
        datasets/<id>.json     dataset metadata sidecars
        models/<id>.npz        released DPCopula models (versioned NPZ)
        models/<id>.json       model metadata sidecars
        jobs/<id>.json         durable fit-job journal records
        jobs/<id>.<stage>.npz  fit stage checkpoints (resume-after-crash)
        ledger.jsonl           append-only privacy-spend journal
        traces/trace-*.jsonl   per-worker trace-export ring files
        observatory/           utility-probe results + drift events
        metrics/worker-*.json  per-worker metrics snapshots (pre-fork)

The layout is deliberately plain files: a data curator can audit the
ledger with ``cat``, copy a model NPZ out for offline use, or back the
whole directory up with ``rsync``.
"""

from __future__ import annotations

import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

PathLike = Union[str, Path]

#: Identifiers for datasets and models: filesystem- and URL-safe.
IDENTIFIER_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Default per-dataset privacy cap for :class:`PrivacyAccountant`.
DEFAULT_EPSILON_CAP = 10.0


def check_identifier(kind: str, value: str) -> str:
    """Validate a dataset/model identifier; raise ``ValueError`` if unsafe."""
    if not isinstance(value, str) or not IDENTIFIER_PATTERN.match(value):
        raise ValueError(
            f"{kind} id {value!r} is invalid: use 1-64 characters from "
            "[A-Za-z0-9._-], starting with a letter or digit"
        )
    return value


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + ``os.replace``).

    Readers never observe a half-written file: they see either the old
    content or the new content.  The tmp file is created in the target
    directory so the final rename stays on one filesystem.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss.

    ``os.replace`` is atomic against concurrent readers but the new
    directory entry itself still lives in the page cache until the
    directory inode is synced; without this a crash can roll the rename
    back entirely.  Best-effort: some filesystems refuse ``O_RDONLY``
    directory fds, which we treat as "already durable enough".
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(dir_fd)


@dataclass(frozen=True)
class ServiceConfig:
    """Settings for a :class:`~repro.service.app.SynthesisService`.

    Parameters
    ----------
    data_dir:
        Root directory for datasets, models and the privacy ledger.
        Created (with parents) if missing.
    epsilon_cap:
        Per-dataset lifetime privacy cap enforced by the accountant.
        Fits whose ``ε`` would push a dataset's cumulative spend past
        this cap are refused.
    fit_workers:
        Size of the background fit-worker pool.  1 (the default) keeps
        strictly serial, submission-ordered fitting; more workers
        overlap independent fits at the cost of deterministic refusal
        order near the budget cap (see :mod:`repro.service.jobs`).
    parallel_backend:
        :class:`~repro.parallel.ExecutionContext` backend every fit
        uses for its internal hot loops (pairwise tau, per-block MLE):
        ``"serial"``, ``"thread"`` or ``"process"``.
    parallel_workers:
        Worker budget for ``parallel_backend``; ``None`` uses the CPUs
        available to the server process.
    log_level:
        Structured-logging level for the ``dpcopula`` namespace
        (``"debug"`` … ``"error"``, or ``"off"``/``None`` for silent).
        The ``DPCOPULA_LOG`` environment variable overrides this, so an
        operator can turn a deployment up to ``debug`` without a config
        change.
    max_queued_fits:
        Upper bound on fit jobs waiting in the worker queue.  Submissions
        beyond it are refused with HTTP 429 + ``Retry-After`` instead of
        growing the queue (and the journal) without bound.  ``None``
        disables the bound.
    fit_timeout_seconds:
        Wall-clock deadline for a single fit job.  The fit checks it
        cooperatively at stage and task boundaries and fails with
        ``DeadlineExceeded`` when it lapses.  ``None`` (default) means
        no deadline.
    request_timeout_seconds:
        Per-connection socket timeout for the HTTP server: a client that
        stalls mid-request is disconnected instead of pinning a handler
        thread forever.  ``None`` disables the timeout.
    coalesce_window_seconds:
        How long the sampling engine holds a batch open for concurrent
        sample requests to join (see :mod:`repro.engine.coalesce`).
        ``0`` (the default) adds no idle latency — requests still
        coalesce whenever they arrive while a batch executes.
    max_coalesced_records:
        Record budget per coalesced sampling batch; bounds the transient
        work arrays one vectorized draw materializes.
    sample_queue_limit:
        Bound on sample requests parked in the coalescer across all
        models.  Arrivals beyond it get HTTP 429 + ``Retry-After``.
        ``None`` disables the bound.
    shared_store_mode:
        How compiled sampler plans are published for pooled/pre-fork
        workers: ``"off"`` (process-local, the default), ``"mmap"``
        (memory-mapped files under ``<data_dir>/plans``) or ``"shm"``
        (``multiprocessing.shared_memory`` segments).  Pre-fork serving
        (``workers > 1``) defaults to ``"mmap"`` at the CLI so every
        worker serves one physical copy of each compiled plan.
    model_cache_size:
        LRU bound on released models (and their compiled plans) the
        registry keeps in memory.  ``None`` caches without bound.
    workers:
        Number of pre-fork HTTP worker processes the deployment runs.
        1 (the default) is the single-process server.  The value is
        recorded on every worker's config so each process knows the
        fleet size (metrics aggregation, journal polling).
    worker_index:
        This process's index within a pre-fork fleet, or ``None`` for
        the single-process server.  Worker 0 is the **fit owner**: it
        runs the background fit pool and startup job recovery; other
        workers journal fit submissions for the owner to pick up and
        serve everything else (sampling, reads) themselves.
    metrics_flush_seconds:
        How often each pre-fork worker flushes its metrics snapshot to
        ``<data_dir>/metrics/worker-<index>.json`` for cross-worker
        aggregation by ``GET /metrics``.
    slow_request_seconds:
        Requests slower than this are logged at ``warning`` with their
        request id and counted in ``dpcopula_http_slow_requests_total``;
        their exported traces are flagged ``slow``.  ``None`` disables
        slow-request detection.
    latency_buckets:
        Override for the default latency-histogram bucket boundaries
        (seconds, any order).  ``None`` keeps the built-in 1 ms–5 min
        spread.  The ``DPCOPULA_LATENCY_BUCKETS`` environment variable
        (comma-separated seconds) wins over this field.
    trace_export_enabled:
        Whether completed trace roots (per-request traces, service
        fits) are appended to the durable per-worker JSONL ring under
        ``<data_dir>/traces/``.
    trace_export_max_bytes / trace_export_files:
        Ring geometry per worker: the active file rotates when it would
        exceed ``max_bytes``, keeping at most ``files`` files.
    probe_interval_seconds:
        Period of the continuous utility-probe loop on the fit-owner
        worker.  ``0`` (the default) disables the background loop; the
        probe object still exists for on-demand cycles.
    probe_sample_size:
        Records drawn per model per probe cycle (deterministic seed, so
        repeated probes of one generation are bitwise identical).
    probe_drift_threshold:
        A generation hot-swap whose released statistics shift by more
        than this (TVD on margins, |Δρ| on dependence) emits a
        structured drift event.
    """

    data_dir: PathLike
    epsilon_cap: float = DEFAULT_EPSILON_CAP
    fit_workers: int = 1
    parallel_backend: str = "serial"
    parallel_workers: Optional[int] = None
    log_level: Optional[str] = None
    max_queued_fits: Optional[int] = 32
    fit_timeout_seconds: Optional[float] = None
    request_timeout_seconds: Optional[float] = 30.0
    coalesce_window_seconds: float = 0.0
    max_coalesced_records: int = 262_144
    sample_queue_limit: Optional[int] = 256
    shared_store_mode: str = "off"
    model_cache_size: Optional[int] = 128
    workers: int = 1
    worker_index: Optional[int] = None
    metrics_flush_seconds: float = 1.0
    slow_request_seconds: Optional[float] = 1.0
    latency_buckets: Optional[Tuple[float, ...]] = None
    trace_export_enabled: bool = True
    trace_export_max_bytes: int = 4 * 1024 * 1024
    trace_export_files: int = 2
    probe_interval_seconds: float = 0.0
    probe_sample_size: int = 512
    probe_drift_threshold: float = 0.05

    @property
    def root(self) -> Path:
        return Path(self.data_dir)

    @property
    def datasets_dir(self) -> Path:
        return self.root / "datasets"

    @property
    def models_dir(self) -> Path:
        return self.root / "models"

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def plans_dir(self) -> Path:
        return self.root / "plans"

    @property
    def metrics_dir(self) -> Path:
        return self.root / "metrics"

    @property
    def traces_dir(self) -> Path:
        return self.root / "traces"

    @property
    def observatory_dir(self) -> Path:
        return self.root / "observatory"

    @property
    def ledger_path(self) -> Path:
        return self.root / "ledger.jsonl"

    @property
    def worker_label(self) -> str:
        """This process's label in trace files and metric aggregation."""
        return "main" if self.worker_index is None else str(self.worker_index)

    @property
    def is_fit_owner(self) -> bool:
        """Whether this process runs the fit pool and job recovery.

        The single-process server (``worker_index is None``) always
        owns fitting; in a pre-fork fleet exactly worker 0 does, so the
        durable job journal has one writer for lifecycle transitions
        while every worker can still accept submissions.
        """
        return self.worker_index is None or self.worker_index == 0

    @property
    def multi_worker(self) -> bool:
        """Whether this config describes a pre-fork fleet member."""
        return self.workers > 1

    def ensure_layout(self) -> None:
        """Create the data directory tree if it does not exist."""
        self.datasets_dir.mkdir(parents=True, exist_ok=True)
        self.models_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
