"""The paper's qualitative claims, codified as checkable predicates.

Reproducing a paper means reproducing its *claims*, not its exact
numbers.  Each :class:`Claim` binds a sentence from the evaluation
section to a predicate over the corresponding
:class:`~repro.experiments.figures.FigureResult`; running the claims
over a set of measured figures yields the PASS/FAIL summary that
EXPERIMENTS.md reports and the shape benchmarks assert.

Checks are deliberately tolerant: they test dominance/monotonicity over
most of the sweep (``fraction``), because single noisy grid points at
reduced scale flip routinely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.figures import FigureResult


def dominates(
    result: FigureResult,
    winner: str,
    loser: str,
    metric: str = "relative_error",
    fraction: float = 0.7,
) -> bool:
    """Whether ``winner``'s series is below ``loser``'s at >= ``fraction``
    of the shared x positions."""
    winner_series = dict(result.series(winner, metric))
    loser_series = dict(result.series(loser, metric))
    shared = [x for x in winner_series if x in loser_series]
    if not shared:
        return False
    wins = sum(1 for x in shared if winner_series[x] <= loser_series[x])
    return wins / len(shared) >= fraction


def monotone(
    result: FigureResult,
    method: str,
    metric: str,
    direction: str,
    fraction: float = 0.7,
) -> bool:
    """Whether a series moves in ``direction`` over >= ``fraction`` of
    its consecutive steps ("increasing" or "decreasing")."""
    values = [v for _, v in result.series(method, metric)]
    if len(values) < 2:
        return False
    steps = np.diff(values)
    if direction == "increasing":
        good = np.sum(steps >= 0)
    elif direction == "decreasing":
        good = np.sum(steps <= 0)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    return good / steps.size >= fraction


def endpoint_improvement(
    result: FigureResult,
    method: str,
    metric: str,
) -> bool:
    """Whether the last x's value improves on (is below) the first x's."""
    values = [v for _, v in result.series(method, metric)]
    return len(values) >= 2 and values[-1] <= values[0]


@dataclass(frozen=True)
class Claim:
    """One sentence of the paper, bound to a figure and a predicate."""

    claim_id: str
    figure_id: str
    description: str
    check: Callable[[FigureResult], bool]


@dataclass(frozen=True)
class ClaimOutcome:
    """The verdict of one claim against one measured figure."""

    claim: Claim
    passed: Optional[bool]  # None = figure not supplied

    @property
    def verdict(self) -> str:
        if self.passed is None:
            return "NOT RUN"
        return "PASS" if self.passed else "FAIL"


def _first_method_matching(result: FigureResult, prefix: str) -> Optional[str]:
    for method in result.methods():
        if method.startswith(prefix):
            return method
    return None


def _claim_fig5(result: FigureResult) -> bool:
    # "when k is less than 1, the relative error clearly degrades as k
    # [decreases]... quite robust and insensitive to k as long as > 1."
    ok = True
    for method in result.methods():
        values = dict(result.series(method, "relative_error"))
        below = [v for x, v in values.items() if float(x) < 1.0]
        above = [v for x, v in values.items() if float(x) >= 1.0]
        if below and above:
            ok &= float(np.mean(above)) <= float(np.mean(below))
    return ok


def _claim_fig6_error(result: FigureResult) -> bool:
    # "DPCopula-Kendall performs better than DPCopula-MLE."
    return dominates(
        result, "dpcopula-kendall", "dpcopula-mle", "relative_error", fraction=0.5
    )


def _claim_fig6_runtime(result: FigureResult) -> bool:
    # "with higher dimensions, the time to compute ... becomes longer."
    return monotone(result, "dpcopula-kendall", "seconds", "increasing")


def _claim_fig7(result: FigureResult) -> bool:
    # "DPCopula outperforms all the other methods."
    dpcopula = _first_method_matching(result, "dpcopula")
    if dpcopula is None:
        return False
    others = [m for m in result.methods() if not m.startswith("dpcopula")]
    return bool(others) and all(
        dominates(result, dpcopula, other, "relative_error") for other in others
    )


def _claim_fig7_gap(result: FigureResult) -> bool:
    # "their performance gap expands as the privacy budget decreases."
    dpcopula = _first_method_matching(result, "dpcopula")
    if dpcopula is None:
        return False
    ours = dict(result.series(dpcopula, "relative_error"))
    xs = sorted(ours)
    if len(xs) < 2:
        return False
    others = [m for m in result.methods() if not m.startswith("dpcopula")]
    expanded = 0
    for other in others:
        theirs = dict(result.series(other, "relative_error"))
        shared = [x for x in xs if x in theirs]
        if len(shared) < 2:
            continue
        gap_small_eps = theirs[shared[0]] - ours[shared[0]]
        gap_large_eps = theirs[shared[-1]] - ours[shared[-1]]
        if gap_small_eps >= gap_large_eps:
            expanded += 1
    return expanded >= max(1, len(others) // 2)


def _claim_fig8_relative(result: FigureResult) -> bool:
    # "the relative error gradually degrades as the query range size
    # increases" — i.e. improves toward large ranges (ignoring the
    # cell-query point, whose zero-heavy average the paper calls out).
    method = _first_method_matching(result, "dpcopula")
    return method is not None and endpoint_improvement(
        result, method, "relative_error"
    )


def _claim_fig8_absolute(result: FigureResult) -> bool:
    # "while the absolute error has the contrary trend."
    method = _first_method_matching(result, "dpcopula")
    return method is not None and monotone(
        result, method, "absolute_error", "increasing"
    )


def _claim_fig9(result: FigureResult) -> bool:
    # "DPCopula performs best in all distributions."
    margins = {m.split(":", 1)[1] for m in result.methods() if ":" in m}
    if not margins:
        return False
    for margin in margins:
        dpcopula = f"dpcopula-kendall:{margin}"
        rivals = [
            m
            for m in result.methods()
            if m.endswith(f":{margin}") and not m.startswith("dpcopula")
        ]
        if not rivals:
            return False
        if not all(
            dominates(result, dpcopula, rival, "relative_error")
            for rival in rivals
        ):
            return False
    return True


def _claim_fig10(result: FigureResult) -> bool:
    # "For all dimensions from 2D to 8D, DPCopula again outperforms PSD."
    return dominates(result, "dpcopula-kendall", "psd", "absolute_error")


def _claim_fig11_linear(result: FigureResult) -> bool:
    # "all three techniques run linear time with respect to n" — checked
    # as: no method's runtime grows faster than ~linearly (ratio of
    # runtime growth to n growth bounded).
    methods = {
        point.method for point in result.points if point.metric == "seconds_vs_n"
    }
    for method in methods:
        series = result.series(method, "seconds_vs_n")
        if len(series) < 2:
            continue
        (x0, t0), (x1, t1) = series[0], series[-1]
        n_growth = float(x1) / float(x0)
        t_growth = (t1 + 1e-9) / (t0 + 1e-9)
        if t_growth > 3.0 * n_growth:
            return False
    return True


PAPER_CLAIMS: List[Claim] = [
    Claim("fig5-k", "fig5",
          "error degrades for k < 1; insensitive for k >= 1", _claim_fig5),
    Claim("fig6-error", "fig6",
          "DPCopula-Kendall at or below DPCopula-MLE error", _claim_fig6_error),
    Claim("fig6-runtime", "fig6",
          "runtime grows with dimensionality", _claim_fig6_runtime),
    Claim("fig7a-wins", "fig7a",
          "DPCopula outperforms all baselines (US census)", _claim_fig7),
    Claim("fig7a-gap", "fig7a",
          "gap expands as epsilon decreases (US census)", _claim_fig7_gap),
    Claim("fig7b-wins", "fig7b",
          "DPCopula outperforms all baselines (Brazil census)", _claim_fig7),
    Claim("fig7b-gap", "fig7b",
          "gap expands as epsilon decreases (Brazil census)", _claim_fig7_gap),
    Claim("fig8-relative", "fig8",
          "relative error improves toward large ranges", _claim_fig8_relative),
    Claim("fig8-absolute", "fig8",
          "absolute error grows with range size", _claim_fig8_absolute),
    Claim("fig8-wins", "fig8",
          "DPCopula below PSD and P-HP",
          lambda r: dominates(r, "dpcopula-kendall", "psd")
          and dominates(r, "dpcopula-kendall", "php")),
    Claim("fig9-wins", "fig9",
          "DPCopula best for every margin distribution", _claim_fig9),
    Claim("fig10-wins", "fig10",
          "DPCopula outperforms PSD at every dimensionality", _claim_fig10),
    Claim("fig11-linear", "fig11",
          "runtime roughly linear in cardinality", _claim_fig11_linear),
]


def evaluate_claims(
    results: Dict[str, FigureResult],
    claims: Optional[Sequence[Claim]] = None,
) -> List[ClaimOutcome]:
    """Check every claim against the supplied measured figures."""
    outcomes = []
    for claim in claims if claims is not None else PAPER_CLAIMS:
        result = results.get(claim.figure_id)
        passed = None if result is None else bool(claim.check(result))
        outcomes.append(ClaimOutcome(claim=claim, passed=passed))
    return outcomes


def claims_report(outcomes: Sequence[ClaimOutcome]) -> str:
    """Render claim verdicts as a Markdown table."""
    lines = [
        "| Claim | Figure | Verdict |",
        "|---|---|---|",
    ]
    for outcome in outcomes:
        lines.append(
            f"| {outcome.claim.description} | {outcome.claim.figure_id} | "
            f"{outcome.verdict} |"
        )
    return "\n".join(lines)
