"""One function per figure of the paper's evaluation (Section 5).

Every function returns a :class:`FigureResult`: a tagged list of
``(x, method, metric, value)`` points that prints as the same
rows/series the paper plots.  Scale is controlled by
:class:`~repro.experiments.config.ExperimentScale`; the default keeps the
benchmark suite fast, ``ExperimentScale.paper()`` reproduces the original
evaluation's parameters (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.census import brazil_census, us_census
from repro.data.dataset import Dataset, coarsen_dataset
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data, random_correlation_matrix
from repro.experiments.config import ExperimentScale, PaperDefaults
from repro.experiments.runner import Method, average_evaluation, make_method
from repro.queries.range_query import (
    anchored_workload,
    random_workload,
    workload_with_volume,
)
from repro.utils import as_generator


@dataclass(frozen=True)
class SeriesPoint:
    """One measured value of one method at one x position."""

    x: Union[float, str]
    method: str
    metric: str
    value: float


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure_id: str
    title: str
    parameters: Dict[str, object] = field(default_factory=dict)
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, x, method: str, metric: str, value: float) -> None:
        self.points.append(SeriesPoint(x, method, metric, float(value)))

    def methods(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.method not in seen:
                seen.append(point.method)
        return seen

    def metrics(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.metric not in seen:
                seen.append(point.metric)
        return seen

    def series(self, method: str, metric: str) -> List[Tuple[Union[float, str], float]]:
        return [
            (point.x, point.value)
            for point in self.points
            if point.method == method and point.metric == metric
        ]

    def to_table(self) -> str:
        """Render the figure as text tables, one per metric."""
        lines = [f"== {self.figure_id}: {self.title} =="]
        if self.parameters:
            rendered = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
            lines.append(f"   ({rendered})")
        for metric in self.metrics():
            lines.append(f"-- {metric} --")
            methods = [m for m in self.methods() if self.series(m, metric)]
            xs: List[Union[float, str]] = []
            for method in methods:
                for x, _ in self.series(method, metric):
                    if x not in xs:
                        xs.append(x)
            header = ["x"] + methods
            lines.append("  ".join(f"{h:>18}" for h in header))
            for x in xs:
                row = [f"{x:>18}" if isinstance(x, str) else f"{x:>18.6g}"]
                for method in methods:
                    values = dict(self.series(method, metric))
                    value = values.get(x)
                    row.append(f"{value:>18.6g}" if value is not None else f"{'-':>18}")
                lines.append("  ".join(row))
        return "\n".join(lines)


def _synthetic(
    n_records: int,
    dimensions: int,
    domain_size: int,
    margins: str,
    seed: int,
    correlation_strength: float = 0.6,
) -> Dataset:
    """Synthetic dataset in the Section 5.4 style with a seeded correlation."""
    gen = as_generator(seed)
    correlation = random_correlation_matrix(dimensions, gen, strength=correlation_strength)
    spec = SyntheticSpec(
        n_records=n_records,
        domain_sizes=tuple([domain_size] * dimensions),
        margins=margins,
        correlation=correlation,
    )
    return gaussian_dependence_data(spec, rng=gen)


def fig05_ratio_k(
    scale: Optional[ExperimentScale] = None,
    ks: Sequence[float] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    epsilons: Sequence[float] = (0.1, 1.0),
) -> FigureResult:
    """Figure 5: relative error vs. the budget ratio k (2-D synthetic).

    Expected shape: error falls as k grows toward 1, then plateaus —
    margins deserve (at least) as much budget as the coefficients.
    """
    scale = scale or ExperimentScale.small()
    result = FigureResult(
        "fig5",
        "Relative error vs. ratio k (DPCopula-Kendall, 2D synthetic)",
        {"n": scale.n_records, "domain": scale.domain_size},
    )
    data = _synthetic(scale.n_records, 2, scale.domain_size, "gaussian", scale.base_seed)
    workload = random_workload(data.schema, scale.n_queries, rng=scale.base_seed + 1)
    for epsilon in epsilons:
        for k in ks:
            method = make_method("dpcopula-kendall", k=k)
            timed = average_evaluation(
                method, data, workload, epsilon,
                n_runs=scale.n_runs, rng=scale.base_seed + 2,
            )
            result.add(k, f"eps={epsilon}", "relative_error",
                       timed.evaluation.mean_relative_error)
    return result


def fig06_kendall_vs_mle(
    scale: Optional[ExperimentScale] = None,
    epsilon: float = 1.0,
) -> FigureResult:
    """Figure 6: DPCopula-Kendall vs DPCopula-MLE, error and runtime vs m.

    Expected shape: Kendall at or below MLE error for every m (the MLE
    coefficient's sensitivity 2/l exceeds Kendall's 4/(n̂+1) at practical
    partition counts); both runtimes grow ~quadratically in m.
    """
    scale = scale or ExperimentScale.small()
    result = FigureResult(
        "fig6",
        "DPCopula-Kendall vs DPCopula-MLE (synthetic)",
        {"n": scale.n_records, "domain": scale.domain_size, "epsilon": epsilon},
    )
    for m in scale.dimensions:
        data = _synthetic(
            scale.n_records, m, scale.domain_size, "gaussian", scale.base_seed + m
        )
        workload = random_workload(data.schema, scale.n_queries, rng=scale.base_seed + 1)
        for variant in ("kendall", "mle"):
            method = make_method(f"dpcopula-{variant}")
            timed = average_evaluation(
                method, data, workload, epsilon,
                n_runs=scale.n_runs, rng=scale.base_seed + 2,
            )
            result.add(m, f"dpcopula-{variant}", "relative_error",
                       timed.evaluation.mean_relative_error)
            result.add(m, f"dpcopula-{variant}", "seconds", timed.fit_seconds)
    return result


_CENSUS_BUILDERS: Dict[str, Callable[[int, int], Dataset]] = {
    "us": lambda n, seed: us_census(n_records=n, rng=seed),
    "brazil": lambda n, seed: brazil_census(n_records=n, rng=seed),
}


def fig07_census(
    dataset_name: str = "us",
    scale: Optional[ExperimentScale] = None,
    methods: Optional[Sequence[str]] = None,
    dense_max_domain: int = 256,
) -> FigureResult:
    """Figure 7: relative error vs. ε on the (simulated) census datasets.

    DPCopula runs as the hybrid (binary attributes are partitioned on).
    Dense-grid baselines (Privelet+, P-HP) require a materializable grid,
    so — exactly as the original evaluation drops histogram-input methods
    above 10^6 bins — they run on a coarsened copy of the data
    (``dense_max_domain`` buckets max per attribute) while point-input
    methods see the full domains.

    Expected shape: DPCopula below every baseline, gap widening as ε
    shrinks.
    """
    scale = scale or ExperimentScale.small()
    if dataset_name not in _CENSUS_BUILDERS:
        raise ValueError(f"unknown census dataset {dataset_name!r}")
    data = _CENSUS_BUILDERS[dataset_name](scale.n_records, scale.base_seed)
    defaults = PaperDefaults()
    if dataset_name == "us":
        sanity = max(1.0, defaults.us_sanity_fraction * data.n_records)
        default_methods = ("dpcopula-hybrid", "psd", "fp", "privelet", "php")
    else:
        sanity = defaults.brazil_sanity_bound
        default_methods = ("dpcopula-hybrid", "psd", "fp")
    method_names = tuple(methods) if methods is not None else default_methods

    coarse = coarsen_dataset(data, dense_max_domain)
    workload = random_workload(data.schema, scale.n_queries, rng=scale.base_seed + 1)
    # The same workload, expressed on the coarsened domains.
    factors = [
        -(-full.domain_size // dense_max_domain) if full.domain_size > dense_max_domain else 1
        for full in data.schema
    ]
    coarse_workload = []
    from repro.queries.range_query import RangeQuery

    for query in workload:
        ranges = tuple(
            (low // factor, high // factor)
            for (low, high), factor in zip(query.ranges, factors)
        )
        coarse_workload.append(RangeQuery(ranges))

    result = FigureResult(
        "fig7" + ("a" if dataset_name == "us" else "b"),
        f"Relative error vs. privacy budget ({dataset_name} census, simulated)",
        {"n": data.n_records, "sanity_bound": sanity},
    )
    for epsilon in scale.epsilons:
        for name in method_names:
            method = make_method(name)
            dense = not method.supports(data)
            target_data = coarse if dense else data
            target_workload = coarse_workload if dense else workload
            timed = average_evaluation(
                method, target_data, target_workload, epsilon,
                n_runs=scale.n_runs, sanity_bound=sanity, rng=scale.base_seed + 2,
            )
            result.add(epsilon, name, "relative_error",
                       timed.evaluation.mean_relative_error)
    return result


def fig08_range_size(
    scale: Optional[ExperimentScale] = None,
    epsilon: float = 0.1,
    selectivities: Sequence[float] = (1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.25),
    methods: Sequence[str] = ("dpcopula-kendall", "psd", "php"),
) -> FigureResult:
    """Figure 8: query accuracy vs. query range size (2-D, ε = 0.1).

    Expected shape: relative error falls and absolute error rises with
    the range size; DPCopula below PSD and P-HP throughout.
    """
    scale = scale or ExperimentScale.small()
    data = _synthetic(scale.n_records, 2, scale.domain_size, "gaussian", scale.base_seed)
    domain_space = data.schema.domain_space()
    result = FigureResult(
        "fig8",
        "Query accuracy vs. query range size (2D synthetic)",
        {"n": scale.n_records, "domain": scale.domain_size, "epsilon": epsilon},
    )
    for selectivity in selectivities:
        volume = max(1.0, selectivity * domain_space)
        workload = workload_with_volume(
            data.schema, volume, scale.n_queries, rng=scale.base_seed + 1
        )
        for name in methods:
            method = make_method(name)
            timed = average_evaluation(
                method, data, workload, epsilon,
                n_runs=scale.n_runs, rng=scale.base_seed + 2,
            )
            result.add(volume, name, "relative_error",
                       timed.evaluation.mean_relative_error)
            result.add(volume, name, "absolute_error",
                       timed.evaluation.mean_absolute_error)
    return result


def fig09_distribution(
    scale: Optional[ExperimentScale] = None,
    margins: Sequence[str] = ("gaussian", "uniform", "zipf"),
    methods: Sequence[str] = ("dpcopula-kendall", "psd"),
    dimensions: Optional[int] = None,
) -> FigureResult:
    """Figure 9: relative error vs. margin distribution (8-D, ε sweep).

    Queries are *anchored* on data records: at 8 dimensions with skewed
    margins a fully random workload is empty almost surely (every method
    scores a degenerate zero), so each query is guaranteed to cover at
    least one record — random in shape and position otherwise.

    Expected shape: DPCopula below PSD for every margin family, with the
    largest gap on skewed (zipf) margins.
    """
    scale = scale or ExperimentScale.small()
    m = dimensions if dimensions is not None else max(scale.dimensions)
    result = FigureResult(
        "fig9",
        f"Relative error vs. margin distribution ({m}D synthetic)",
        {"n": scale.n_records, "domain": scale.domain_size, "m": m},
    )
    for margin in margins:
        data = _synthetic(
            scale.n_records, m, scale.domain_size, margin, scale.base_seed
        )
        workload = anchored_workload(data, scale.n_queries, rng=scale.base_seed + 1)
        for epsilon in scale.epsilons:
            for name in methods:
                method = make_method(name)
                timed = average_evaluation(
                    method, data, workload, epsilon,
                    n_runs=scale.n_runs, rng=scale.base_seed + 2,
                )
                result.add(epsilon, f"{name}:{margin}", "relative_error",
                           timed.evaluation.mean_relative_error)
    return result


def fig10_dimensionality(
    scale: Optional[ExperimentScale] = None,
    epsilon: float = 1.0,
    methods: Sequence[str] = ("dpcopula-kendall", "psd"),
) -> FigureResult:
    """Figure 10: query accuracy vs. dimensionality (|A_i| fixed).

    Expected shape: both errors grow with m (sparser data, thinner budget
    slices); DPCopula stays below PSD, with a widening gap.
    """
    scale = scale or ExperimentScale.small()
    result = FigureResult(
        "fig10",
        "Query accuracy vs. dimensionality (synthetic)",
        {"n": scale.n_records, "domain": scale.domain_size, "epsilon": epsilon},
    )
    for m in scale.dimensions:
        data = _synthetic(
            scale.n_records, m, scale.domain_size, "gaussian", scale.base_seed + m
        )
        workload = random_workload(data.schema, scale.n_queries, rng=scale.base_seed + 1)
        for name in methods:
            method = make_method(name)
            timed = average_evaluation(
                method, data, workload, epsilon,
                n_runs=scale.n_runs, rng=scale.base_seed + 2,
            )
            result.add(m, name, "relative_error",
                       timed.evaluation.mean_relative_error)
            result.add(m, name, "absolute_error",
                       timed.evaluation.mean_absolute_error)
    return result


def fig11_scalability(
    scale: Optional[ExperimentScale] = None,
    epsilon: float = 1.0,
    cardinalities: Optional[Sequence[int]] = None,
    dense_max_domain: int = 64,
) -> FigureResult:
    """Figure 11: fit runtime vs. cardinality (a) and dimensionality (b).

    Expected shape: every method linear in n; DPCopula quadratic but mild
    in m; PSD's point input keeps it domain-size independent.
    """
    scale = scale or ExperimentScale.small()
    if cardinalities is None:
        base = scale.n_records
        cardinalities = [base // 4, base // 2, base, base * 2]
    result = FigureResult(
        "fig11",
        "Fit runtime vs. cardinality (4D census) and dimensionality (synthetic)",
        {"epsilon": epsilon},
    )
    # (a) runtime vs n on the 4-D US census schema.
    for n in cardinalities:
        data = us_census(n_records=int(n), rng=scale.base_seed)
        coarse = coarsen_dataset(data, dense_max_domain)
        workload = random_workload(data.schema, 10, rng=scale.base_seed + 1)
        for name in ("dpcopula-hybrid", "psd", "privelet"):
            method = make_method(name)
            dense = not method.supports(data)
            target = coarse if dense else data
            target_workload = workload if not dense else random_workload(
                coarse.schema, 10, rng=scale.base_seed + 1
            )
            timed = average_evaluation(
                method, target, target_workload, epsilon,
                n_runs=max(1, scale.n_runs - 1), rng=scale.base_seed + 2,
            )
            result.add(int(n), name, "seconds_vs_n", timed.fit_seconds)
    # (b) runtime vs m on synthetic data.
    for m in scale.dimensions:
        data = _synthetic(
            scale.n_records, m, scale.domain_size, "gaussian", scale.base_seed + m
        )
        workload = random_workload(data.schema, 10, rng=scale.base_seed + 1)
        for name in ("dpcopula-kendall", "psd"):
            method = make_method(name)
            timed = average_evaluation(
                method, data, workload, epsilon,
                n_runs=max(1, scale.n_runs - 1), rng=scale.base_seed + 2,
            )
            result.add(m, name, "seconds_vs_m", timed.fit_seconds)
    return result


_FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig5": fig05_ratio_k,
    "fig6": fig06_kendall_vs_mle,
    "fig7a": lambda scale=None, **kw: fig07_census("us", scale, **kw),
    "fig7b": lambda scale=None, **kw: fig07_census("brazil", scale, **kw),
    "fig8": fig08_range_size,
    "fig9": fig09_distribution,
    "fig10": fig10_dimensionality,
    "fig11": fig11_scalability,
}


def run_figure(figure_id: str, scale: Optional[ExperimentScale] = None, **kwargs) -> FigureResult:
    """Run one reproduced figure by id (``fig5`` ... ``fig11``)."""
    try:
        function = _FIGURES[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; available: {sorted(_FIGURES)}"
        ) from None
    return function(scale=scale, **kwargs)


def available_figures() -> List[str]:
    """Ids accepted by :func:`run_figure`."""
    return sorted(_FIGURES)
