"""Named evaluation scenarios: mixed-type generators + the full workload.

The paper evaluates on two census extracts and parametric synthetic
data; this module packages **folktables-style scenarios** — named,
reproducible mixed-margin generators with a designated prediction
target — so ``dpcopula evaluate`` and the utility bench can score
DPCopula against the in-repo baselines on a fixed matrix of data
shapes.  Each scenario is deterministic in its seed: the same
``(scenario, seed)`` pair always yields the same records, splits and
workloads.

Scenario catalog (domains sized so the dense-grid baselines stay under
:data:`~repro.experiments.runner.MAX_DENSE_CELLS`):

========================  ======================================================
``acs-income``            ACS-like income table: age, workclass, education,
                          hours-per-week, sex → binary income bracket.
``acs-employment``        ACS-like employment table: age, education, sex,
                          relationship, disability → employed.
``credit-default``        Credit-bureau shape: skewed balance and bill amounts,
                          payment delay → default flag.
``zipf-mixed``            Stress shape: one heavy Zipf axis, one Gaussian, one
                          small uniform → binary label.
``smoke-mixed``           Tiny CI scenario (≈2.5k cells) for e2e smokes.
========================  ======================================================

:func:`run_scenario` is the one-call entry point: generate, split,
build the range + k-way-marginal + ML workloads, and score every
requested method via
:func:`~repro.experiments.runner.utility_evaluation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Attribute, Dataset, Schema
from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.experiments.runner import (
    UtilityEvaluation,
    make_method,
    utility_evaluation,
)
from repro.queries.ml_utility import train_test_split
from repro.queries.range_query import anchored_workload
from repro.queries.workloads import all_kway
from repro.utils import check_positive

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "list_scenarios",
    "make_scenario",
    "run_scenario",
]

#: Methods every scenario is scored on unless the caller overrides.
DEFAULT_METHODS = ("dpcopula-kendall", "privelet", "psd", "fp", "php")


@dataclass(frozen=True)
class Scenario:
    """A reproducible mixed-margin generator with a prediction target."""

    name: str
    description: str
    attribute_names: Tuple[str, ...]
    domain_sizes: Tuple[int, ...]
    margins: Tuple[str, ...]
    target: str
    n_records: int
    correlation_strength: float = 0.6
    zipf_exponent: float = 1.4
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (
            len(self.attribute_names)
            == len(self.domain_sizes)
            == len(self.margins)
        ):
            raise ValueError(
                f"scenario {self.name!r}: names, domains and margins must align"
            )
        if self.target not in self.attribute_names:
            raise ValueError(
                f"scenario {self.name!r}: target {self.target!r} is not an "
                "attribute"
            )

    @property
    def dimensions(self) -> int:
        return len(self.domain_sizes)

    @property
    def schema(self) -> Schema:
        return Schema(
            (
                Attribute(name, size)
                for name, size in zip(self.attribute_names, self.domain_sizes)
            ),
            target=self.target,
        )

    def generate(self, seed: int = 0) -> Dataset:
        """The scenario's dataset for one seed (bitwise reproducible).

        The latent correlation matrix is drawn from the seed too, so
        different seeds give genuinely different dependence structures
        while the margins and schema stay fixed.
        """
        rng = np.random.default_rng(seed)
        correlation = random_correlation_matrix(
            self.dimensions, rng, strength=self.correlation_strength
        )
        spec = SyntheticSpec(
            n_records=self.n_records,
            domain_sizes=self.domain_sizes,
            margins=list(self.margins),
            correlation=correlation,
            zipf_exponent=self.zipf_exponent,
        )
        data = gaussian_dependence_data(spec, rng)
        return Dataset(data.values, self.schema)


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="acs-income",
            description="ACS-like income table (predict income bracket)",
            attribute_names=(
                "age",
                "workclass",
                "education",
                "hours",
                "sex",
                "income",
            ),
            domain_sizes=(74, 8, 24, 99, 2, 2),
            margins=(
                "gaussian",
                "zipf",
                "zipf",
                "gaussian",
                "uniform",
                "uniform",
            ),
            target="income",
            n_records=6_000,
        ),
        Scenario(
            name="acs-employment",
            description="ACS-like employment table (predict employed)",
            attribute_names=(
                "age",
                "education",
                "sex",
                "relationship",
                "disability",
                "employed",
            ),
            domain_sizes=(74, 24, 2, 9, 2, 2),
            margins=(
                "gaussian",
                "zipf",
                "uniform",
                "zipf",
                "uniform",
                "uniform",
            ),
            target="employed",
            n_records=6_000,
        ),
        Scenario(
            name="credit-default",
            description="Credit-bureau shape (predict default flag)",
            attribute_names=("limit", "bill", "pay_delay", "default"),
            domain_sizes=(200, 150, 12, 2),
            margins=("zipf", "zipf", "gaussian", "uniform"),
            target="default",
            n_records=5_000,
            zipf_exponent=1.3,
        ),
        Scenario(
            name="zipf-mixed",
            description="Heavy-tail stress shape (predict binary label)",
            attribute_names=("heavy", "smooth", "group", "label"),
            domain_sizes=(300, 100, 10, 2),
            margins=("zipf", "gaussian", "uniform", "uniform"),
            target="label",
            n_records=5_000,
            correlation_strength=0.7,
        ),
        Scenario(
            name="smoke-mixed",
            description="Tiny CI scenario (fast end-to-end smoke)",
            attribute_names=("x", "y", "group", "flag"),
            domain_sizes=(20, 16, 4, 2),
            margins=("gaussian", "zipf", "uniform", "uniform"),
            target="flag",
            n_records=1_200,
        ),
    )
}


def list_scenarios() -> List[str]:
    """Catalog names, sorted."""
    return sorted(SCENARIOS)


def make_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {list_scenarios()}"
        ) from None


@dataclass(frozen=True)
class ScenarioResult:
    """All methods' utility scores on one (scenario, ε, seed) cell.

    ``skipped`` maps method names to the reason they could not run on
    this scenario (e.g. a dense-grid method over the cell limit).
    """

    scenario: str
    epsilon: float
    seed: int
    n_records: int
    evaluations: Tuple[UtilityEvaluation, ...]
    skipped: Dict[str, str]

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "epsilon": self.epsilon,
            "seed": self.seed,
            "n_records": self.n_records,
            "methods": [evaluation.to_dict() for evaluation in self.evaluations],
            "skipped": dict(self.skipped),
        }


def run_scenario(
    name: str,
    methods: Optional[Sequence[str]] = None,
    epsilon: float = 1.0,
    seed: int = 0,
    n_queries: int = 60,
    marginal_k: int = 3,
    bins: int = 6,
    max_marginals: int = 20,
    test_fraction: float = 0.25,
    synthetic_records: Optional[int] = None,
) -> ScenarioResult:
    """Generate a scenario and score each method on the full workload.

    Workloads are built once (anchored range queries so true answers
    stay informative; every ≤ ``marginal_k``-way marginal capped at
    ``max_marginals`` per order) and shared across methods, so the
    comparison is paired.  Methods whose :meth:`Method.supports` rejects
    the scenario are recorded under ``skipped`` instead of raising.
    """
    check_positive("epsilon", epsilon)
    scenario = make_scenario(name)
    data = scenario.generate(seed)
    train, test = train_test_split(data, test_fraction, rng=seed)

    workload_rng = np.random.default_rng((seed, 1))
    range_workload = anchored_workload(train, n_queries, workload_rng)
    marginals = []
    for k in range(1, min(marginal_k, scenario.dimensions) + 1):
        marginals.extend(
            all_kway(
                train.schema,
                k,
                bins=bins,
                max_marginals=max_marginals,
                rng=np.random.default_rng((seed, 2, k)),
            )
        )

    evaluations = []
    skipped: Dict[str, str] = {}
    for index, method_name in enumerate(methods or DEFAULT_METHODS):
        method = make_method(method_name)
        if not method.supports(train):
            skipped[method_name] = "unsupported domain for this method"
            continue
        evaluations.append(
            utility_evaluation(
                method,
                train,
                test,
                range_workload,
                marginals,
                epsilon,
                rng=np.random.default_rng((seed, 3, index)),
                synthetic_records=synthetic_records,
            )
        )
    return ScenarioResult(
        scenario=scenario.name,
        epsilon=epsilon,
        seed=seed,
        n_records=data.n_records,
        evaluations=tuple(evaluations),
        skipped=skipped,
    )
