"""Dependency-free terminal plots for figure results.

The benchmark harness runs in headless environments, so figures are
rendered as Unicode line charts directly in the terminal: one chart per
metric, one braille-free column-block series per method, log-scaled when
the values span decades (error-vs-ε curves usually do).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.figures import FigureResult

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], log_scale: bool = False) -> str:
    """Render a numeric series as a row of block characters.

    >>> sparkline([1, 2, 3, 4])
    '▁▃▆█'
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return ""
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        return "?" * array.size
    if log_scale:
        floor = max(finite[finite > 0].min() if (finite > 0).any() else 1e-12, 1e-12)
        array = np.log10(np.clip(array, floor, None))
        finite = array[np.isfinite(array)]
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    characters = []
    for value in array:
        if not np.isfinite(value):
            characters.append("?")
            continue
        if span <= 0:
            characters.append(_BLOCKS[4])
            continue
        index = int(round((value - low) / span * (len(_BLOCKS) - 2))) + 1
        characters.append(_BLOCKS[index])
    return "".join(characters)


def _should_log_scale(series: Dict[str, List[Tuple[object, float]]]) -> bool:
    values = [v for points in series.values() for _, v in points if v > 0]
    if len(values) < 2:
        return False
    return max(values) / max(min(values), 1e-300) > 50.0


def render_figure(result: FigureResult, width: int = 72) -> str:
    """Terminal rendering: per metric, one labelled sparkline per method."""
    lines = [f"{result.figure_id}: {result.title}"]
    for metric in result.metrics():
        series = {
            method: result.series(method, metric)
            for method in result.methods()
            if result.series(method, metric)
        }
        if not series:
            continue
        log_scale = _should_log_scale(series)
        suffix = " (log scale)" if log_scale else ""
        lines.append(f"  [{metric}]{suffix}")
        label_width = min(max(len(m) for m in series), 28)
        for method, points in series.items():
            values = [v for _, v in points]
            chart = sparkline(values, log_scale=log_scale)
            low, high = min(values), max(values)
            lines.append(
                f"    {method[:label_width]:<{label_width}} {chart}  "
                f"[{low:.3g} .. {high:.3g}]"
            )
        xs = [x for x, _ in next(iter(series.values()))]
        lines.append(f"    {'x:':<{label_width}} {xs[0]} .. {xs[-1]}")
    return "\n".join(lines)
