"""Experiment parameters.

:class:`PaperDefaults` pins Table 3 of the paper (the authoritative
defaults of the original evaluation); :class:`ExperimentScale` is the
dial between a quick benchmark run and the paper's full scale.  Every
figure function takes a scale object, so regenerating a figure at paper
scale is a one-argument change.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple


@dataclass(frozen=True)
class PaperDefaults:
    """Table 3: default experiment parameters of the original paper."""

    n_records: int = 50_000
    epsilon: float = 1.0
    dimensions: int = 8
    sanity_bound: float = 1.0
    ratio_k: float = 8.0
    domain_size: int = 1000
    queries_per_run: int = 1000
    runs: int = 5
    # Section 5.1: sanity bounds for the real datasets.
    us_sanity_fraction: float = 0.0005  # 0.05% of cardinality
    brazil_sanity_bound: float = 10.0


@dataclass(frozen=True)
class ExperimentScale:
    """Tunable scale of an experiment run.

    ``small()`` completes in seconds per figure (the benchmark-suite
    default), ``paper()`` matches the original evaluation's scale.
    """

    n_records: int = 5_000
    n_queries: int = 100
    n_runs: int = 2
    domain_size: int = 128
    dimensions: Tuple[int, ...] = (2, 4, 6, 8)
    epsilons: Tuple[float, ...] = (0.1, 0.5, 1.0)
    base_seed: int = 20140324

    @classmethod
    def small(cls) -> "ExperimentScale":
        return cls()

    @classmethod
    def medium(cls) -> "ExperimentScale":
        return cls(
            n_records=20_000,
            n_queries=300,
            n_runs=3,
            domain_size=512,
            epsilons=(0.05, 0.1, 0.25, 0.5, 1.0),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        defaults = PaperDefaults()
        return cls(
            n_records=defaults.n_records,
            n_queries=defaults.queries_per_run,
            n_runs=defaults.runs,
            domain_size=defaults.domain_size,
            epsilons=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
        )

    def with_(self, **changes) -> "ExperimentScale":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
