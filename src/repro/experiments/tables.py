"""Regeneration of the paper's tables.

Section 5 has two setup tables besides the figures:

* **Table 2** — domain sizes of the real datasets.  Regenerated from the
  simulated extracts' schemas (which reproduce the published values
  exactly; the test suite asserts this).
* **Table 3** — the experiment parameter defaults.  Regenerated from
  :class:`~repro.experiments.config.PaperDefaults`.

(Table 1 is the notation index and has no data content.)
"""

from __future__ import annotations

from typing import List

from repro.data.census import BRAZIL_CENSUS_SCHEMA, US_CENSUS_SCHEMA
from repro.data.dataset import Schema
from repro.experiments.config import PaperDefaults


def _schema_rows(schema: Schema) -> List[List[str]]:
    return [[attribute.name, str(attribute.domain_size)] for attribute in schema]


def _render(title: str, header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(header[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def table2a_us_domain_sizes() -> str:
    """Table 2(a): US census dataset domain sizes."""
    return _render(
        "Table 2(a): US census dataset",
        ["Attribute", "Domain size"],
        _schema_rows(US_CENSUS_SCHEMA),
    )


def table2b_brazil_domain_sizes() -> str:
    """Table 2(b): Brazil census dataset domain sizes."""
    return _render(
        "Table 2(b): Brazil census dataset",
        ["Attribute", "Domain size"],
        _schema_rows(BRAZIL_CENSUS_SCHEMA),
    )


def table3_experiment_parameters() -> str:
    """Table 3: default experiment parameters."""
    defaults = PaperDefaults()
    rows = [
        ["n", "number of tuples in D", str(defaults.n_records)],
        ["epsilon", "privacy budget", str(defaults.epsilon)],
        ["m", "number of dimensions", str(defaults.dimensions)],
        ["s", "sanity bound", str(int(defaults.sanity_bound))],
        ["k", "ratio of epsilon1 and epsilon2", str(int(defaults.ratio_k))],
        ["A_i", "domain size of ith dimension", str(defaults.domain_size)],
    ]
    return _render(
        "Table 3: experiment parameters",
        ["Parameter", "Description", "Default value"],
        rows,
    )


def all_tables() -> str:
    """Every regenerated table, concatenated."""
    return "\n\n".join(
        [
            table2a_us_domain_sizes(),
            table2b_brazil_domain_sizes(),
            table3_experiment_parameters(),
        ]
    )
