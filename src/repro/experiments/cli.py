"""Command-line entry point: ``python -m repro.experiments --figure fig7a``.

Runs one or all reproduced figures at the chosen scale and prints the
series tables (the same rows the paper plots).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import available_figures, run_figure

_SCALES = {
    "small": ExperimentScale.small,
    "medium": ExperimentScale.medium,
    "paper": ExperimentScale.paper,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the DPCopula paper's evaluation figures.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        dest="figures",
        choices=available_figures(),
        help="figure id to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(_SCALES),
        help="experiment scale (default: small)",
    )
    parser.add_argument(
        "--n-records", type=int, default=None, help="override dataset cardinality"
    )
    parser.add_argument(
        "--n-queries", type=int, default=None, help="override workload size"
    )
    parser.add_argument(
        "--n-runs", type=int, default=None, help="override repetition count"
    )
    parser.add_argument(
        "--tables",
        action="store_true",
        help="print the regenerated paper tables (Table 2 and Table 3) and exit",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write the results as a Markdown report to PATH",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render terminal sparkline charts in addition to the tables",
    )
    parser.add_argument(
        "--claims",
        action="store_true",
        help="check the paper's qualitative claims against the results",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested figures (or print tables) and return exit code."""
    args = build_parser().parse_args(argv)
    if args.tables:
        from repro.experiments.tables import all_tables

        print(all_tables())
        return 0
    scale = _SCALES[args.scale]()
    overrides = {}
    if args.n_records is not None:
        overrides["n_records"] = args.n_records
    if args.n_queries is not None:
        overrides["n_queries"] = args.n_queries
    if args.n_runs is not None:
        overrides["n_runs"] = args.n_runs
    if overrides:
        scale = scale.with_(**overrides)

    figures = args.figures or available_figures()
    results = []
    for figure_id in figures:
        result = run_figure(figure_id, scale=scale)
        results.append(result)
        print(result.to_table())
        if args.plot:
            from repro.experiments.plotting import render_figure

            print()
            print(render_figure(result))
        print()
    if args.claims:
        from repro.experiments.claims import claims_report, evaluate_claims

        outcomes = evaluate_claims({r.figure_id: r for r in results})
        print(claims_report(outcomes))
        print()
    if args.report:
        from repro.experiments.report import write_report

        write_report(results, args.report, title=f"Measured results ({args.scale} scale)")
        print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
