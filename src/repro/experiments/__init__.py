"""Experiment harness regenerating every figure of the paper's Section 5."""

from repro.experiments.config import ExperimentScale, PaperDefaults
from repro.experiments.runner import (
    DPCopulaMethod,
    FPMethod,
    IdentityMethod,
    Method,
    PHPMethod,
    PriveletMethod,
    PSDMethod,
    average_evaluation,
    dense_counts,
    make_method,
)
from repro.experiments.claims import (
    PAPER_CLAIMS,
    Claim,
    ClaimOutcome,
    claims_report,
    evaluate_claims,
)
from repro.experiments.plotting import render_figure, sparkline
from repro.experiments.report import (
    figure_to_csv,
    figure_to_markdown,
    figures_to_markdown,
    write_report,
)
from repro.experiments.figures import (
    FigureResult,
    SeriesPoint,
    fig05_ratio_k,
    fig06_kendall_vs_mle,
    fig07_census,
    fig08_range_size,
    fig09_distribution,
    fig10_dimensionality,
    fig11_scalability,
    run_figure,
)

__all__ = [
    "PaperDefaults",
    "ExperimentScale",
    "Method",
    "DPCopulaMethod",
    "PSDMethod",
    "PriveletMethod",
    "FPMethod",
    "PHPMethod",
    "IdentityMethod",
    "make_method",
    "dense_counts",
    "average_evaluation",
    "SeriesPoint",
    "FigureResult",
    "fig05_ratio_k",
    "fig06_kendall_vs_mle",
    "fig07_census",
    "fig08_range_size",
    "fig09_distribution",
    "fig10_dimensionality",
    "fig11_scalability",
    "run_figure",
    "figure_to_markdown",
    "figures_to_markdown",
    "figure_to_csv",
    "write_report",
    "render_figure",
    "sparkline",
    "Claim",
    "ClaimOutcome",
    "PAPER_CLAIMS",
    "evaluate_claims",
    "claims_report",
]
