"""Method wrappers and the evaluation loop shared by all figures.

A :class:`Method` turns (dataset, ε, rng) into something that answers
range queries — a synthetic dataset for the DPCopula variants, a noisy
structure for the histogram baselines.  :func:`average_evaluation`
repeats fit + evaluate over independent runs and averages the error
metrics, matching the paper's "1000 random queries, averaged over 5
runs" protocol at configurable scale.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.dpcopula import DPCopulaKendall, DPCopulaMLE
from repro.core.hybrid import DPCopulaHybrid
from repro.data.dataset import Dataset
from repro.histograms.base import HistogramPublisher, RangeQueryAnswerer
from repro.histograms.dpcube import DPCubePublisher
from repro.histograms.efpa import EFPAPublisher
from repro.histograms.fp import FilterPriorityPublisher
from repro.histograms.grid import AdaptiveGridPublisher, UniformGridPublisher
from repro.histograms.hierarchical import HierarchicalPublisher
from repro.histograms.identity import IdentityPublisher
from repro.histograms.php import PHPPublisher
from repro.histograms.privelet import PriveletPublisher
from repro.histograms.psd import PSDPublisher
from repro.histograms.structurefirst import NoiseFirstPublisher, StructureFirstPublisher
from repro.parallel import ExecutionContext, resolve_context, spawn_seed_sequences
from repro.queries.evaluation import QueryEvaluation, evaluate_workload, true_answers
from repro.queries.range_query import RangeQuery
from repro.utils import RngLike, as_generator

# Dense-grid methods refuse domains beyond this many cells — the same
# constraint that forces the paper to drop histogram-input baselines on
# high-dimensional domains.
MAX_DENSE_CELLS = 2**24


def dense_counts(dataset: Dataset, max_cells: int = MAX_DENSE_CELLS) -> np.ndarray:
    """Materialize the full m-dimensional count grid of a dataset."""
    shape = tuple(dataset.schema.domain_sizes)
    cells = float(np.prod([float(s) for s in shape]))
    if cells > max_cells:
        raise MemoryError(
            f"domain space of {cells:.3g} cells exceeds the dense limit "
            f"({max_cells}); use a point-input method (PSD, FP, DPCopula)"
        )
    counts = np.zeros(shape)
    np.add.at(counts, tuple(dataset.values[:, j] for j in range(dataset.dimensions)), 1.0)
    return counts


class Method(abc.ABC):
    """A named competitor: fits private state, answers range queries."""

    name: str = "method"

    @abc.abstractmethod
    def fit(self, dataset: Dataset, epsilon: float, rng: RngLike = None):
        """Return an answer source (Dataset or RangeQueryAnswerer)."""

    def supports(self, dataset: Dataset) -> bool:
        """Whether the method can run on this dataset's domain."""
        return True


_MARGIN_PUBLISHERS = {
    "efpa": EFPAPublisher,
    "identity": IdentityPublisher,
    "noisefirst": NoiseFirstPublisher,
    "structurefirst": StructureFirstPublisher,
    "privelet": PriveletPublisher,
    "hierarchical": HierarchicalPublisher,
}


def margin_publisher_by_name(name: str) -> HistogramPublisher:
    """Instantiate a 1-D margin publisher from its registry name."""
    try:
        return _MARGIN_PUBLISHERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown margin publisher {name!r}; available: "
            f"{sorted(_MARGIN_PUBLISHERS)}"
        ) from None


class DPCopulaMethod(Method):
    """DPCopula in any of its three variants.

    The experiment harness defaults DPCopula's margins to NoiseFirst
    rather than the library's EFPA default: the paper's protocol sets
    "all parameters in the algorithms ... to the optimal values in each
    experiment" (Section 5.1), and across our workloads the merging-based
    publisher is uniformly at least as accurate as our DCT-based EFPA
    variant (which smears spiky margins; see the margin ablation bench).
    """

    def __init__(
        self,
        variant: str = "kendall",
        k: float = 8.0,
        margin_publisher: Union[str, HistogramPublisher, None] = "noisefirst",
        **kwargs,
    ):
        if variant not in ("kendall", "mle", "hybrid"):
            raise ValueError(f"unknown DPCopula variant {variant!r}")
        self.variant = variant
        self.k = k
        if isinstance(margin_publisher, str):
            margin_publisher = margin_publisher_by_name(margin_publisher)
        self.margin_publisher = margin_publisher
        self.kwargs = kwargs
        self.name = f"dpcopula-{variant}"

    def fit(self, dataset: Dataset, epsilon: float, rng: RngLike = None) -> Dataset:
        if self.variant == "hybrid":
            synthesizer = DPCopulaHybrid(
                epsilon,
                k=self.k,
                margin_publisher=self.margin_publisher,
                rng=rng,
                **self.kwargs,
            )
            return synthesizer.fit_sample(dataset)
        cls = DPCopulaKendall if self.variant == "kendall" else DPCopulaMLE
        synthesizer = cls(
            epsilon,
            k=self.k,
            margin_publisher=self.margin_publisher,
            rng=rng,
            **self.kwargs,
        )
        return synthesizer.fit_sample(dataset)


class PSDMethod(Method):
    """Private spatial decomposition (point input: any domain size)."""

    name = "psd"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return PSDPublisher(**self.kwargs).publish(dataset, epsilon, rng)


class FPMethod(Method):
    """Filter Priority sparse summaries (point input)."""

    name = "fp"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return FilterPriorityPublisher(**self.kwargs).publish(dataset, epsilon, rng)


class _DenseMethod(Method):
    """Base for methods consuming the materialized count grid."""

    publisher_class = None
    # Non-negativity clipping is standard (privacy-free) post-processing
    # for cell-wise estimates, but methods whose range-query accuracy
    # relies on *signed noise cancellation* (the wavelet transform) are
    # biased catastrophically by it, so they opt out.
    clip_negative = True

    def __init__(self, max_cells: int = MAX_DENSE_CELLS, **kwargs):
        self.max_cells = max_cells
        self.kwargs = kwargs

    def supports(self, dataset: Dataset) -> bool:
        return dataset.schema.domain_space() <= self.max_cells

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        counts = dense_counts(dataset, self.max_cells)
        publisher = self.publisher_class(**self.kwargs)
        return publisher.publish_dense(
            counts, epsilon, rng, clip_negative=self.clip_negative
        )


class PriveletMethod(_DenseMethod):
    """Privelet+ (wavelet noise on the dense grid).

    Unclipped: range sums over the wavelet reconstruction are unbiased
    with polylogarithmic variance precisely because positive and
    negative per-cell noise cancels; clipping would turn that into a
    volume-proportional positive bias.
    """

    name = "privelet"
    publisher_class = PriveletPublisher
    clip_negative = False


class PHPMethod(_DenseMethod):
    """P-HP hierarchical partitioning on the (flattened) dense grid."""

    name = "php"
    publisher_class = PHPPublisher


class IdentityMethod(_DenseMethod):
    """Dwork's Laplace-per-bin mechanism on the dense grid."""

    name = "identity"
    publisher_class = IdentityPublisher


class DPCubeMethod(_DenseMethod):
    """DPCube two-phase kd-partitioning on the dense grid."""

    name = "dpcube"
    publisher_class = DPCubePublisher


class UGMethod(Method):
    """Uniform grid (Qardaji et al.) — 2-D point input."""

    name = "ug"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def supports(self, dataset: Dataset) -> bool:
        return dataset.dimensions == 2

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return UniformGridPublisher(**self.kwargs).publish(dataset, epsilon, rng)


class AGMethod(Method):
    """Adaptive grid (Qardaji et al.) — 2-D point input."""

    name = "ag"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def supports(self, dataset: Dataset) -> bool:
        return dataset.dimensions == 2

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return AdaptiveGridPublisher(**self.kwargs).publish(dataset, epsilon, rng)


_METHODS = {
    "dpcopula-kendall": lambda **kw: DPCopulaMethod("kendall", **kw),
    "dpcopula-mle": lambda **kw: DPCopulaMethod("mle", **kw),
    "dpcopula-hybrid": lambda **kw: DPCopulaMethod("hybrid", **kw),
    "psd": PSDMethod,
    "fp": FPMethod,
    "privelet": PriveletMethod,
    "php": PHPMethod,
    "identity": IdentityMethod,
    "dpcube": DPCubeMethod,
    "ug": UGMethod,
    "ag": AGMethod,
}


def make_method(name: str, **kwargs) -> Method:
    """Instantiate a method by its registry name."""
    try:
        factory = _METHODS[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {sorted(_METHODS)}"
        ) from None
    return factory(**kwargs)


@dataclass(frozen=True)
class TimedEvaluation:
    """Averaged error metrics plus mean fit wall-clock seconds."""

    evaluation: QueryEvaluation
    fit_seconds: float


def _evaluation_run_task(seed, shared):
    """Worker body: one independent fit + evaluation of the method.

    Returns plain floats only, so the process backend ships results
    cheaply; the fitted model itself never leaves the worker.
    """
    method, dataset, workload, epsilon, actual, sanity_bound = shared
    start = time.perf_counter()
    source = method.fit(dataset, epsilon, rng=np.random.default_rng(seed))
    elapsed = time.perf_counter() - start
    evaluation = evaluate_workload(source, workload, actual, sanity_bound)
    return (
        evaluation.mean_relative_error,
        evaluation.median_relative_error,
        evaluation.mean_absolute_error,
        evaluation.max_relative_error,
        elapsed,
    )


def average_evaluation(
    method: Method,
    dataset: Dataset,
    workload: Sequence[RangeQuery],
    epsilon: float,
    n_runs: int = 2,
    sanity_bound: float = 1.0,
    rng: RngLike = None,
    context: Union[ExecutionContext, str, None] = None,
) -> TimedEvaluation:
    """Fit ``method`` ``n_runs`` times, evaluate, average the metrics.

    The runs are statistically independent by construction — each gets
    its own child generator spawned up front from ``rng`` — so they fan
    out over ``context`` (default serial) with identical results on
    every backend.  Note ``fit_seconds`` stays the mean *per-fit*
    wall-clock, which under a pooled backend exceeds elapsed time.
    """
    gen = as_generator(rng)
    actual = true_answers(dataset, workload)
    seeds = spawn_seed_sequences(gen, n_runs)
    shared = (method, dataset, list(workload), epsilon, actual, sanity_bound)
    runs = resolve_context(context).map_tasks(
        _evaluation_run_task, seeds, shared=shared
    )
    relative, medians, absolute, maxima, seconds = map(list, zip(*runs))
    averaged = QueryEvaluation(
        mean_relative_error=float(np.mean(relative)),
        median_relative_error=float(np.mean(medians)),
        mean_absolute_error=float(np.mean(absolute)),
        max_relative_error=float(np.mean(maxima)),
        n_queries=len(workload),
    )
    return TimedEvaluation(evaluation=averaged, fit_seconds=float(np.mean(seconds)))
