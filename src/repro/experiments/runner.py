"""Method wrappers and the evaluation loop shared by all figures.

A :class:`Method` turns (dataset, ε, rng) into something that answers
range queries — a synthetic dataset for the DPCopula variants, a noisy
structure for the histogram baselines.  :func:`average_evaluation`
repeats fit + evaluate over independent runs and averages the error
metrics, matching the paper's "1000 random queries, averaged over 5
runs" protocol at configurable scale.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.dpcopula import DPCopulaKendall, DPCopulaMLE
from repro.core.hybrid import DPCopulaHybrid
from repro.data.dataset import Dataset
from repro.histograms.base import HistogramPublisher, RangeQueryAnswerer
from repro.histograms.dpcube import DPCubePublisher
from repro.histograms.efpa import EFPAPublisher
from repro.histograms.fp import FilterPriorityPublisher
from repro.histograms.grid import AdaptiveGridPublisher, UniformGridPublisher
from repro.histograms.hierarchical import HierarchicalPublisher
from repro.histograms.identity import IdentityPublisher
from repro.histograms.php import PHPPublisher
from repro.histograms.privelet import PriveletPublisher
from repro.histograms.psd import PSDPublisher
from repro.histograms.structurefirst import NoiseFirstPublisher, StructureFirstPublisher
from repro.parallel import ExecutionContext, resolve_context, spawn_seed_sequences
from repro.queries.evaluation import QueryEvaluation, evaluate_workload, true_answers
from repro.queries.ml_utility import MLUtilityReport, ml_utility
from repro.queries.range_query import RangeQuery
from repro.queries.workloads import (
    KWayMarginal,
    MarginalEvaluation,
    evaluate_marginals,
)
from repro.utils import RngLike, as_generator

# Dense-grid methods refuse domains beyond this many cells — the same
# constraint that forces the paper to drop histogram-input baselines on
# high-dimensional domains.
MAX_DENSE_CELLS = 2**24


def dense_counts(dataset: Dataset, max_cells: int = MAX_DENSE_CELLS) -> np.ndarray:
    """Materialize the full m-dimensional count grid of a dataset."""
    shape = tuple(dataset.schema.domain_sizes)
    cells = float(np.prod([float(s) for s in shape]))
    if cells > max_cells:
        raise MemoryError(
            f"domain space of {cells:.3g} cells exceeds the dense limit "
            f"({max_cells}); use a point-input method (PSD, FP, DPCopula)"
        )
    counts = np.zeros(shape)
    np.add.at(counts, tuple(dataset.values[:, j] for j in range(dataset.dimensions)), 1.0)
    return counts


class Method(abc.ABC):
    """A named competitor: fits private state, answers range queries."""

    name: str = "method"

    @abc.abstractmethod
    def fit(self, dataset: Dataset, epsilon: float, rng: RngLike = None):
        """Return an answer source (Dataset or RangeQueryAnswerer)."""

    def supports(self, dataset: Dataset) -> bool:
        """Whether the method can run on this dataset's domain."""
        return True


_MARGIN_PUBLISHERS = {
    "efpa": EFPAPublisher,
    "identity": IdentityPublisher,
    "noisefirst": NoiseFirstPublisher,
    "structurefirst": StructureFirstPublisher,
    "privelet": PriveletPublisher,
    "hierarchical": HierarchicalPublisher,
}


def margin_publisher_by_name(name: str) -> HistogramPublisher:
    """Instantiate a 1-D margin publisher from its registry name."""
    try:
        return _MARGIN_PUBLISHERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown margin publisher {name!r}; available: "
            f"{sorted(_MARGIN_PUBLISHERS)}"
        ) from None


class DPCopulaMethod(Method):
    """DPCopula in any of its three variants.

    The experiment harness defaults DPCopula's margins to NoiseFirst
    rather than the library's EFPA default: the paper's protocol sets
    "all parameters in the algorithms ... to the optimal values in each
    experiment" (Section 5.1), and across our workloads the merging-based
    publisher is uniformly at least as accurate as our DCT-based EFPA
    variant (which smears spiky margins; see the margin ablation bench).
    """

    def __init__(
        self,
        variant: str = "kendall",
        k: float = 8.0,
        margin_publisher: Union[str, HistogramPublisher, None] = "noisefirst",
        **kwargs,
    ):
        if variant not in ("kendall", "mle", "hybrid"):
            raise ValueError(f"unknown DPCopula variant {variant!r}")
        self.variant = variant
        self.k = k
        if isinstance(margin_publisher, str):
            margin_publisher = margin_publisher_by_name(margin_publisher)
        self.margin_publisher = margin_publisher
        self.kwargs = kwargs
        self.name = f"dpcopula-{variant}"

    def fit(self, dataset: Dataset, epsilon: float, rng: RngLike = None) -> Dataset:
        if self.variant == "hybrid":
            synthesizer = DPCopulaHybrid(
                epsilon,
                k=self.k,
                margin_publisher=self.margin_publisher,
                rng=rng,
                **self.kwargs,
            )
            return synthesizer.fit_sample(dataset)
        cls = DPCopulaKendall if self.variant == "kendall" else DPCopulaMLE
        synthesizer = cls(
            epsilon,
            k=self.k,
            margin_publisher=self.margin_publisher,
            rng=rng,
            **self.kwargs,
        )
        return synthesizer.fit_sample(dataset)


class PSDMethod(Method):
    """Private spatial decomposition (point input: any domain size)."""

    name = "psd"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return PSDPublisher(**self.kwargs).publish(dataset, epsilon, rng)


class FPMethod(Method):
    """Filter Priority sparse summaries (point input)."""

    name = "fp"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return FilterPriorityPublisher(**self.kwargs).publish(dataset, epsilon, rng)


class _DenseMethod(Method):
    """Base for methods consuming the materialized count grid."""

    publisher_class = None
    # Non-negativity clipping is standard (privacy-free) post-processing
    # for cell-wise estimates, but methods whose range-query accuracy
    # relies on *signed noise cancellation* (the wavelet transform) are
    # biased catastrophically by it, so they opt out.
    clip_negative = True

    def __init__(self, max_cells: int = MAX_DENSE_CELLS, **kwargs):
        self.max_cells = max_cells
        self.kwargs = kwargs

    def supports(self, dataset: Dataset) -> bool:
        return dataset.schema.domain_space() <= self.max_cells

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        counts = dense_counts(dataset, self.max_cells)
        publisher = self.publisher_class(**self.kwargs)
        return publisher.publish_dense(
            counts, epsilon, rng, clip_negative=self.clip_negative
        )


class PriveletMethod(_DenseMethod):
    """Privelet+ (wavelet noise on the dense grid).

    Unclipped: range sums over the wavelet reconstruction are unbiased
    with polylogarithmic variance precisely because positive and
    negative per-cell noise cancels; clipping would turn that into a
    volume-proportional positive bias.
    """

    name = "privelet"
    publisher_class = PriveletPublisher
    clip_negative = False


class PHPMethod(_DenseMethod):
    """P-HP hierarchical partitioning on the (flattened) dense grid."""

    name = "php"
    publisher_class = PHPPublisher


class IdentityMethod(_DenseMethod):
    """Dwork's Laplace-per-bin mechanism on the dense grid."""

    name = "identity"
    publisher_class = IdentityPublisher


class DPCubeMethod(_DenseMethod):
    """DPCube two-phase kd-partitioning on the dense grid."""

    name = "dpcube"
    publisher_class = DPCubePublisher


class UGMethod(Method):
    """Uniform grid (Qardaji et al.) — 2-D point input."""

    name = "ug"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def supports(self, dataset: Dataset) -> bool:
        return dataset.dimensions == 2

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return UniformGridPublisher(**self.kwargs).publish(dataset, epsilon, rng)


class AGMethod(Method):
    """Adaptive grid (Qardaji et al.) — 2-D point input."""

    name = "ag"

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def supports(self, dataset: Dataset) -> bool:
        return dataset.dimensions == 2

    def fit(
        self, dataset: Dataset, epsilon: float, rng: RngLike = None
    ) -> RangeQueryAnswerer:
        return AdaptiveGridPublisher(**self.kwargs).publish(dataset, epsilon, rng)


_METHODS = {
    "dpcopula-kendall": lambda **kw: DPCopulaMethod("kendall", **kw),
    "dpcopula-mle": lambda **kw: DPCopulaMethod("mle", **kw),
    "dpcopula-hybrid": lambda **kw: DPCopulaMethod("hybrid", **kw),
    "psd": PSDMethod,
    "fp": FPMethod,
    "privelet": PriveletMethod,
    "php": PHPMethod,
    "identity": IdentityMethod,
    "dpcube": DPCubeMethod,
    "ug": UGMethod,
    "ag": AGMethod,
}


def make_method(name: str, **kwargs) -> Method:
    """Instantiate a method by its registry name."""
    try:
        factory = _METHODS[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {sorted(_METHODS)}"
        ) from None
    return factory(**kwargs)


def _sample_dense_histogram(
    histogram, schema, n_records: int, rng: np.random.Generator
) -> Dataset:
    """Draw records from a dense noisy grid's clipped, normalized cells."""
    counts = np.clip(np.asarray(histogram.counts, dtype=float), 0.0, None).ravel()
    total = counts.sum()
    if total <= 0:
        probabilities = np.full(counts.size, 1.0 / counts.size)
    else:
        probabilities = counts / total
    flat = rng.choice(counts.size, size=n_records, p=probabilities)
    values = np.column_stack(np.unravel_index(flat, histogram.shape))
    return Dataset(values, schema)


def _sample_from_answerer(
    answerer: RangeQueryAnswerer,
    schema,
    n_records: int,
    rng: np.random.Generator,
) -> Dataset:
    """Draw records from any range-query answerer by recursive bisection.

    Starting from the full domain, the widest axis is split at its
    midpoint, the two halves are queried, and the records are allocated
    binomially in proportion to the (clipped) noisy counts — the same
    multinomial-by-splitting trick hierarchical samplers use.  When both
    halves answer ≤ 0 the split falls back to cell volume, so the
    sampler degrades toward uniform rather than failing on regions the
    structure zeroed out.
    """
    m = schema.dimensions
    values = np.empty((n_records, m), dtype=np.int64)

    def recurse(ranges, n, offset):
        if n == 0:
            return
        widths = [hi - lo + 1 for lo, hi in ranges]
        axis = int(np.argmax(widths))
        if widths[axis] == 1:
            values[offset : offset + n] = [lo for lo, _ in ranges]
            return
        lo, hi = ranges[axis]
        mid = lo + widths[axis] // 2
        left = list(ranges)
        left[axis] = (lo, mid - 1)
        right = list(ranges)
        right[axis] = (mid, hi)
        count_left = max(float(answerer.range_count(left)), 0.0)
        count_right = max(float(answerer.range_count(right)), 0.0)
        if count_left + count_right <= 0.0:
            # Volume fallback: the structure thinks this region is empty.
            count_left = float(mid - lo)
            count_right = float(hi - mid + 1)
        n_left = int(rng.binomial(n, count_left / (count_left + count_right)))
        recurse(left, n_left, offset)
        recurse(right, n - n_left, offset + n_left)

    full = [(0, attribute.domain_size - 1) for attribute in schema]
    recurse(full, n_records, 0)
    return Dataset(values, schema)


def source_as_dataset(
    source,
    schema,
    n_records: int,
    rng: RngLike = None,
) -> Dataset:
    """Materialize any answer source as synthetic records.

    DPCopula variants already release records, so a ``Dataset`` passes
    through untouched.  Histogram baselines release structures; to put
    them on the ML train-on-synthetic workload, a dense grid is sampled
    cell-wise and a generic answerer is sampled by recursive bisection
    (:func:`_sample_from_answerer`).  Sampling is privacy-free
    post-processing of the released structure.
    """
    if isinstance(source, Dataset):
        return source
    gen = as_generator(rng)
    if hasattr(source, "counts") and hasattr(source, "shape"):
        return _sample_dense_histogram(source, schema, n_records, gen)
    if isinstance(source, RangeQueryAnswerer):
        return _sample_from_answerer(source, schema, n_records, gen)
    raise TypeError(
        f"cannot materialize {type(source).__name__} as a dataset; expected "
        "a Dataset, a dense histogram, or a RangeQueryAnswerer"
    )


@dataclass(frozen=True)
class UtilityEvaluation:
    """One method's scores on all three workload families.

    ``ml`` is ``None`` when the schema designates no target (the ML
    workload needs a label to predict).
    """

    method: str
    range_queries: QueryEvaluation
    marginals: MarginalEvaluation
    ml: Optional[MLUtilityReport]
    fit_seconds: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "fit_seconds": self.fit_seconds,
            "range_queries": {
                "mean_relative_error": self.range_queries.mean_relative_error,
                "median_relative_error": self.range_queries.median_relative_error,
                "mean_absolute_error": self.range_queries.mean_absolute_error,
                "max_relative_error": self.range_queries.max_relative_error,
                "n_queries": self.range_queries.n_queries,
            },
            "marginals": self.marginals.to_dict(),
            "ml": self.ml.to_dict() if self.ml is not None else None,
        }


def utility_evaluation(
    method: Method,
    train: Dataset,
    test: Dataset,
    range_workload: Sequence[RangeQuery],
    marginals: Sequence[KWayMarginal],
    epsilon: float,
    rng: RngLike = None,
    sanity_bound: float = 1.0,
    synthetic_records: Optional[int] = None,
) -> UtilityEvaluation:
    """Fit once, score on range queries, k-way marginals and ML utility.

    The method fits on ``train`` only; ``test`` is the held-out real
    data the ML workload tests on (range and marginal workloads compare
    against ``train``, the data the method actually saw).  The ML leg
    materializes the fitted source as ``synthetic_records`` records
    (default: ``train.n_records``) via :func:`source_as_dataset`.
    """
    gen = as_generator(rng)
    start = time.perf_counter()
    source = method.fit(train, epsilon, rng=gen)
    fit_seconds = time.perf_counter() - start
    range_scores = evaluate_workload(source, range_workload, train, sanity_bound)
    marginal_scores = evaluate_marginals(source, marginals, train)
    ml_report = None
    if train.schema.target is not None:
        synthetic = source_as_dataset(
            source,
            train.schema,
            synthetic_records or train.n_records,
            rng=gen,
        )
        # The materialized schema may lack the target annotation
        # (synthesizers rebuild schemas); re-attach the convention.
        if synthetic.schema.target is None:
            synthetic = Dataset(
                synthetic.values, synthetic.schema.with_target(train.schema.target)
            )
        ml_report = ml_utility(train, test, synthetic, target=train.schema.target)
    return UtilityEvaluation(
        method=method.name,
        range_queries=range_scores,
        marginals=marginal_scores,
        ml=ml_report,
        fit_seconds=fit_seconds,
    )


@dataclass(frozen=True)
class TimedEvaluation:
    """Averaged error metrics plus mean fit wall-clock seconds."""

    evaluation: QueryEvaluation
    fit_seconds: float


def _evaluation_run_task(seed, shared):
    """Worker body: one independent fit + evaluation of the method.

    Returns plain floats only, so the process backend ships results
    cheaply; the fitted model itself never leaves the worker.
    """
    method, dataset, workload, epsilon, actual, sanity_bound = shared
    start = time.perf_counter()
    source = method.fit(dataset, epsilon, rng=np.random.default_rng(seed))
    elapsed = time.perf_counter() - start
    evaluation = evaluate_workload(source, workload, actual, sanity_bound)
    return (
        evaluation.mean_relative_error,
        evaluation.median_relative_error,
        evaluation.mean_absolute_error,
        evaluation.max_relative_error,
        elapsed,
    )


def average_evaluation(
    method: Method,
    dataset: Dataset,
    workload: Sequence[RangeQuery],
    epsilon: float,
    n_runs: int = 2,
    sanity_bound: float = 1.0,
    rng: RngLike = None,
    context: Union[ExecutionContext, str, None] = None,
) -> TimedEvaluation:
    """Fit ``method`` ``n_runs`` times, evaluate, average the metrics.

    The runs are statistically independent by construction — each gets
    its own child generator spawned up front from ``rng`` — so they fan
    out over ``context`` (default serial) with identical results on
    every backend.  Note ``fit_seconds`` stays the mean *per-fit*
    wall-clock, which under a pooled backend exceeds elapsed time.
    """
    gen = as_generator(rng)
    actual = true_answers(dataset, workload)
    seeds = spawn_seed_sequences(gen, n_runs)
    shared = (method, dataset, list(workload), epsilon, actual, sanity_bound)
    runs = resolve_context(context).map_tasks(
        _evaluation_run_task, seeds, shared=shared
    )
    relative, medians, absolute, maxima, seconds = map(list, zip(*runs))
    averaged = QueryEvaluation(
        mean_relative_error=float(np.mean(relative)),
        median_relative_error=float(np.mean(medians)),
        mean_absolute_error=float(np.mean(absolute)),
        max_relative_error=float(np.mean(maxima)),
        n_queries=len(workload),
    )
    return TimedEvaluation(evaluation=averaged, fit_seconds=float(np.mean(seconds)))
