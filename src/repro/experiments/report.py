"""Report generation: figure results to Markdown / CSV.

Turns :class:`~repro.experiments.figures.FigureResult` objects into the
artifacts a reproduction hand-off needs: Markdown tables (the format
EXPERIMENTS.md uses) and CSV files for downstream plotting.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.experiments.figures import FigureResult

PathLike = Union[str, Path]


def figure_to_markdown(result: FigureResult) -> str:
    """One Markdown section per figure, one table per metric."""
    lines: List[str] = [f"### {result.figure_id} — {result.title}", ""]
    if result.parameters:
        rendered = ", ".join(f"{k}={v}" for k, v in result.parameters.items())
        lines.append(f"*Parameters:* {rendered}")
        lines.append("")
    for metric in result.metrics():
        methods = [m for m in result.methods() if result.series(m, metric)]
        xs: List = []
        for method in methods:
            for x, _ in result.series(method, metric):
                if x not in xs:
                    xs.append(x)
        lines.append(f"**{metric}**")
        lines.append("")
        lines.append("| x | " + " | ".join(methods) + " |")
        lines.append("|---" * (len(methods) + 1) + "|")
        for x in xs:
            row = [str(x)]
            for method in methods:
                values = dict(result.series(method, metric))
                value = values.get(x)
                row.append(f"{value:.4g}" if value is not None else "—")
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    return "\n".join(lines)


def figures_to_markdown(
    results: Iterable[FigureResult],
    title: str = "Measured results",
) -> str:
    """A full Markdown report from several figures."""
    sections = [f"## {title}", ""]
    for result in results:
        sections.append(figure_to_markdown(result))
    return "\n".join(sections)


def figure_to_csv(result: FigureResult) -> str:
    """Long-format CSV: figure_id, metric, method, x, value."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["figure_id", "metric", "method", "x", "value"])
    for point in result.points:
        writer.writerow(
            [result.figure_id, point.metric, point.method, point.x, point.value]
        )
    return buffer.getvalue()


def write_report(
    results: Sequence[FigureResult],
    markdown_path: PathLike,
    csv_dir: PathLike = None,
    title: str = "Measured results",
) -> None:
    """Write the Markdown report and (optionally) one CSV per figure."""
    Path(markdown_path).write_text(figures_to_markdown(results, title=title))
    if csv_dir is not None:
        directory = Path(csv_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for result in results:
            (directory / f"{result.figure_id}.csv").write_text(
                figure_to_csv(result)
            )
