"""Fleet observatory: ε burn-down timelines and continuous utility probes.

Two operator questions the raw metrics cannot answer:

* **How fast is each dataset burning its ε budget?**
  :func:`budget_timelines` replays privacy-ledger entries (already read
  and deduplicated by the accountant's pure-read replay — no lock
  traffic on the append path) into per-dataset burn-down timelines:
  cumulative spend after every charge/refund plus remaining headroom
  under the lifetime cap.  Served by ``GET /budget`` and rendered by
  ``dpcopula budget``.

* **How good is the data each served model generation produces?**
  :class:`UtilityProbe` periodically draws a small *deterministic*
  sample from every served model's compiled plan and compares it
  against the model's own fitted DP statistics — the released noisy
  margins and the repaired correlation.  The raw data is never touched,
  so probing consumes **zero additional ε** (sampling a released model
  is post-processing; the accountant ledger is byte-identical across a
  probe cycle, asserted by tests).  Per-column total-variation distance,
  pairwise Kendall-τ error (via the Gaussian-copula relation
  ``τ = (2/π)·asin(ρ)``), and a copula-misfit statistic (reusing the
  goodness-of-fit machinery) are published as gauges labelled by model
  and generation.  When a hot-swap changes a model's generation, the
  probe compares the released statistics across generations and emits a
  structured **drift event** if any shift exceeds the configured
  threshold.

The probe runs on the fit-owner worker only (one prober per fleet); its
latest results are persisted to ``<data-dir>/observatory/probes.json``
and drift events are appended to ``observatory/drift.jsonl`` so *any*
worker can serve them from ``GET /debug/observatory``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.queries.workloads import (
    coarse_edges,
    gaussian_copula_pair_probabilities,
)
from repro.stats.ecdf import HistogramCDF
from repro.stats.goodness_of_fit import copula_probe_statistic
from repro.stats.kendall import kendall_tau_matrix
from repro.telemetry.logs import get_logger
from repro.telemetry.metrics import REGISTRY

__all__ = [
    "UtilityProbe",
    "budget_timelines",
    "load_probe_document",
    "read_drift_events",
]

_logger = get_logger("telemetry.observatory")

_PROBE_MARGIN_TVD = REGISTRY.gauge(
    "dpcopula_probe_margin_tvd",
    "Per-column TVD between a deterministic probe sample and the model's "
    "released DP margin (labels: model, generation, attribute)",
)
_PROBE_MARGIN_TVD_MAX = REGISTRY.gauge(
    "dpcopula_probe_margin_tvd_max",
    "Worst per-column probe TVD per model (labels: model, generation)",
)
_PROBE_KWAY_TVD_MAX = REGISTRY.gauge(
    "dpcopula_probe_kway_tvd_max",
    "Worst two-way marginal TVD between the probe sample and the "
    "copula-implied pair distribution, over the strongest-|ρ| pairs "
    "(labels: model, generation)",
)
_PROBE_TAU_ERROR = REGISTRY.gauge(
    "dpcopula_probe_tau_error",
    "Max pairwise |empirical τ − (2/π)·asin(ρ_DP)| of the probe sample "
    "(labels: model, generation)",
)
_PROBE_COPULA_MISFIT = REGISTRY.gauge(
    "dpcopula_probe_copula_misfit",
    "Copula goodness-of-fit statistic of the probe sample against the "
    "model's released correlation (labels: model, generation)",
)
_PROBE_RUNS = REGISTRY.counter(
    "dpcopula_probe_runs_total", "Completed utility-probe cycles"
)
_PROBE_FAILURES = REGISTRY.counter(
    "dpcopula_probe_failures_total",
    "Models a probe cycle failed to evaluate (label: model)",
)
_PROBE_SECONDS = REGISTRY.histogram(
    "dpcopula_probe_seconds", "Wall-clock seconds per utility-probe cycle"
)
_PROBE_DRIFT_EVENTS = REGISTRY.counter(
    "dpcopula_probe_drift_events_total",
    "Generation-to-generation drift events above threshold "
    "(labels: model, metric)",
)

#: Drift-event log is bounded: when it exceeds this, it rotates once.
_DRIFT_LOG_MAX_BYTES = 1024 * 1024

#: The k-way gauge scores at most this many attribute pairs per model,
#: ranked by |ρ| — the strongest dependencies are where sampler bugs
#: (wrong Cholesky, stale plan) show up first.
_PROBE_MAX_PAIRS = 6

#: Bucket bound for the probe's two-way marginal tables.
_PROBE_KWAY_BINS = 8


# ---------------------------------------------------------------------------
# Privacy-budget timelines
# ---------------------------------------------------------------------------


def budget_timelines(
    entries: Iterable[Dict[str, Any]],
    epsilon_cap: float,
    datasets: Iterable[str] = (),
) -> Dict[str, Any]:
    """Fold replayed ledger entries into per-dataset ε burn-down timelines.

    ``entries`` is the accountant's pure-read replay (append order,
    idempotency-deduplicated).  ``datasets`` adds known dataset ids so a
    dataset with no charges yet still shows full headroom.  Refunds are
    clipped at zero exactly like the accountant's in-memory replay.
    """
    epsilon_cap = float(epsilon_cap)
    per_dataset: Dict[str, List[Dict[str, Any]]] = {}
    for dataset_id in datasets:
        per_dataset.setdefault(str(dataset_id), [])
    for entry in entries:
        per_dataset.setdefault(str(entry["dataset"]), []).append(entry)

    timelines = []
    for dataset_id in sorted(per_dataset):
        spent = 0.0
        events = []
        for entry in per_dataset[dataset_id]:
            epsilon = float(entry["epsilon"])
            kind = str(entry.get("kind", "charge"))
            if kind == "refund":
                spent = max(0.0, spent - epsilon)
            else:
                spent += epsilon
            events.append(
                {
                    "timestamp": entry.get("timestamp"),
                    "epsilon": epsilon,
                    "label": entry.get("label", ""),
                    "kind": kind,
                    "spent_after": spent,
                    "remaining_after": max(0.0, epsilon_cap - spent),
                }
            )
        timelines.append(
            {
                "dataset_id": dataset_id,
                "epsilon_cap": epsilon_cap,
                "epsilon_spent": spent,
                "epsilon_remaining": max(0.0, epsilon_cap - spent),
                "utilization": (spent / epsilon_cap) if epsilon_cap > 0 else 1.0,
                "events": events,
            }
        )
    return {"epsilon_cap": epsilon_cap, "datasets": timelines}


# ---------------------------------------------------------------------------
# Observatory file helpers
# ---------------------------------------------------------------------------


def _atomic_write_json(path: Path, document: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.dumps(document, sort_keys=True, indent=2) + "\n").encode()
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_probe_document(observatory_dir) -> Optional[Dict[str, Any]]:
    """The latest persisted probe results, or ``None`` before the first run."""
    path = Path(observatory_dir) / "probes.json"
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def read_drift_events(observatory_dir, limit: int = 50) -> List[Dict[str, Any]]:
    """The most recent drift events (newest last), tolerant of a torn tail."""
    path = Path(observatory_dir) / "drift.jsonl"
    events: List[Dict[str, Any]] = []
    for candidate in (path.with_name(path.name + ".1"), path):
        try:
            text = candidate.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
    return events[-int(limit):]


# ---------------------------------------------------------------------------
# Continuous utility probes
# ---------------------------------------------------------------------------


def probe_seed(model_id: str, generation: int) -> int:
    """A stable 64-bit seed for one (model, generation) probe stream."""
    digest = hashlib.blake2s(f"{model_id}:{int(generation)}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class UtilityProbe:
    """Continuously scores served models against their own DP statistics.

    ``registry`` is duck-typed to the model registry: ``list()`` returning
    records with ``model_id``/``generation``, plus ``get(model_id)`` and
    ``get_plan(model_id)``.  Each cycle draws a deterministic sample from
    every served model's plan (seeded by ``blake2s(model_id:generation)``
    so repeated probes of the same generation are bitwise identical and
    never perturb any serving RNG stream) and publishes utility gauges.
    The raw dataset is never read: zero additional ε.
    """

    def __init__(
        self,
        registry,
        observatory_dir,
        *,
        worker_label: str = "main",
        sample_size: int = 512,
        drift_threshold: float = 0.05,
        interval: float = 0.0,
        max_models: int = 8,
    ):
        if sample_size < 8:
            raise ValueError(f"probe sample_size too small: {sample_size}")
        self.registry = registry
        self.observatory_dir = Path(observatory_dir)
        self.worker_label = str(worker_label)
        self.sample_size = int(sample_size)
        self.drift_threshold = float(drift_threshold)
        self.interval = float(interval)
        self.max_models = int(max_models)
        self._baselines: Dict[str, Dict[str, Any]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.cycles = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "UtilityProbe":
        """Begin the background loop (no-op when the interval is 0)."""
        if self.interval <= 0 or self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="dpcopula-utility-probe", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - the loop must survive
                _logger.exception("utility probe cycle failed")

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # -- one probe cycle -----------------------------------------------

    def run_once(self) -> Dict[str, Any]:
        """Probe every served model once; persist and return the document."""
        started = time.perf_counter()
        records = list(self.registry.list())
        probed_records = records[: self.max_models]
        if len(records) > len(probed_records):
            _logger.warning(
                "probe cycle capped",
                extra={
                    "models_total": len(records),
                    "models_probed": len(probed_records),
                },
            )
        models: List[Dict[str, Any]] = []
        drift_events: List[Dict[str, Any]] = []
        # These gauges are owned exclusively by the probe: clearing them
        # each cycle drops series for deleted models and superseded
        # generations instead of reporting them forever.
        for gauge in (
            _PROBE_MARGIN_TVD,
            _PROBE_MARGIN_TVD_MAX,
            _PROBE_KWAY_TVD_MAX,
            _PROBE_TAU_ERROR,
            _PROBE_COPULA_MISFIT,
        ):
            gauge.clear()
        for record in probed_records:
            try:
                result, stats = self._probe_model(record)
            except Exception:  # noqa: BLE001 - one bad model, not the cycle
                _PROBE_FAILURES.inc(model=record.model_id)
                _logger.exception(
                    "model probe failed", extra={"model_id": record.model_id}
                )
                continue
            self._publish(result)
            drift_events.extend(self._check_drift(record, stats, result))
            models.append(result)
        elapsed = time.perf_counter() - started
        document = {
            "written_at": time.time(),
            "worker": self.worker_label,
            "interval_seconds": self.interval,
            "sample_size": self.sample_size,
            "drift_threshold": self.drift_threshold,
            "models_total": len(records),
            "models_probed": len(models),
            "probe_seconds": elapsed,
            "models": models,
        }
        try:
            _atomic_write_json(self.observatory_dir / "probes.json", document)
            if drift_events:
                self._append_drift(drift_events)
        except OSError:
            _logger.exception("failed to persist probe results")
        _PROBE_RUNS.inc()
        _PROBE_SECONDS.observe(elapsed)
        self.cycles += 1
        return document

    def _probe_model(self, record):
        """Score one model; returns (JSON-ready result, raw DP statistics)."""
        model = self.registry.get(record.model_id)
        plan = self.registry.get_plan(record.model_id)
        generation = int(record.generation)
        seed = probe_seed(record.model_id, generation)
        sample = plan.sample(self.sample_size, np.random.default_rng(seed))
        values = sample.values
        n = values.shape[0]
        m = values.shape[1]

        margins = [HistogramCDF(counts) for counts in model.margin_counts]
        names = [attribute.name for attribute in model.schema]
        margin_tvd: Dict[str, float] = {}
        for j, cdf in enumerate(margins):
            empirical = np.bincount(values[:, j], minlength=cdf.domain_size) / n
            margin_tvd[names[j]] = 0.5 * float(np.abs(empirical - cdf.pmf).sum())

        # The repaired PSD correlation the sampler actually uses — the
        # Cholesky factor reassembled, not the raw noisy estimate.
        cholesky = np.asarray(plan.cholesky)
        correlation = cholesky @ cholesky.T
        tau_error = 0.0
        if m >= 2:
            tau_empirical = kendall_tau_matrix(values)
            tau_expected = (2.0 / np.pi) * np.arcsin(
                np.clip(correlation, -1.0, 1.0)
            )
            off_diagonal = ~np.eye(m, dtype=bool)
            tau_error = float(
                np.abs(tau_empirical - tau_expected)[off_diagonal].max()
            )

        # k-way gauge: the sample's two-way marginals versus the pair
        # distributions the released copula *implies* (margins + Φ₂ at
        # the repaired ρ).  Both sides derive from released statistics
        # only, so this stays zero-ε; a healthy sampler sits at the
        # sampling-noise floor, a wrong Cholesky or stale plan does not.
        kway_tvd_max = 0.0
        if m >= 2:
            off = np.abs(np.triu(correlation, 1))
            order = np.dstack(np.unravel_index(np.argsort(-off, axis=None), off.shape))[0]
            pairs = [(int(i), int(j)) for i, j in order if j > i][:_PROBE_MAX_PAIRS]
            for i, j in pairs:
                edges_i = np.asarray(
                    coarse_edges(margins[i].domain_size, _PROBE_KWAY_BINS)
                )
                edges_j = np.asarray(
                    coarse_edges(margins[j].domain_size, _PROBE_KWAY_BINS)
                )
                empirical, _, _ = np.histogram2d(
                    values[:, i].astype(float),
                    values[:, j].astype(float),
                    bins=[edges_i.astype(float), edges_j.astype(float)],
                )
                implied = gaussian_copula_pair_probabilities(
                    margins[i].pmf,
                    margins[j].pmf,
                    float(correlation[i, j]),
                    edges_i,
                    edges_j,
                )
                tvd = 0.5 * float(np.abs(empirical / n - implied).sum())
                kway_tvd_max = max(kway_tvd_max, tvd)

        # Copula misfit: push the sample through the model's own margin
        # CDFs (midpoint PIT) and score uniformity + dependence fit of
        # the resulting pseudo-copula against the released correlation.
        pseudo = np.column_stack([cdf(values[:, j]) for j, cdf in enumerate(margins)])
        misfit = float(copula_probe_statistic(pseudo, correlation))

        result = {
            "model_id": record.model_id,
            "generation": generation,
            "seed": seed,
            "sample_size": n,
            "margin_tvd": margin_tvd,
            "margin_tvd_max": max(margin_tvd.values()) if margin_tvd else 0.0,
            "kway_tvd_max": kway_tvd_max,
            "tau_error": tau_error,
            "copula_misfit": misfit,
        }
        stats = {
            "pmfs": [cdf.pmf for cdf in margins],
            "correlation": correlation,
        }
        return result, stats

    def _publish(self, result: Dict[str, Any]) -> None:
        model_id = result["model_id"]
        generation = str(result["generation"])
        for attribute, tvd in result["margin_tvd"].items():
            _PROBE_MARGIN_TVD.set(
                tvd, model=model_id, generation=generation, attribute=attribute
            )
        _PROBE_MARGIN_TVD_MAX.set(
            result["margin_tvd_max"], model=model_id, generation=generation
        )
        _PROBE_KWAY_TVD_MAX.set(
            result["kway_tvd_max"], model=model_id, generation=generation
        )
        _PROBE_TAU_ERROR.set(
            result["tau_error"], model=model_id, generation=generation
        )
        _PROBE_COPULA_MISFIT.set(
            result["copula_misfit"], model=model_id, generation=generation
        )

    # -- drift ---------------------------------------------------------

    def _check_drift(self, record, stats, result) -> List[Dict[str, Any]]:
        """Compare released DP statistics across a generation change."""
        model_id = record.model_id
        generation = int(record.generation)
        baseline = self._baselines.get(model_id)
        self._baselines[model_id] = {"generation": generation, **stats}
        if baseline is None or baseline["generation"] == generation:
            return []

        shifts: Dict[str, float] = {}
        old_pmfs, new_pmfs = baseline["pmfs"], stats["pmfs"]
        if len(old_pmfs) != len(new_pmfs) or any(
            old.shape != new.shape for old, new in zip(old_pmfs, new_pmfs)
        ):
            shifts["margin_shift"] = 1.0
            shifts["dependence_shift"] = 1.0
        else:
            shifts["margin_shift"] = max(
                0.5 * float(np.abs(new - old).sum())
                for old, new in zip(old_pmfs, new_pmfs)
            )
            delta = np.abs(stats["correlation"] - baseline["correlation"])
            off = ~np.eye(delta.shape[0], dtype=bool)
            shifts["dependence_shift"] = (
                float(delta[off].max()) if off.any() else 0.0
            )

        events = []
        for metric, shift in sorted(shifts.items()):
            if shift <= self.drift_threshold:
                continue
            event = {
                "ts": time.time(),
                "model_id": model_id,
                "from_generation": baseline["generation"],
                "to_generation": generation,
                "metric": metric,
                "value": shift,
                "threshold": self.drift_threshold,
                "worker": self.worker_label,
            }
            events.append(event)
            _PROBE_DRIFT_EVENTS.inc(model=model_id, metric=metric)
            _logger.warning("model drift detected", extra=event)
        return events

    def _append_drift(self, events: List[Dict[str, Any]]) -> None:
        path = self.observatory_dir / "drift.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            if path.stat().st_size > _DRIFT_LOG_MAX_BYTES:
                os.replace(path, path.with_name(path.name + ".1"))
        except OSError:
            pass
        with open(path, "a", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
