"""Structured JSON logging with contextvars-propagated correlation ids.

Every log line the library emits is one JSON object on one line —
machine-parseable by anything that reads NDJSON, greppable by a human.
The schema is deliberately small and stable (tests pin it):

``ts``
    Unix epoch seconds (float) of the record.
``level``
    Lowercase level name (``debug`` … ``critical``).
``logger``
    Dotted logger name under the ``dpcopula`` namespace.
``event``
    The formatted log message.
``request_id`` / ``job_id``
    Correlation ids, present only when bound via :func:`bind_context`
    (the HTTP layer binds a request id per request, the fit worker binds
    a job id per job).  They ride on :mod:`contextvars`, so they follow
    the request through nested calls without threading arguments.
``exc``
    Full traceback text, present only when the record carries exception
    info (``logger.exception(...)``).

Any extra keyword passed via ``logger.info("event", extra={...})``
lands as an additional top-level key (sorted, after the core keys).

Logging is **off by default**: the ``dpcopula`` namespace gets a
``NullHandler`` so importing the library never writes to a user's
stderr.  It turns on either programmatically
(:func:`configure_logging`, e.g. from ``ServiceConfig.log_level``) or
via the ``DPCOPULA_LOG`` environment variable (``debug`` … ``error``,
or ``off``), which takes precedence over any configured level so an
operator can always crank a misbehaving deployment to ``debug``
without touching code.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import os
import sys
from typing import Any, Dict, Iterator, Optional, TextIO

__all__ = [
    "JsonFormatter",
    "LOG_ENV_VAR",
    "bind_context",
    "configure_logging",
    "current_context",
    "get_logger",
]

#: Environment override for the log level; beats any configured value.
LOG_ENV_VAR = "DPCOPULA_LOG"

_NAMESPACE = "dpcopula"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_OFF_VALUES = ("", "off", "none", "false", "0")

_request_id: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "dpcopula_request_id", default=None
)
_job_id: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "dpcopula_job_id", default=None
)

#: LogRecord attributes that are plumbing, not user payload.
_RESERVED_ATTRS = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``dpcopula`` namespace (``get_logger("service")``)."""
    return logging.getLogger(f"{_NAMESPACE}.{name}" if name else _NAMESPACE)


def current_context() -> Dict[str, str]:
    """The correlation ids bound in the current execution context."""
    out = {}
    request_id = _request_id.get()
    if request_id is not None:
        out["request_id"] = request_id
    job_id = _job_id.get()
    if job_id is not None:
        out["job_id"] = job_id
    return out


@contextlib.contextmanager
def bind_context(
    request_id: Optional[str] = None, job_id: Optional[str] = None
) -> Iterator[None]:
    """Bind correlation ids to every log line emitted inside the block."""
    tokens = []
    if request_id is not None:
        tokens.append((_request_id, _request_id.set(str(request_id))))
    if job_id is not None:
        tokens.append((_job_id, _job_id.set(str(job_id))))
    try:
        yield
    finally:
        for var, token in reversed(tokens):
            var.reset(token)


class JsonFormatter(logging.Formatter):
    """One JSON object per record, core keys first, extras sorted after."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(current_context())
        extras = {
            key: value
            for key, value in record.__dict__.items()
            if key not in _RESERVED_ATTRS and not key.startswith("_")
        }
        for key in sorted(extras):
            payload.setdefault(key, extras[key])
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def resolve_level(level: Optional[str] = None) -> Optional[str]:
    """The effective level name: ``DPCOPULA_LOG`` beats ``level``.

    Returns ``None`` when logging should stay off.  Raises
    ``ValueError`` for an unrecognized explicit level; an unrecognized
    *environment* value falls back to ``info`` (a typo in an env var
    must never take a running service down).
    """
    env = os.environ.get(LOG_ENV_VAR)
    if env is not None:
        env = env.strip().lower()
        if env in _OFF_VALUES:
            return None
        return env if env in _LEVELS else "info"
    if level is None:
        return None
    level = level.strip().lower()
    if level in _OFF_VALUES:
        return None
    if level not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(set(_LEVELS))} or 'off'"
        )
    return level


def configure_logging(
    level: Optional[str] = None, stream: Optional[TextIO] = None
) -> Optional[str]:
    """(Re)configure the ``dpcopula`` namespace's JSON handler.

    Idempotent: previous telemetry handlers are replaced, never
    stacked, so calling this on every service start is safe.  Returns
    the effective level name, or ``None`` when logging is off (the
    namespace then keeps a ``NullHandler`` and stays silent).
    """
    root = logging.getLogger(_NAMESPACE)
    for handler in list(root.handlers):
        if getattr(handler, "_dpcopula_telemetry", False):
            root.removeHandler(handler)
    effective = resolve_level(level)
    if effective is None:
        if not root.handlers:
            root.addHandler(logging.NullHandler())
        # Drop back to the namespace defaults so disabled-by-config costs
        # the same as never-configured: debug/info calls short-circuit on
        # the inherited WARNING threshold before building a record, and
        # propagation resumes (pytest's caplog depends on it).
        root.setLevel(logging.NOTSET)
        root.propagate = True
        return None
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler._dpcopula_telemetry = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(_LEVELS[effective])
    # Our handler owns the output; don't duplicate through the root logger.
    root.propagate = False
    return effective


# A set DPCOPULA_LOG turns logging on for any entry point — CLI, tests,
# notebooks — without requiring each to call configure_logging itself.
if os.environ.get(LOG_ENV_VAR, "").strip().lower() not in _OFF_VALUES:
    configure_logging()
