"""Lightweight span tracing for the fit/sample/serve pipeline.

A *span* is a named, timed region of work with key=value attributes and
child spans — ``margins``, ``correlation``, ``psd_repair``, one per
pipeline stage.  Spans answer the operator question metrics cannot:
*where inside this particular fit did the time go?*

Design constraints, in order:

1. **Free when off.**  Tracing is disabled by default; a disabled
   :func:`span` touches one contextvar and returns.  No timestamps, no
   allocation of tree nodes, no formatting.  The committed telemetry
   benchmark holds the enabled-vs-disabled overhead under 3 % on the
   Kendall hot path.
2. **Deterministic.**  Spans only ever *observe*: they never touch a
   random generator or reorder work, so traced and untraced runs — and
   every parallel backend — produce bitwise-identical outputs.
3. **Worker-transparent.**  ``contextvars`` do not cross thread- or
   process-pool boundaries, so the parallel layer ships span collection
   explicitly: a worker runs its chunk under a fresh root
   (:func:`call_collected`), exports the resulting subtree as a plain
   dict (picklable for the process backend), and the parent re-attaches
   it (:func:`attach`) in task order.  The trace tree is therefore
   identical in shape for serial, thread and process backends, modulo
   the per-chunk grouping nodes.

Usage::

    with trace_root("synthesize") as root:
        with span("fit", method="kendall"):
            ...
    print(render(root))

Completed spans also feed the ``dpcopula_stage_seconds`` histogram (one
label per span name) in the default metrics registry, which is how the
service gets per-stage latency distributions without separate timers.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.metrics import REGISTRY

__all__ = [
    "Span",
    "attach",
    "call_collected",
    "get_export_sink",
    "is_active",
    "render",
    "set_export_sink",
    "span",
    "trace_root",
]

_STAGE_SECONDS = REGISTRY.histogram(
    "dpcopula_stage_seconds",
    "Wall-clock seconds per traced pipeline stage (label: stage)",
)

_ACTIVE: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "dpcopula_active_span", default=None
)

#: Optional process-wide sink invoked with every *completed top-level*
#: trace root (nested roots stay attached to their parent instead).  The
#: durable trace exporter (``repro.telemetry.export``) installs itself
#: here; ``None`` keeps the export path completely free.
_EXPORT_SINK: Optional[Callable[["Span"], None]] = None


def set_export_sink(sink: Optional[Callable[["Span"], None]]) -> None:
    """Install (or, with ``None``, remove) the completed-trace sink.

    The sink sees every finished top-level root in the process — service
    fits, per-request traces, profiled CLI runs.  It runs inline on the
    traced thread, so it must be fast; any exception it raises is
    swallowed so export can never break traced code.
    """
    global _EXPORT_SINK
    _EXPORT_SINK = sink


def get_export_sink() -> Optional[Callable[["Span"], None]]:
    """The currently installed completed-trace sink, if any."""
    return _EXPORT_SINK


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "attrs", "duration", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.duration: Optional[float] = None
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, Any]:
        """A plain-data export (picklable, JSON-ready)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration": self.duration,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        node = cls(str(payload["name"]), payload.get("attrs") or {})
        node.duration = payload.get("duration")
        node.children = [cls.from_dict(c) for c in payload.get("children") or []]
        return node

    def find(self, name: str) -> List["Span"]:
        """Every descendant span (depth-first) with the given name."""
        found = [child for child in self.children if child.name == name]
        for child in self.children:
            found.extend(child.find(name))
        return found

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration}, "
            f"children={len(self.children)})"
        )


def is_active() -> bool:
    """Whether a trace is being recorded in the current context."""
    return _ACTIVE.get() is not None


class span:
    """Context manager recording one child span — or nothing when idle.

    ``with span("margins", m=16):`` appends a timed node under the
    currently active span.  When no trace is active (the default), the
    body runs with no measurable work done on either side of it.
    """

    __slots__ = ("_name", "_attrs", "_node", "_token", "_start")

    def __init__(self, name: str, **attrs: Any):
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Optional[Span]:
        parent = _ACTIVE.get()
        if parent is None:
            self._node = None
            return None
        node = Span(self._name, self._attrs)
        parent.children.append(node)
        self._node = node
        self._token = _ACTIVE.set(node)
        self._start = time.perf_counter()
        return node

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self._node
        if node is not None:
            node.duration = time.perf_counter() - self._start
            if exc_type is not None:
                node.attrs.setdefault("error", exc_type.__name__)
            _ACTIVE.reset(self._token)
            _STAGE_SECONDS.observe(node.duration, stage=node.name)
        return False


@contextlib.contextmanager
def trace_root(name: str, **attrs: Any) -> Iterator[Span]:
    """Record a trace: activates collection for the ``with`` body.

    Nesting under an already-active trace simply records a child span,
    so a traced service fit inside a traced benchmark composes.
    """
    parent = _ACTIVE.get()
    root = Span(name, attrs)
    token = _ACTIVE.set(root)
    start = time.perf_counter()
    try:
        yield root
    finally:
        root.duration = time.perf_counter() - start
        _ACTIVE.reset(token)
        _STAGE_SECONDS.observe(root.duration, stage=root.name)
        if parent is not None:
            parent.children.append(root)
        elif _EXPORT_SINK is not None:
            try:
                _EXPORT_SINK(root)
            except Exception:  # noqa: BLE001 - export must never break work
                pass


def call_collected(
    name: str, fn: Callable[[], Any], **attrs: Any
) -> Tuple[Any, Dict[str, Any]]:
    """Run ``fn()`` under a fresh root span; return (result, exported tree).

    This is the worker half of cross-pool span flow: pool workers have
    no access to the caller's contextvars, so they collect into their
    own root and ship the plain-dict export back with the results.
    """
    root = Span(name, attrs)
    token = _ACTIVE.set(root)
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        root.duration = time.perf_counter() - start
        _ACTIVE.reset(token)
    return result, root.to_dict()


def attach(exported: Optional[Dict[str, Any]]) -> None:
    """Graft a worker-exported subtree under the currently active span."""
    if not exported:
        return
    parent = _ACTIVE.get()
    if parent is not None:
        parent.children.append(Span.from_dict(exported))


def _render_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = " ".join(f"{key}={value}" for key, value in attrs.items())
    return f" [{inner}]"


def render(root: Span, indent: int = 0, width: int = 60) -> str:
    """A human-readable nested timing tree of a completed trace."""
    label = f"{'  ' * indent}{root.name}{_render_attrs(root.attrs)}"
    duration = "?" if root.duration is None else f"{root.duration:9.4f}s"
    lines = [f"{label:<{width}} {duration}"]
    for child in root.children:
        lines.append(render(child, indent + 1, width))
    return "\n".join(lines)
