"""Dependency-free metrics: counters, gauges, and bucketed histograms.

A long-running synthesis service needs numbers, not prose: how many fits
ran, how long each stage took, how deep the job queue is, how much ε a
dataset has left.  This module provides the three classic instrument
types behind those questions with zero dependencies beyond the stdlib:

* :class:`Counter` — a monotonically increasing total (``fit_errors_total``);
* :class:`Gauge` — a value that can go up and down (``fit_queue_depth``);
* :class:`Histogram` — bucketed observations with sum and count
  (``fit_seconds``), cumulative-bucket semantics exactly as Prometheus
  expects.

Every instrument lives in a :class:`MetricsRegistry` keyed by name, is
label-aware (one time series per distinct label set), and is safe for
concurrent use from many threads — each instrument guards its series
table with its own lock, so hot-path increments never contend on a
registry-wide lock.

The registry exports two wire formats:

* :meth:`MetricsRegistry.snapshot` — a JSON-ready nested dict;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (version 0.0.4), served by the service's
  ``GET /metrics`` endpoint.

The module-level :data:`REGISTRY` is the process-wide default every
instrumented module records into; tests construct private registries.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_FANOUT_BUCKETS",
    "LATENCY_BUCKETS_ENV_VAR",
    "parse_latency_buckets",
]

#: Wall-clock buckets (seconds) spanning sub-millisecond sampling calls
#: up to multi-minute fits.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Task-count buckets for fan-out histograms (powers of two up to the
#: parallel layer's per-call item cap).
DEFAULT_FANOUT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: Environment override for the default latency-bucket boundaries: a
#: comma-separated list of seconds, e.g. ``"0.005,0.05,0.5,5"``.  Wins
#: over ``ServiceConfig.latency_buckets``.
LATENCY_BUCKETS_ENV_VAR = "DPCOPULA_LATENCY_BUCKETS"


def parse_latency_buckets(text: str) -> Tuple[float, ...]:
    """Parse a comma-separated bucket-boundary list into sorted floats.

    Raises ``ValueError`` on empty input, non-numeric entries, or
    non-finite boundaries — callers surface that as a config error
    rather than silently falling back.
    """
    parts = [piece.strip() for piece in text.split(",") if piece.strip()]
    if not parts:
        raise ValueError("latency buckets: need at least one boundary")
    bounds = []
    for piece in parts:
        try:
            bound = float(piece)
        except ValueError:
            raise ValueError(f"latency buckets: {piece!r} is not a number") from None
        if not math.isfinite(bound) or bound <= 0:
            raise ValueError(f"latency buckets: {piece!r} must be finite and > 0")
        bounds.append(bound)
    return tuple(sorted(set(bounds)))

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared machinery: a named, labeled family of time series."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, Any] = {}

    def labels_seen(self) -> List[LabelKey]:
        with self._lock:
            return sorted(self._series)

    def clear(self) -> None:
        """Drop every recorded series (instrument stays registered)."""
        with self._lock:
            self._series.clear()


class Counter(_Instrument):
    """A monotonically increasing total, optionally labeled."""

    metric_type = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def snapshot_series(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": dict(key), "value": value} for key, value in items]

    def render(self) -> List[str]:
        lines = []
        for series in self.snapshot_series():
            labels = _format_labels(_label_key(series["labels"]))
            lines.append(f"{self.name}{labels} {_format_value(series['value'])}")
        return lines


class Gauge(_Instrument):
    """A point-in-time value that can move in both directions."""

    metric_type = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        self.inc(-value, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    snapshot_series = Counter.snapshot_series
    render = Counter.render


class Histogram(_Instrument):
    """Bucketed observations with Prometheus cumulative-bucket semantics."""

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b != b for b in bounds):  # NaN
            raise ValueError(f"histogram {name} buckets must be finite")
        # The implicit +Inf bucket is stored as the last slot.
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: Set by the registry for histograms created with the default
        #: latency buckets — the ones a bucket reconfiguration retargets.
        self.uses_default_latency_buckets = False

    def observe(
        self, value: float, exemplar: Optional[str] = None, **labels: Any
    ) -> None:
        value = float(value)
        key = _label_key(labels)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "buckets": [0] * (len(self.bounds) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._series[key] = series
            series["buckets"][index] += 1
            series["sum"] += value
            series["count"] += 1
            if exemplar is not None:
                # Keep the most recent exemplar per bucket: a trace or
                # request id an operator can join to the exported trace
                # for a representative observation in that latency band.
                series.setdefault("exemplars", {})[index] = {
                    "trace_id": str(exemplar),
                    "value": value,
                }

    def rebucket(self, buckets: Sequence[float]) -> None:
        """Replace the bucket boundaries, dropping any recorded series.

        Only safe at configuration time (service start-up) — recorded
        counts cannot be redistributed into new boundaries, so they are
        cleared rather than misreported.
        """
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        if any(b != b for b in bounds):  # NaN
            raise ValueError(f"histogram {self.name} buckets must be finite")
        with self._lock:
            self.bounds = tuple(bounds)
            self._series.clear()

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return int(series["count"]) if series else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return float(series["sum"]) if series else 0.0

    def snapshot_series(self) -> List[Dict[str, Any]]:
        with self._lock:
            bounds = self.bounds
            items = [
                (
                    key,
                    list(series["buckets"]),
                    series["sum"],
                    series["count"],
                    {k: dict(v) for k, v in series.get("exemplars", {}).items()},
                )
                for key, series in sorted(self._series.items())
            ]
        out = []
        for key, buckets, total, count, exemplars in items:
            cumulative: Dict[str, int] = {}
            running = 0
            for bound, in_bucket in zip(bounds, buckets):
                running += in_bucket
                cumulative[_format_value(bound)] = running
            cumulative["+Inf"] = running + buckets[-1]
            doc = {
                "labels": dict(key),
                "buckets": cumulative,
                "sum": total,
                "count": count,
            }
            if exemplars:
                # JSON-snapshot only: the 0.0.4 text format predates
                # exemplars and classic parsers would reject them.
                labels_for = [_format_value(b) for b in bounds] + ["+Inf"]
                doc["exemplars"] = {
                    labels_for[index]: payload
                    for index, payload in sorted(exemplars.items())
                    if index < len(labels_for)
                }
            out.append(doc)
        return out

    def render(self) -> List[str]:
        lines = []
        for series in self.snapshot_series():
            key = _label_key(series["labels"])
            for bound, cumulative in series["buckets"].items():
                labels = _format_labels(key, extra=[("le", bound)])
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(key)
            lines.append(f"{self.name}_sum{labels} {_format_value(series['sum'])}")
            lines.append(f"{self.name}_count{labels} {series['count']}")
        return lines


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics.

    Registration is idempotent: asking twice for the same (name, type)
    returns the same instrument object, so any module can declare the
    instruments it records into without coordinating a central list.
    Re-registering a name as a *different* type is a programming error
    and raises immediately.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self._latency_buckets: Optional[Tuple[float, ...]] = None

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.metric_type}, cannot re-register as "
                        f"{cls.metric_type}"
                    )
                return existing
            instrument = cls(name, help=help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        uses_default = buckets is DEFAULT_LATENCY_BUCKETS
        if uses_default and self._latency_buckets is not None:
            buckets = self._latency_buckets
        instrument = self._get_or_create(Histogram, name, help, buckets=buckets)
        if uses_default:
            instrument.uses_default_latency_buckets = True
        return instrument

    def configure_latency_buckets(
        self, buckets: Optional[Sequence[float]]
    ) -> None:
        """Override the default latency boundaries registry-wide.

        Latency histograms are declared at import time with the built-in
        :data:`DEFAULT_LATENCY_BUCKETS`, so configurability has to act at
        the registry: every histogram created with the default boundaries
        — past or future — is rebucketed (dropping its recorded series,
        which is why this belongs at service start-up, before traffic).
        Histograms with purpose-built boundaries (fan-out sizes, batch
        sizes) are left untouched.  ``None`` restores the built-ins.
        """
        new_bounds = (
            tuple(DEFAULT_LATENCY_BUCKETS)
            if buckets is None
            else tuple(sorted(float(b) for b in buckets))
        )
        with self._lock:
            self._latency_buckets = None if buckets is None else new_bounds
            instruments = list(self._instruments.values())
        for instrument in instruments:
            if (
                isinstance(instrument, Histogram)
                and instrument.uses_default_latency_buckets
                and instrument.bounds != new_bounds
            ):
                instrument.rebucket(new_bounds)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def reset(self) -> None:
        """Clear every instrument's recorded series (instruments remain)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready document of every instrument and its series."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {
            name: {
                "type": instrument.metric_type,
                "help": instrument.help,
                "series": instrument.snapshot_series(),
            }
            for name, instrument in instruments
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4) of the registry."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: List[str] = []
        for name, instrument in instruments:
            if instrument.help:
                escaped = instrument.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {name} {escaped}")
            lines.append(f"# TYPE {name} {instrument.metric_type}")
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


#: The process-wide default registry every instrumented module uses.
REGISTRY = MetricsRegistry()
