"""Telemetry: structured logging, metrics, and span tracing.

The observability layer for the whole pipeline — library fits, the
parallel execution layer, and the long-running synthesis service — in
three stdlib-only pieces:

* :mod:`repro.telemetry.logs` — JSON structured logging under the
  ``dpcopula`` namespace, correlation ids via contextvars, ``DPCOPULA_LOG``
  environment override;
* :mod:`repro.telemetry.metrics` — a dependency-free registry of
  counters, gauges and bucketed histograms, snapshot-able as JSON and
  renderable in Prometheus text format (served at ``GET /metrics``);
* :mod:`repro.telemetry.tracing` — a span tracer
  (``with trace.span("kendall_matrix", m=m):``) that is free when
  disabled, flows across thread/process pool workers, and never
  perturbs results;
* :mod:`repro.telemetry.export` — durable trace export: completed span
  trees appended to size-bounded JSONL ring files per worker;
* :mod:`repro.telemetry.observatory` — ε burn-down timelines from the
  privacy ledger and continuous model-utility probes (imported lazily
  by the service; it pulls in numpy/scipy, unlike the rest of the
  package).

Everything is disabled or silent by default: importing the library (or
running a fit) emits nothing until an entry point opts in.  See
docs/OBSERVABILITY.md for the log schema, the metric catalogue and the
span name reference.
"""

from repro.telemetry import metrics
from repro.telemetry import tracing as trace
from repro.telemetry.logs import (
    JsonFormatter,
    LOG_ENV_VAR,
    bind_context,
    configure_logging,
    current_context,
    get_logger,
)
from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.export import TraceExporter
from repro.telemetry.tracing import (
    Span,
    render,
    set_export_sink,
    span,
    trace_root,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "LOG_ENV_VAR",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TraceExporter",
    "bind_context",
    "configure_logging",
    "current_context",
    "get_logger",
    "metrics",
    "render",
    "set_export_sink",
    "span",
    "trace",
    "trace_root",
]
