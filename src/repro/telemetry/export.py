"""Durable trace export: completed span trees → JSONL ring files.

In-memory span trees (``repro.telemetry.tracing``) answer *where did
this run spend its time* while the process is alive; this module makes
them outlive the process.  A :class:`TraceExporter` installs itself as
the tracing layer's completed-trace sink and appends every finished
top-level trace — service fits, per-request HTTP traces, profiled CLI
runs — to a per-worker JSONL file under ``<data-dir>/traces/``.

Design constraints:

* **Bounded.**  Each worker writes a small ring: when the active file
  would exceed ``max_bytes`` it is rotated (``trace-N.jsonl`` →
  ``trace-N.jsonl.1`` → …) keeping at most ``max_files`` files per
  worker.  Disk use is ``workers × max_files × max_bytes``, forever.
* **Never in the way.**  Appends are buffered writes under a thread
  lock with no fsync — a lost tail on power failure is acceptable for
  diagnostics.  Any export error increments a counter and is swallowed;
  traced code cannot be broken by its own telemetry.
* **Joinable.**  Each record carries the correlation ids bound when the
  trace completed (``request_id``/``job_id`` from the logging context),
  which is the same id echoed to clients as ``X-Request-ID`` and
  attached to latency-histogram buckets as an exemplar — one key joins
  a client-reported failure, the access log, the metrics and the trace.

File format: one JSON object per line::

    {"trace_id": "9f2c4b1a0d3e", "job_id": null, "worker": "0",
     "ts": 1754500000.123, "duration": 0.0041, "slow": false,
     "root": {"name": "http.request", "attrs": {...}, "children": [...]}}
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry import tracing
from repro.telemetry.logs import current_context, get_logger
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.tracing import Span

__all__ = ["TraceExporter", "list_trace_files"]

_logger = get_logger("telemetry.export")

_TRACES_EXPORTED = REGISTRY.counter(
    "dpcopula_traces_exported_total",
    "Completed trace roots appended to the durable trace log",
)
_TRACE_EXPORT_ERRORS = REGISTRY.counter(
    "dpcopula_trace_export_errors_total",
    "Trace export attempts that failed (trace dropped, work unaffected)",
)
_TRACE_EXPORT_ROTATIONS = REGISTRY.counter(
    "dpcopula_trace_export_rotations_total",
    "Trace-log ring rotations (active file hit its size bound)",
)

DEFAULT_MAX_BYTES = 4 * 1024 * 1024
DEFAULT_MAX_FILES = 2


def list_trace_files(traces_dir) -> List[Dict[str, Any]]:
    """Inventory of trace-export files under a directory (JSON-ready)."""
    directory = Path(traces_dir)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("trace-*.jsonl*")):
        try:
            stat = path.stat()
        except OSError:
            continue
        out.append(
            {
                "file": path.name,
                "bytes": stat.st_size,
                "modified_at": stat.st_mtime,
            }
        )
    return out


class TraceExporter:
    """Appends completed trace roots to a size-bounded JSONL ring.

    One exporter per worker process; the file name carries the worker
    label so a fleet's traces never contend on one file.  Install with
    :meth:`install` (registers as the tracing sink) and tear down with
    :meth:`uninstall` — uninstall only removes the sink if it is still
    this exporter, so overlapping service lifetimes in one process (the
    test suite) cannot yank each other's hook.
    """

    def __init__(
        self,
        traces_dir,
        worker_label: str = "main",
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
        slow_threshold: Optional[float] = None,
    ):
        if max_bytes < 4096:
            raise ValueError(f"trace export max_bytes too small: {max_bytes}")
        if max_files < 1:
            raise ValueError(f"trace export max_files must be >= 1: {max_files}")
        self.directory = Path(traces_dir)
        self.worker_label = str(worker_label)
        self.max_bytes = int(max_bytes)
        self.max_files = int(max_files)
        self.slow_threshold = slow_threshold
        self.path = self.directory / f"trace-{self.worker_label}.jsonl"
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0
        self.exported = 0

    # -- sink plumbing -------------------------------------------------

    def install(self) -> "TraceExporter":
        self.directory.mkdir(parents=True, exist_ok=True)
        tracing.set_export_sink(self.export)
        return self

    def uninstall(self) -> None:
        # Bound methods are recreated per access, so compare by equality
        # (same function, same instance) — ``is`` would never match.
        if tracing.get_export_sink() == self.export:
            tracing.set_export_sink(None)
        self._close_handle()

    # -- export --------------------------------------------------------

    def export(self, root: Span) -> None:
        """Append one completed trace root (the tracing-layer sink)."""
        try:
            record = self._record(root)
            payload = json.dumps(record, sort_keys=True) + "\n"
            data = payload.encode("utf-8")
            with self._lock:
                handle = self._ensure_handle()
                if self._size and self._size + len(data) > self.max_bytes:
                    handle = self._rotate()
                handle.write(data)
                # Flush to the page cache (no fsync): readers — tests,
                # `dpcopula top`, tail -f — see whole records while the
                # append stays one buffered write + one syscall.
                handle.flush()
                self._size += len(data)
                self.exported += 1
            _TRACES_EXPORTED.inc()
        except Exception:  # noqa: BLE001 - diagnostics must not break work
            self._close_handle()
            _TRACE_EXPORT_ERRORS.inc()

    def _ensure_handle(self):
        """The open append handle (kept across records: opening the
        file per export dominated its cost)."""
        if self._handle is None:
            self._handle = open(self.path, "ab")
            self._size = os.fstat(self._handle.fileno()).st_size
        return self._handle

    def _close_handle(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover - close best-effort
                    pass
                self._handle = None

    def _record(self, root: Span) -> Dict[str, Any]:
        context = current_context()
        duration = root.duration
        slow = bool(
            self.slow_threshold is not None
            and duration is not None
            and duration >= self.slow_threshold
        )
        return {
            # The bound request id *is* the trace id (one trace per
            # request); traces completed outside a request (fits, CLI
            # profiles) fall back to the job id or the root name.
            "trace_id": context.get("request_id")
            or context.get("job_id")
            or root.name,
            "job_id": context.get("job_id"),
            "worker": self.worker_label,
            "ts": time.time(),
            "duration": duration,
            "slow": slow,
            "root": root.to_dict(),
        }

    def _rotate(self):
        """Shift the ring (caller holds the lock) and reopen the active
        file: .(N-1) → dropped, … , active → .1."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        for index in range(self.max_files - 1, 0, -1):
            source = (
                self.path
                if index == 1
                else self.path.with_name(f"{self.path.name}.{index - 1}")
            )
            target = self.path.with_name(f"{self.path.name}.{index}")
            if source.exists():
                os.replace(source, target)
        if self.max_files == 1:
            self.path.unlink(missing_ok=True)
        _TRACE_EXPORT_ROTATIONS.inc()
        return self._ensure_handle()

    # -- introspection -------------------------------------------------

    def inventory(self) -> List[Dict[str, Any]]:
        return list_trace_files(self.directory)
