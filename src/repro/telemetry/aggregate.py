"""Cross-worker metrics aggregation for pre-fork deployments.

A pre-fork fleet (:mod:`repro.service.prefork`) runs one metrics
registry *per process*, but an operator scrapes ``GET /metrics`` through
one connection that the kernel routes to an arbitrary worker.  This
module makes that scrape see the whole fleet:

* :class:`MetricsFlusher` — a daemon thread in every worker that
  periodically snapshots the process's :class:`~repro.telemetry.metrics.
  MetricsRegistry` into ``<data_dir>/metrics/worker-<index>.json``
  (atomic replace, so a scrape never reads a torn file);
* :func:`read_worker_snapshots` — collects every worker's latest file;
* :func:`render_prometheus_multi` / :func:`aggregate_snapshot` — merge
  the per-worker snapshots into one exposition document, tagging every
  series with a ``worker`` label so per-process series stay
  distinguishable (Prometheus sums across the label where a total is
  wanted).

The files are snapshots, not streams: a worker that died keeps its last
file only until the supervisor respawns that index — the spawn path
prunes the dead process's file (:func:`prune_worker_snapshot`) before
the replacement starts, so a scrape never mixes a stale snapshot's
counters with the fresh process's restarted ones under the same worker
label.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry import get_logger
from repro.telemetry.metrics import (
    MetricsRegistry,
    _format_labels,
    _format_value,
    _label_key,
)

__all__ = [
    "MetricsFlusher",
    "aggregate_snapshot",
    "prune_worker_snapshot",
    "read_worker_snapshots",
    "render_prometheus_multi",
    "worker_snapshot_path",
]

_logger = get_logger("telemetry.aggregate")


def worker_snapshot_path(metrics_dir, worker_index: int) -> Path:
    """Where worker ``worker_index`` publishes its metrics snapshot."""
    return Path(metrics_dir) / f"worker-{int(worker_index)}.json"


def write_snapshot(
    registry: MetricsRegistry, metrics_dir, worker_index: int
) -> Path:
    """Atomically persist ``registry``'s snapshot for this worker."""
    metrics_dir = Path(metrics_dir)
    metrics_dir.mkdir(parents=True, exist_ok=True)
    path = worker_snapshot_path(metrics_dir, worker_index)
    document = {
        "worker": int(worker_index),
        "pid": os.getpid(),
        "written_at": time.time(),
        "metrics": registry.snapshot(),
    }
    payload = json.dumps(document, sort_keys=True).encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        dir=metrics_dir, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def prune_worker_snapshot(metrics_dir, worker_index: int) -> bool:
    """Remove a dead worker's snapshot file; returns whether one existed.

    Called by the pre-fork supervisor immediately before (re)spawning a
    worker index: the outgoing process's last flush must not be
    aggregated alongside — or instead of — the new process's counters.
    Best-effort: a racing unlink or missing file is not an error.
    """
    path = worker_snapshot_path(metrics_dir, worker_index)
    try:
        path.unlink()
        return True
    except OSError:
        return False


def read_worker_snapshots(metrics_dir) -> Dict[int, Dict[str, Any]]:
    """Every worker's latest snapshot document, keyed by worker index.

    Unreadable or torn files are skipped (the writer replaces
    atomically, so these only appear for foreign files).
    """
    metrics_dir = Path(metrics_dir)
    snapshots: Dict[int, Dict[str, Any]] = {}
    if not metrics_dir.exists():
        return snapshots
    for path in sorted(metrics_dir.glob("worker-*.json")):
        try:
            index = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        try:
            snapshots[index] = json.loads(path.read_text())
        except (OSError, ValueError):
            _logger.warning(
                "skipping unreadable metrics snapshot", extra={"path": str(path)}
            )
    return snapshots


class MetricsFlusher:
    """Background thread publishing this worker's metrics snapshot.

    Flushes every ``interval`` seconds and once more on :meth:`stop`,
    so the file a sibling aggregates is at most one interval stale —
    and final counts survive a graceful drain.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        metrics_dir,
        worker_index: int,
        interval: float = 1.0,
    ):
        self.registry = registry
        self.metrics_dir = Path(metrics_dir)
        self.worker_index = int(worker_index)
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsFlusher":
        self.flush()
        self._thread = threading.Thread(
            target=self._run,
            name=f"dpcopula-metrics-flusher-{self.worker_index}",
            daemon=True,
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()

    def flush(self) -> None:
        """Write the snapshot now (best-effort; never raises)."""
        try:
            write_snapshot(self.registry, self.metrics_dir, self.worker_index)
        except OSError:
            _logger.exception(
                "metrics snapshot flush failed",
                extra={"worker": self.worker_index},
            )

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.flush()


# -- aggregation -----------------------------------------------------------


def aggregate_snapshot(snapshots: Dict[int, Dict[str, Any]]) -> Dict[str, Any]:
    """One JSON document merging every worker's metrics snapshot.

    Per-metric series keep their labels plus an injected ``worker``
    label, so nothing is summed away — consumers aggregate exactly the
    series they care about.
    """
    merged: Dict[str, Any] = {}
    for index in sorted(snapshots):
        metrics_doc = snapshots[index].get("metrics", {})
        for name, instrument in sorted(metrics_doc.items()):
            slot = merged.setdefault(
                name,
                {
                    "type": instrument.get("type", "untyped"),
                    "help": instrument.get("help", ""),
                    "series": [],
                },
            )
            for series in instrument.get("series", []):
                tagged = dict(series)
                tagged["labels"] = {
                    **series.get("labels", {}),
                    "worker": str(index),
                }
                slot["series"].append(tagged)
    return merged


def render_prometheus_multi(snapshots: Dict[int, Dict[str, Any]]) -> str:
    """Prometheus text exposition of a whole fleet's snapshots.

    Mirrors :meth:`MetricsRegistry.render_prometheus` output, with every
    series carrying a ``worker`` label identifying its process.
    """
    merged = aggregate_snapshot(snapshots)
    lines: List[str] = []
    for name in sorted(merged):
        instrument = merged[name]
        if instrument["help"]:
            escaped = instrument["help"].replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {instrument['type']}")
        for series in instrument["series"]:
            key = _label_key(series["labels"])
            if instrument["type"] == "histogram":
                for bound, cumulative in series["buckets"].items():
                    labels = _format_labels(key, extra=[("le", bound)])
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _format_labels(key)
                lines.append(f"{name}_sum{labels} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{labels} {series['count']}")
            else:
                labels = _format_labels(key)
                lines.append(f"{name}{labels} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n"
