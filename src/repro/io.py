"""Serialization: datasets and fitted synthesizer models on disk.

* Datasets round-trip through CSV (human-inspectable, schema header
  embedded in the column names as ``name[domain]``) or NPZ (fast,
  lossless).
* A fitted DPCopula synthesizer's *released state* — the noisy margin
  counts and the DP correlation matrix — round-trips through NPZ.  The
  state is itself differentially private, so persisting and reloading it
  is pure post-processing: a loaded model can sample fresh synthetic
  data forever without touching the original records again.
"""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.core.sampling import sample_synthetic
from repro.data.dataset import Attribute, Dataset, Schema
from repro.stats.ecdf import HistogramCDF
from repro.utils import RngLike

PathLike = Union[str, Path]

#: Version of the ``ReleasedModel`` NPZ layout.  Bump when the payload
#: keys or their meaning change; :meth:`ReleasedModel.load` refuses
#: versions it does not understand so stale services fail loudly instead
#: of sampling garbage.
MODEL_FORMAT_VERSION = 1

_COLUMN_PATTERN = re.compile(r"^(?P<name>.+)\[(?P<domain>\d+)\]$")


def save_dataset_csv(dataset: Dataset, path: PathLike) -> None:
    """Write a dataset as CSV with ``name[domain]`` column headers."""
    path = Path(path)
    header = [f"{a.name}[{a.domain_size}]" for a in dataset.schema]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(dataset.values.tolist())


def load_dataset_csv(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`save_dataset_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        attributes: List[Attribute] = []
        for column in header:
            match = _COLUMN_PATTERN.match(column)
            if not match:
                raise ValueError(
                    f"column header {column!r} is not in 'name[domain]' form"
                )
            attributes.append(
                Attribute(match.group("name"), int(match.group("domain")))
            )
        rows = [[int(value) for value in row] for row in reader if row]
    values = (
        np.asarray(rows, dtype=np.int64)
        if rows
        else np.empty((0, len(attributes)), dtype=np.int64)
    )
    return Dataset(values, Schema(attributes))


def save_dataset_npz(dataset: Dataset, path: PathLike) -> None:
    """Write a dataset as compressed NPZ (values + schema as JSON)."""
    schema_json = json.dumps(
        [[a.name, a.domain_size] for a in dataset.schema]
    )
    np.savez_compressed(
        Path(path), values=dataset.values, schema=np.array(schema_json)
    )


def load_dataset_npz(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`save_dataset_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        values = archive["values"]
        schema_spec = json.loads(str(archive["schema"]))
    schema = Schema(Attribute(name, int(size)) for name, size in schema_spec)
    return Dataset(values, schema)


class ReleasedModel:
    """The differentially private state of a fitted DPCopula synthesizer.

    Holds the noisy margin count vectors, the DP correlation matrix and
    the schema — everything Algorithm 3 needs to sample, and nothing
    else.  Because all components were released under the privacy
    budget, this object can be stored, shared and re-sampled freely.
    """

    def __init__(
        self,
        margin_counts: List[np.ndarray],
        correlation: np.ndarray,
        schema: Schema,
        n_records: int,
        epsilon: float,
    ):
        if len(margin_counts) != schema.dimensions:
            raise ValueError(
                f"{len(margin_counts)} margins for {schema.dimensions} attributes"
            )
        self.margin_counts = [np.asarray(c, dtype=float) for c in margin_counts]
        self.correlation = np.asarray(correlation, dtype=float)
        self.schema = schema
        self.n_records = int(n_records)
        self.epsilon = float(epsilon)

    @classmethod
    def from_synthesizer(cls, synthesizer) -> "ReleasedModel":
        """Capture the released state of a fitted DPCopula synthesizer."""
        if not synthesizer.is_fitted:
            raise ValueError("synthesizer must be fitted first")
        return cls(
            margin_counts=synthesizer.margins_.noisy_counts,
            correlation=synthesizer.correlation_,
            schema=synthesizer.schema_,
            n_records=synthesizer._n_records,
            epsilon=synthesizer.epsilon,
        )

    def sample(self, n: int = None, rng: RngLike = None) -> Dataset:
        """Draw synthetic records from the persisted model."""
        if n is None:
            n = self.n_records
        margins = [HistogramCDF(counts) for counts in self.margin_counts]
        return sample_synthetic(self.correlation, margins, int(n), self.schema, rng)

    def save(self, path) -> None:
        """Persist to NPZ (a path or an open binary file object)."""
        payload = {
            "correlation": self.correlation,
            "meta": np.array(
                json.dumps(
                    {
                        "format_version": MODEL_FORMAT_VERSION,
                        "schema": [[a.name, a.domain_size] for a in self.schema],
                        "n_records": self.n_records,
                        "epsilon": self.epsilon,
                    }
                )
            ),
        }
        for j, counts in enumerate(self.margin_counts):
            payload[f"margin_{j}"] = counts
        # Accept an open binary file object as well as a path so callers
        # (e.g. the service registry) can stage the payload for atomic
        # writes.
        target = path if hasattr(path, "write") else Path(path)
        np.savez_compressed(target, **payload)

    @classmethod
    def load(cls, path) -> "ReleasedModel":
        """Restore from NPZ (a path or an open binary file object)."""
        source = path if hasattr(path, "read") else Path(path)
        with np.load(source, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            # Files written before versioning carry the version-1 layout.
            version = int(meta.get("format_version", 1))
            if version != MODEL_FORMAT_VERSION:
                raise ValueError(
                    f"released model {path} has format version {version}; "
                    f"this build reads version {MODEL_FORMAT_VERSION} — "
                    "re-fit or convert the model with a matching build"
                )
            schema = Schema(
                Attribute(name, int(size)) for name, size in meta["schema"]
            )
            margins = [
                archive[f"margin_{j}"] for j in range(schema.dimensions)
            ]
            correlation = archive["correlation"]
        return cls(
            margin_counts=margins,
            correlation=correlation,
            schema=schema,
            n_records=meta["n_records"],
            epsilon=meta["epsilon"],
        )
