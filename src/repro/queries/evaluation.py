"""Query-accuracy metrics (Section 5.1).

Relative error with a sanity bound ``s``::

    RE(q) = |A_noisy(q) − A_act(q)| / max(A_act(q), s)

and plain absolute error, plus a workload evaluator that works uniformly
over every answer source: synthetic datasets (counting rows), sanitized
histogram structures (their ``range_count``, with out-of-domain ranges
clipped by the answerer), and bare callables.  The uniform contract is
that :func:`evaluate_workload` produces the same error summary whether
a method releases records or a noisy structure — both source kinds are
funnelled through :func:`as_answer_function` into one
``RangeQuery -> float`` shape before any metric is computed.

A synthetic dataset that reproduces the original exactly scores zero,
and so does a dense histogram holding the exact counts:

>>> import numpy as np
>>> from repro.data.dataset import Dataset, Schema
>>> from repro.histograms.base import DenseNoisyHistogram
>>> from repro.queries.range_query import RangeQuery
>>> schema = Schema.from_domain_sizes([4, 3])
>>> original = Dataset(np.array([[0, 0], [1, 2], [3, 1], [3, 1]]), schema)
>>> workload = [RangeQuery(((0, 3), (0, 2))), RangeQuery(((2, 3), (1, 1)))]
>>> evaluate_workload(original, workload, original).mean_relative_error
0.0
>>> counts = np.zeros((4, 3))
>>> np.add.at(counts, (original.column(0), original.column(1)), 1.0)
>>> histogram = DenseNoisyHistogram(counts)  # answerer source, same result
>>> evaluate_workload(histogram, workload, original).mean_relative_error
0.0
>>> evaluate_workload(histogram, workload, original).n_queries
2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Union

import numpy as np

from repro.data.dataset import Dataset
from repro.histograms.base import RangeQueryAnswerer
from repro.queries.range_query import RangeQuery
from repro.utils import check_positive

AnswerSource = Union[Dataset, RangeQueryAnswerer, Callable[[RangeQuery], float]]


def relative_error(
    noisy: float,
    actual: float,
    sanity_bound: float = 1.0,
) -> float:
    """The paper's relative-error metric for one query."""
    check_positive("sanity_bound", sanity_bound)
    return abs(float(noisy) - float(actual)) / max(float(actual), sanity_bound)


def absolute_error(noisy: float, actual: float) -> float:
    """``|A_noisy(q) − A_act(q)|``."""
    return abs(float(noisy) - float(actual))


def true_answers(dataset: Dataset, workload: Sequence[RangeQuery]) -> np.ndarray:
    """Exact counts of every query on the original data."""
    return np.array([query.count(dataset) for query in workload], dtype=float)


def dataset_answerer(dataset: Dataset) -> Callable[[RangeQuery], float]:
    """Answer queries by counting rows of a (synthetic) dataset."""

    def answer(query: RangeQuery) -> float:
        return float(query.count(dataset))

    return answer


def as_answer_function(source: AnswerSource) -> Callable[[RangeQuery], float]:
    """Normalize any answer source into a ``RangeQuery -> float`` callable.

    This is the single funnel behind the evaluator's uniform-handling
    promise; the k-way marginal workload reuses it so datasets and
    sanitized structures stay interchangeable there too.
    """
    if isinstance(source, Dataset):
        return dataset_answerer(source)
    if isinstance(source, RangeQueryAnswerer):
        return lambda query: float(source.range_count(list(query.ranges)))
    if callable(source):
        return source
    raise TypeError(
        f"cannot answer queries with {type(source).__name__}; expected a "
        "Dataset, a RangeQueryAnswerer or a callable"
    )


@dataclass(frozen=True)
class QueryEvaluation:
    """Error summary of a workload against one answer source."""

    mean_relative_error: float
    median_relative_error: float
    mean_absolute_error: float
    max_relative_error: float
    n_queries: int

    def __str__(self) -> str:
        return (
            f"RE mean={self.mean_relative_error:.4f} "
            f"median={self.median_relative_error:.4f} "
            f"max={self.max_relative_error:.4f} "
            f"ABS mean={self.mean_absolute_error:.2f} "
            f"({self.n_queries} queries)"
        )


def evaluate_workload(
    source: AnswerSource,
    workload: Sequence[RangeQuery],
    actual: Union[Dataset, np.ndarray],
    sanity_bound: float = 1.0,
) -> QueryEvaluation:
    """Run a workload and summarize the paper's error metrics.

    Parameters
    ----------
    source:
        What answers the queries: a synthetic dataset, a noisy histogram
        structure, or any ``RangeQuery -> float`` callable.
    actual:
        The original dataset, or a precomputed vector of true answers
        (pass the latter when comparing several methods on one workload).
    sanity_bound:
        The paper's ``s`` (1 by default; 0.05% of cardinality for the US
        dataset; 10 for the Brazil dataset).
    """
    if not len(workload):
        # An empty workload has no error distribution; summarizing it
        # would silently return NaNs (np.mean of nothing).
        raise ValueError("cannot evaluate an empty workload")
    if isinstance(actual, Dataset):
        actual_values = true_answers(actual, workload)
    else:
        actual_values = np.asarray(actual, dtype=float)
    if actual_values.size != len(workload):
        raise ValueError(
            f"{actual_values.size} true answers for {len(workload)} queries"
        )
    answer = as_answer_function(source)
    noisy_values = np.array([answer(query) for query in workload], dtype=float)

    relative = np.abs(noisy_values - actual_values) / np.maximum(
        actual_values, sanity_bound
    )
    absolute = np.abs(noisy_values - actual_values)
    return QueryEvaluation(
        mean_relative_error=float(relative.mean()),
        median_relative_error=float(np.median(relative)),
        mean_absolute_error=float(absolute.mean()),
        max_relative_error=float(relative.max()),
        n_queries=len(workload),
    )
