"""Range-count query workloads and the paper's accuracy metrics."""

from repro.queries.range_query import (
    RangeQuery,
    anchored_workload,
    random_workload,
    workload_with_volume,
)
from repro.queries.evaluation import (
    QueryEvaluation,
    absolute_error,
    dataset_answerer,
    evaluate_workload,
    relative_error,
    true_answers,
)
from repro.queries.metrics import (
    UtilityReport,
    all_margin_tvds,
    margin_kolmogorov,
    margin_tvd,
    pairwise_tau_error,
    two_way_tvd,
    utility_report,
)

__all__ = [
    "RangeQuery",
    "random_workload",
    "anchored_workload",
    "workload_with_volume",
    "relative_error",
    "absolute_error",
    "true_answers",
    "dataset_answerer",
    "evaluate_workload",
    "QueryEvaluation",
    "UtilityReport",
    "utility_report",
    "margin_tvd",
    "margin_kolmogorov",
    "all_margin_tvds",
    "pairwise_tau_error",
    "two_way_tvd",
]
