"""Range-count query workloads and the paper's accuracy metrics."""

from repro.queries.range_query import (
    RangeQuery,
    anchored_workload,
    random_workload,
    workload_with_volume,
)
from repro.queries.evaluation import (
    QueryEvaluation,
    absolute_error,
    as_answer_function,
    dataset_answerer,
    evaluate_workload,
    relative_error,
    true_answers,
)
from repro.queries.workloads import (
    KWayMarginal,
    MarginalEvaluation,
    all_kway,
    coarse_edges,
    evaluate_marginals,
    gaussian_copula_pair_probabilities,
    kway_marginal,
    marginal_probabilities,
)
from repro.queries.ml_utility import (
    MLUtilityReport,
    ModelScore,
    ml_utility,
    train_test_split,
)
from repro.queries.metrics import (
    UtilityReport,
    all_margin_tvds,
    margin_kolmogorov,
    margin_tvd,
    pairwise_tau_error,
    two_way_tvd,
    utility_report,
)

__all__ = [
    "RangeQuery",
    "random_workload",
    "anchored_workload",
    "workload_with_volume",
    "relative_error",
    "absolute_error",
    "true_answers",
    "as_answer_function",
    "dataset_answerer",
    "evaluate_workload",
    "QueryEvaluation",
    "KWayMarginal",
    "MarginalEvaluation",
    "all_kway",
    "coarse_edges",
    "evaluate_marginals",
    "gaussian_copula_pair_probabilities",
    "kway_marginal",
    "marginal_probabilities",
    "MLUtilityReport",
    "ModelScore",
    "ml_utility",
    "train_test_split",
    "UtilityReport",
    "utility_report",
    "margin_tvd",
    "margin_kolmogorov",
    "all_margin_tvds",
    "pairwise_tau_error",
    "two_way_tvd",
]
