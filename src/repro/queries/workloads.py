"""k-way marginal workloads (PrivSyn-style evaluation).

The paper scores DPCopula on random range-count queries only; modern
DP-synthesis work additionally judges a generator on how well it
preserves every low-order **marginal** — the contingency table of each
small attribute subset.  This module provides that workload:

* :func:`all_kway` enumerates every ``C(m, k)`` attribute combination
  (optionally coarsened onto at most ``bins`` buckets per axis, so
  1000-value domains stay tractable at ``k = 3``);
* :func:`evaluate_marginals` scores any answer source — a synthetic
  :class:`~repro.data.dataset.Dataset`, a sanitized histogram structure
  or a bare callable, exactly the sources
  :func:`~repro.queries.evaluation.evaluate_workload` accepts — against
  the original data, reporting **total variation distance** per marginal
  with worst/average aggregation.

For a ``Dataset`` source the marginal table is a vectorized histogram;
for every other source each marginal cell becomes one
:class:`~repro.queries.range_query.RangeQuery` (the cell's intervals on
the marginal's attributes, the full domain elsewhere), answered through
the same funnel the range-query evaluator uses.  The two paths agree
exactly on equivalent inputs (asserted by tests).

Error convention: with ``p`` the original's cell proportions and ``q``
the source's (each normalized by its own record count; answerer counts
are normalized by the original's), the per-marginal error is

``TVD = ½ · Σ_cells |p − q|``  (and ``L1 = Σ |p − q| = 2 · TVD``).

:func:`gaussian_copula_pair_probabilities` computes the two-way cell
probabilities a released Gaussian-copula model *implies* (bivariate
normal rectangle probabilities of the DP margins + repaired
correlation) — the reference the serving fleet's utility probe scores
live samples against at zero privacy cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset, Schema
from repro.queries.evaluation import AnswerSource, as_answer_function
from repro.queries.range_query import RangeQuery
from repro.utils import RngLike, as_generator, check_int_at_least

__all__ = [
    "KWayMarginal",
    "MarginalEvaluation",
    "all_kway",
    "coarse_edges",
    "evaluate_marginals",
    "gaussian_copula_pair_probabilities",
    "kway_marginal",
    "marginal_probabilities",
]


def coarse_edges(domain_size: int, bins: int) -> Tuple[int, ...]:
    """Integer bucket edges covering ``[0, domain_size)`` in ≤ ``bins`` cells.

    Edges are ascending with ``edges[0] == 0`` and
    ``edges[-1] == domain_size``; bucket ``i`` covers the inclusive
    value interval ``[edges[i], edges[i+1] - 1]``.  Domains smaller than
    ``bins`` get one bucket per value (the exact marginal).
    """
    check_int_at_least("domain_size", domain_size, 1)
    check_int_at_least("bins", bins, 1)
    edges = np.unique(
        np.linspace(0, domain_size, min(bins, domain_size) + 1).astype(int)
    )
    return tuple(int(e) for e in edges)


@dataclass(frozen=True)
class KWayMarginal:
    """One marginal: an attribute subset plus per-attribute bucket edges."""

    attributes: Tuple[int, ...]
    edges: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a marginal needs at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in marginal: {self.attributes}")
        if len(self.edges) != len(self.attributes):
            raise ValueError(
                f"{len(self.edges)} edge vectors for {len(self.attributes)} attributes"
            )
        for edge in self.edges:
            if len(edge) < 2 or any(b <= a for a, b in zip(edge, edge[1:])):
                raise ValueError(f"edges must be strictly ascending, got {edge}")

    @property
    def k(self) -> int:
        return len(self.attributes)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Cells per attribute (the marginal table's shape)."""
        return tuple(len(edge) - 1 for edge in self.edges)

    @property
    def n_cells(self) -> int:
        return int(np.prod([len(edge) - 1 for edge in self.edges]))

    def cell_queries(self, schema: Schema) -> List[RangeQuery]:
        """Every cell as a full-dimensional range query over ``schema``.

        The query constrains the marginal's attributes to the cell's
        buckets and leaves every other attribute at its full domain, so
        any range-query answerer can fill the marginal table.
        """
        full = [(0, attribute.domain_size - 1) for attribute in schema]
        queries = []
        for cell in itertools.product(*(range(n) for n in self.shape)):
            ranges = list(full)
            for attribute, edge, index in zip(self.attributes, self.edges, cell):
                ranges[attribute] = (edge[index], edge[index + 1] - 1)
            queries.append(RangeQuery(tuple(ranges)))
        return queries


def kway_marginal(
    schema: Schema, attributes: Sequence[int], bins: int = 8
) -> KWayMarginal:
    """The marginal over ``attributes`` with default coarsened buckets."""
    attributes = tuple(int(a) for a in attributes)
    for a in attributes:
        if not 0 <= a < schema.dimensions:
            raise ValueError(
                f"attribute index {a} outside schema with {schema.dimensions} "
                "attributes"
            )
    return KWayMarginal(
        attributes=attributes,
        edges=tuple(coarse_edges(schema[a].domain_size, bins) for a in attributes),
    )


def all_kway(
    schema: Schema,
    k: int,
    bins: int = 8,
    max_marginals: Optional[int] = None,
    rng: RngLike = 0,
) -> List[KWayMarginal]:
    """Every ``C(m, k)`` marginal of exactly ``k`` attributes.

    Parameters
    ----------
    k:
        Marginal order; the standard synthesis workload uses k ≤ 3.
    bins:
        Per-attribute coarsening bound (8 keeps a 3-way marginal at
        ≤ 512 cells regardless of domain size).
    max_marginals:
        When the combination count exceeds this, a uniform
        without-replacement subsample is taken — deterministic for a
        fixed ``rng``, and stable in combination order.
    """
    check_int_at_least("k", k, 1)
    m = schema.dimensions
    if k > m:
        raise ValueError(f"cannot form {k}-way marginals over {m} attributes")
    combinations = list(itertools.combinations(range(m), k))
    if max_marginals is not None and len(combinations) > max_marginals:
        check_int_at_least("max_marginals", max_marginals, 1)
        gen = as_generator(rng)
        chosen = gen.choice(len(combinations), size=max_marginals, replace=False)
        combinations = [combinations[i] for i in sorted(chosen)]
    return [kway_marginal(schema, combo, bins=bins) for combo in combinations]


def marginal_probabilities(dataset: Dataset, marginal: KWayMarginal) -> np.ndarray:
    """The marginal's cell proportions of a dataset (vectorized path)."""
    columns = np.column_stack([dataset.column(a) for a in marginal.attributes])
    counts, _ = np.histogramdd(
        columns.astype(float),
        bins=[np.asarray(edge, dtype=float) for edge in marginal.edges],
    )
    if dataset.n_records == 0:
        raise ValueError("cannot compute marginals of an empty dataset")
    return counts / dataset.n_records


def _source_probabilities(
    source: AnswerSource,
    marginal: KWayMarginal,
    schema: Schema,
    reference_records: int,
) -> np.ndarray:
    """Cell proportions of any answer source, via the uniform funnel."""
    if isinstance(source, Dataset):
        return marginal_probabilities(source, marginal)
    answer = as_answer_function(source)
    counts = np.array(
        [answer(query) for query in marginal.cell_queries(schema)], dtype=float
    )
    return counts.reshape(marginal.shape) / float(max(reference_records, 1))


@dataclass(frozen=True)
class MarginalEvaluation:
    """TVD summary of a marginal workload against one answer source."""

    k: int
    tvds: Dict[Tuple[int, ...], float]

    @property
    def n_marginals(self) -> int:
        return len(self.tvds)

    @property
    def avg_tvd(self) -> float:
        return float(np.mean(list(self.tvds.values())))

    @property
    def max_tvd(self) -> float:
        """The worst (largest) per-marginal TVD."""
        return float(max(self.tvds.values()))

    @property
    def avg_l1(self) -> float:
        """Average L1 error over marginals (identically ``2 · avg_tvd``)."""
        return 2.0 * self.avg_tvd

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (marginal keys joined with ``,``)."""
        return {
            "k": self.k,
            "n_marginals": self.n_marginals,
            "avg_tvd": self.avg_tvd,
            "max_tvd": self.max_tvd,
            "avg_l1": self.avg_l1,
            "per_marginal": {
                ",".join(str(a) for a in attrs): tvd
                for attrs, tvd in sorted(self.tvds.items())
            },
        }

    def __str__(self) -> str:
        return (
            f"{self.k}-way marginals: TVD avg={self.avg_tvd:.4f} "
            f"worst={self.max_tvd:.4f} ({self.n_marginals} marginals)"
        )


def evaluate_marginals(
    source: AnswerSource,
    marginals: Sequence[KWayMarginal],
    actual: Dataset,
) -> MarginalEvaluation:
    """Score a source's marginal tables against the original data.

    ``source`` follows the range-query evaluator's contract: a synthetic
    dataset (normalized by its own record count), a sanitized structure
    or a callable (counts normalized by the original's record count).
    """
    if not len(marginals):
        raise ValueError("cannot evaluate an empty marginal workload")
    schema = actual.schema
    tvds: Dict[Tuple[int, ...], float] = {}
    for marginal in marginals:
        p = marginal_probabilities(actual, marginal)
        q = _source_probabilities(source, marginal, schema, actual.n_records)
        tvds[marginal.attributes] = 0.5 * float(np.abs(p - q).sum())
    return MarginalEvaluation(
        k=max(marginal.k for marginal in marginals), tvds=tvds
    )


def gaussian_copula_pair_probabilities(
    margin_i: np.ndarray,
    margin_j: np.ndarray,
    rho: float,
    edges_i: Sequence[int],
    edges_j: Sequence[int],
) -> np.ndarray:
    """Two-way cell probabilities a released Gaussian copula implies.

    Given two released (non-negative) margin count vectors, the repaired
    latent correlation ``rho`` and bucket edges, returns the exact
    probability the model's sampler assigns to each ``(i, j)`` bucket:
    rectangle probabilities of the bivariate normal at the
    probit-transformed margin CDF values.  This is the reference
    distribution for the utility probe's k-way marginal gauge — computed
    purely from released statistics, so it costs zero ε.
    """
    from scipy.special import ndtri

    from repro.stats.copula_math import bivariate_normal_cdf

    def _edge_scores(margin: np.ndarray, edges: Sequence[int]) -> np.ndarray:
        margin = np.clip(np.asarray(margin, dtype=float), 0.0, None)
        total = margin.sum()
        pmf = margin / total if total > 0 else np.full(margin.size, 1.0 / margin.size)
        cdf = np.concatenate([[0.0], np.cumsum(pmf)])
        u = cdf[np.asarray(edges, dtype=int)]
        # Clip into ndtri's open domain; ±8 is indistinguishable from ±∞.
        return ndtri(np.clip(u, 1e-15, 1.0 - 1e-15))

    z_i = _edge_scores(margin_i, edges_i)
    z_j = _edge_scores(margin_j, edges_j)
    grid = bivariate_normal_cdf(z_i[:, np.newaxis], z_j[np.newaxis, :], rho)
    cells = grid[1:, 1:] - grid[:-1, 1:] - grid[1:, :-1] + grid[:-1, :-1]
    # Quadrature rounding can leave ~1e-15 negatives; clip and renormalize.
    cells = np.clip(cells, 0.0, None)
    total = cells.sum()
    return cells / total if total > 0 else cells
