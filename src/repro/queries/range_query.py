"""Random range-count queries (Section 5.1).

The paper's workload::

    SELECT COUNT(*) FROM D
    WHERE A_1 ∈ I_1 AND A_2 ∈ I_2 AND ... AND A_m ∈ I_m

with each ``I_i`` a random interval of attribute ``A_i``'s domain.  Two
generators are provided: uniformly random intervals (the default
workload), and fixed-volume workloads where the product of the per-axis
range lengths is (approximately) a target value — the knob Figure 8
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset, Schema
from repro.utils import RngLike, as_generator, check_int_at_least

__all__ = [
    "RangeQuery",
    "random_workload",
    "anchored_workload",
    "workload_with_volume",
]

Range = Tuple[int, int]


@dataclass(frozen=True)
class RangeQuery:
    """An inclusive hyper-rectangle predicate over all attributes."""

    ranges: Tuple[Range, ...]

    def __post_init__(self) -> None:
        for low, high in self.ranges:
            if high < low:
                raise ValueError(f"empty range ({low}, {high}) in query")

    @property
    def dimensions(self) -> int:
        return len(self.ranges)

    def volume(self) -> float:
        """Number of cells the query covers."""
        vol = 1.0
        for low, high in self.ranges:
            vol *= float(high - low + 1)
        return vol

    def selectivity(self, schema: Schema) -> float:
        """Covered fraction of the full domain space."""
        return self.volume() / schema.domain_space()

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of records satisfying the predicate."""
        values = np.asarray(values)
        if values.shape[1] != self.dimensions:
            raise ValueError(
                f"query has {self.dimensions} ranges but data has "
                f"{values.shape[1]} columns"
            )
        mask = np.ones(values.shape[0], dtype=bool)
        for j, (low, high) in enumerate(self.ranges):
            mask &= (values[:, j] >= low) & (values[:, j] <= high)
        return mask

    def count(self, dataset: Dataset) -> int:
        """Exact answer on a dataset."""
        return int(self.matches(dataset.values).sum())


def _random_interval(domain_size: int, rng: np.random.Generator) -> Range:
    """A uniformly random non-empty inclusive interval of the domain."""
    a = int(rng.integers(0, domain_size))
    b = int(rng.integers(0, domain_size))
    return (a, b) if a <= b else (b, a)


def random_workload(
    schema: Schema,
    n_queries: int,
    rng: RngLike = None,
) -> List[RangeQuery]:
    """``n_queries`` queries with uniformly random intervals on every axis."""
    check_int_at_least("n_queries", n_queries, 1)
    gen = as_generator(rng)
    workload = []
    for _ in range(n_queries):
        ranges = tuple(_random_interval(a.domain_size, gen) for a in schema)
        workload.append(RangeQuery(ranges))
    return workload


def _interval_with_length(
    domain_size: int, length: int, rng: np.random.Generator
) -> Range:
    """A random interval of exactly ``length`` cells (clamped to fit)."""
    length = int(np.clip(length, 1, domain_size))
    start = int(rng.integers(0, domain_size - length + 1))
    return (start, start + length - 1)


def anchored_workload(
    dataset: Dataset,
    n_queries: int,
    rng: RngLike = None,
) -> List[RangeQuery]:
    """Random range queries guaranteed to contain at least one record.

    Each query anchors on a uniformly chosen data record: on every axis
    the interval's endpoints are drawn uniformly at or below / at or
    above the record's value.  High-dimensional skewed data makes fully
    random workloads degenerate (essentially every query is empty, so
    every method scores a trivial zero); anchoring keeps the true
    answers informative while preserving random shapes and positions.
    """
    check_int_at_least("n_queries", n_queries, 1)
    if dataset.n_records == 0:
        raise ValueError("cannot anchor queries on an empty dataset")
    gen = as_generator(rng)
    schema = dataset.schema
    workload = []
    for _ in range(n_queries):
        record = dataset.values[int(gen.integers(0, dataset.n_records))]
        ranges = []
        for j, attribute in enumerate(schema):
            value = int(record[j])
            low = int(gen.integers(0, value + 1))
            high = int(gen.integers(value, attribute.domain_size))
            ranges.append((low, high))
        workload.append(RangeQuery(tuple(ranges)))
    return workload


def workload_with_volume(
    schema: Schema,
    target_volume: float,
    n_queries: int,
    rng: RngLike = None,
) -> List[RangeQuery]:
    """Queries whose covered cell count is ≈ ``target_volume`` (Figure 8).

    The target volume is factored into per-axis lengths by splitting its
    logarithm randomly across axes (a random composition), so repeated
    draws vary in shape while keeping the product fixed up to rounding.
    """
    check_int_at_least("n_queries", n_queries, 1)
    if target_volume < 1:
        raise ValueError(f"target_volume must be >= 1, got {target_volume}")
    gen = as_generator(rng)
    m = schema.dimensions
    max_volume = schema.domain_space()
    target_volume = min(float(target_volume), max_volume)
    log_target = np.log(target_volume)

    workload = []
    for _ in range(n_queries):
        # Random composition of log-volume across axes, respecting each
        # axis's maximum length; residual spills to the remaining axes.
        weights = gen.dirichlet(np.ones(m))
        log_lengths = weights * log_target
        lengths = []
        order = gen.permutation(m)
        log_lengths = log_lengths[order]
        sizes = [schema[j].domain_size for j in order]
        residual = 0.0
        for position, (log_length, size) in enumerate(zip(log_lengths, sizes)):
            if position == m - 1:
                # Last axis absorbs all remaining volume exactly.
                produced = float(np.prod(lengths)) if lengths else 1.0
                desired = target_volume / produced
            else:
                desired = np.exp(log_length + residual)
            actual = int(np.clip(round(desired), 1, size))
            residual = log_length + residual - np.log(actual)
            lengths.append(actual)
        # Corrective pass: domain clipping can leave the volume far off
        # target; redistribute onto axes that still have headroom.
        for _ in range(4 * m):
            volume = float(np.prod(lengths))
            ratio = target_volume / volume
            if 0.75 <= ratio <= 1.33:
                break
            if ratio > 1:
                candidates = [j for j in range(m) if lengths[j] < sizes[j]]
            else:
                candidates = [j for j in range(m) if lengths[j] > 1]
            if not candidates:
                break
            j = max(
                candidates,
                key=lambda i: sizes[i] / lengths[i] if ratio > 1 else lengths[i],
            )
            adjusted = int(np.clip(round(lengths[j] * ratio), 1, sizes[j]))
            if adjusted == lengths[j]:
                adjusted = int(
                    np.clip(lengths[j] + (1 if ratio > 1 else -1), 1, sizes[j])
                )
            if adjusted == lengths[j]:
                break
            lengths[j] = adjusted
        ranges: List[Range] = [None] * m  # type: ignore[list-item]
        for position, j in enumerate(order):
            ranges[j] = _interval_with_length(
                schema[j].domain_size, lengths[position], gen
            )
        workload.append(RangeQuery(tuple(ranges)))
    return workload
