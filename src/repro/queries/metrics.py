"""Distributional utility metrics for synthetic data.

The paper's evaluation uses range-count accuracy; these complementary
metrics are the standard synthetic-data diagnostics a practitioner would
also run, and the ablation/report tooling uses them:

* per-margin total variation distance and Kolmogorov distance;
* pairwise dependence error (max |Δτ| over attribute pairs);
* two-way marginal error (TVD over a coarsened 2-D grid for each pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.stats.kendall import kendall_tau_matrix
from repro.utils import RngLike, as_generator, check_int_at_least


def _check_comparable(original: Dataset, synthetic: Dataset) -> None:
    if original.schema != synthetic.schema:
        raise ValueError("datasets must share a schema to be compared")
    if original.n_records == 0 or synthetic.n_records == 0:
        raise ValueError("cannot compare empty datasets")


def margin_tvd(original: Dataset, synthetic: Dataset, index: int) -> float:
    """Total variation distance between one attribute's distributions."""
    _check_comparable(original, synthetic)
    p = original.marginal_counts(index) / original.n_records
    q = synthetic.marginal_counts(index) / synthetic.n_records
    return 0.5 * float(np.abs(p - q).sum())


def margin_kolmogorov(original: Dataset, synthetic: Dataset, index: int) -> float:
    """Kolmogorov (sup-CDF) distance for one attribute."""
    _check_comparable(original, synthetic)
    p = np.cumsum(original.marginal_counts(index)) / original.n_records
    q = np.cumsum(synthetic.marginal_counts(index)) / synthetic.n_records
    return float(np.abs(p - q).max())


def all_margin_tvds(original: Dataset, synthetic: Dataset) -> List[float]:
    """TVD of every attribute, in schema order."""
    return [
        margin_tvd(original, synthetic, j) for j in range(original.dimensions)
    ]


def pairwise_tau_error(
    original: Dataset,
    synthetic: Dataset,
    max_records: int = 4000,
    rng: RngLike = 0,
) -> float:
    """Max absolute Kendall's-tau difference over all attribute pairs."""
    _check_comparable(original, synthetic)
    gen = as_generator(rng)
    a = original.sample(max_records, gen).values
    b = synthetic.sample(max_records, gen).values
    return float(np.abs(kendall_tau_matrix(a) - kendall_tau_matrix(b)).max())


def _two_way_histogram(
    dataset: Dataset, i: int, j: int, bins: int
) -> np.ndarray:
    size_i = dataset.schema[i].domain_size
    size_j = dataset.schema[j].domain_size
    edges_i = np.unique(np.linspace(0, size_i, min(bins, size_i) + 1).astype(int))
    edges_j = np.unique(np.linspace(0, size_j, min(bins, size_j) + 1).astype(int))
    counts, _, _ = np.histogram2d(
        dataset.column(i), dataset.column(j), bins=[edges_i, edges_j]
    )
    return counts / dataset.n_records


def two_way_tvd(
    original: Dataset, synthetic: Dataset, i: int, j: int, bins: int = 16
) -> float:
    """TVD between the (coarsened) two-way marginals of attributes i, j."""
    _check_comparable(original, synthetic)
    check_int_at_least("bins", bins, 2)
    p = _two_way_histogram(original, i, j, bins)
    q = _two_way_histogram(synthetic, i, j, bins)
    return 0.5 * float(np.abs(p - q).sum())


@dataclass(frozen=True)
class UtilityReport:
    """All distributional metrics of one synthetic release."""

    margin_tvds: Tuple[float, ...]
    margin_kolmogorovs: Tuple[float, ...]
    max_tau_error: float
    two_way_tvds: Dict[Tuple[int, int], float]

    @property
    def worst_margin_tvd(self) -> float:
        return max(self.margin_tvds)

    @property
    def worst_two_way_tvd(self) -> float:
        return max(self.two_way_tvds.values()) if self.two_way_tvds else 0.0

    def __str__(self) -> str:
        return (
            f"UtilityReport(worst margin TVD={self.worst_margin_tvd:.4f}, "
            f"max |dtau|={self.max_tau_error:.4f}, "
            f"worst 2-way TVD={self.worst_two_way_tvd:.4f})"
        )


def utility_report(
    original: Dataset,
    synthetic: Dataset,
    two_way_bins: int = 16,
    rng: RngLike = 0,
) -> UtilityReport:
    """Compute the full distributional diagnostic suite."""
    _check_comparable(original, synthetic)
    m = original.dimensions
    tvds = tuple(all_margin_tvds(original, synthetic))
    kolmogorovs = tuple(
        margin_kolmogorov(original, synthetic, j) for j in range(m)
    )
    tau_error = pairwise_tau_error(original, synthetic, rng=rng)
    pair_tvds = {
        (i, j): two_way_tvd(original, synthetic, i, j, bins=two_way_bins)
        for i in range(m)
        for j in range(i + 1, m)
    }
    return UtilityReport(
        margin_tvds=tvds,
        margin_kolmogorovs=kolmogorovs,
        max_tau_error=tau_error,
        two_way_tvds=pair_tvds,
    )
