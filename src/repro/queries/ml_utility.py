"""Train-on-synthetic / test-on-real ML utility harness.

The standard end-to-end test of a DP synthesizer: train a classifier on
the synthetic records, test it on held-out *real* records, and compare
against the same model trained on real data.  A good synthesizer loses
little accuracy; the gap (the **delta**) is the utility metric.

Everything here is stdlib + numpy and fully deterministic — no random
state is consumed anywhere in this module, so the same inputs always
produce bitwise-identical metrics (the determinism test relies on
this).  Randomness enters only through :func:`train_test_split`, which
takes an explicit seed.

Models (both intentionally simple — the workload measures the *data*,
not the model):

* ``"logistic"`` — full-batch gradient-descent logistic regression over
  one-hot encoded features, zero-initialized, fixed epoch count;
* ``"stump"`` — a one-feature decision stump chosen by training error,
  scored by the per-side positive rate (so it has a usable AUC).

The target column follows the :class:`~repro.data.dataset.Schema`
convention: pass ``target=`` explicitly or annotate the schema with
``Schema.with_target(name)`` first.  Non-binary targets are binarized
at the domain midpoint (label 1 iff ``value ≥ domain_size / 2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.queries.workloads import coarse_edges
from repro.utils import RngLike, as_generator, check_probability

__all__ = [
    "MLUtilityReport",
    "ModelScore",
    "ml_utility",
    "train_test_split",
]

#: Feature bucket bound: attributes with larger domains are coarsened
#: before one-hot encoding so the design matrix stays small.
_FEATURE_BINS = 16

_LOGISTIC_EPOCHS = 200
_LOGISTIC_LEARNING_RATE = 0.5


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.25, rng: RngLike = 0
) -> Tuple[Dataset, Dataset]:
    """Deterministic shuffle-split into (train, test) datasets."""
    check_probability("test_fraction", test_fraction)
    n = dataset.n_records
    n_test = int(round(n * test_fraction))
    if n_test == 0 or n_test == n:
        raise ValueError(
            f"test_fraction={test_fraction} leaves an empty split for {n} records"
        )
    order = as_generator(rng).permutation(n)
    test = Dataset(dataset.values[order[:n_test]], dataset.schema)
    train = Dataset(dataset.values[order[n_test:]], dataset.schema)
    return train, test


def _resolve_target(dataset: Dataset, target: Optional[str]) -> int:
    if target is not None:
        return dataset.schema.index_of(target)
    return dataset.schema.target_index


def _labels(dataset: Dataset, target_index: int) -> np.ndarray:
    """Binary labels: 1 iff the target value is in the domain's top half."""
    domain = dataset.schema[target_index].domain_size
    return (2 * dataset.column(target_index) >= domain).astype(float)


def _features(dataset: Dataset, target_index: int) -> np.ndarray:
    """One-hot design matrix over bucketized non-target attributes."""
    blocks = []
    for j, attribute in enumerate(dataset.schema):
        if j == target_index:
            continue
        edges = np.asarray(coarse_edges(attribute.domain_size, _FEATURE_BINS))
        buckets = np.searchsorted(edges, dataset.column(j), side="right") - 1
        block = np.zeros((dataset.n_records, len(edges) - 1))
        block[np.arange(dataset.n_records), buckets] = 1.0
        blocks.append(block)
    return np.hstack(blocks)


def _fit_logistic(features: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Full-batch GD logistic regression; returns weights (bias last)."""
    x = np.hstack([features, np.ones((features.shape[0], 1))])
    weights = np.zeros(x.shape[1])
    n = x.shape[0]
    for _ in range(_LOGISTIC_EPOCHS):
        scores = np.clip(x @ weights, -30.0, 30.0)
        probabilities = 1.0 / (1.0 + np.exp(-scores))
        gradient = x.T @ (probabilities - labels) / n
        weights -= _LOGISTIC_LEARNING_RATE * gradient
    return weights


def _score_logistic(weights: np.ndarray, features: np.ndarray) -> np.ndarray:
    x = np.hstack([features, np.ones((features.shape[0], 1))])
    return 1.0 / (1.0 + np.exp(-np.clip(x @ weights, -30.0, 30.0)))


def _fit_stump(features: np.ndarray, labels: np.ndarray) -> Tuple[int, float, float]:
    """Best single binary feature; returns (index, p(y=1|on), p(y=1|off)).

    Ties in training error break toward the lowest feature index, so the
    fit is deterministic regardless of dict/iteration order.
    """
    n = max(features.shape[0], 1)
    on_counts = features.sum(axis=0)
    on_positive = features.T @ labels
    off_counts = n - on_counts
    off_positive = labels.sum() - on_positive
    with np.errstate(invalid="ignore", divide="ignore"):
        p_on = np.where(on_counts > 0, on_positive / on_counts, labels.mean())
        p_off = np.where(off_counts > 0, off_positive / off_counts, labels.mean())
    # Training error when predicting the majority class on each side.
    errors = (
        np.minimum(on_positive, on_counts - on_positive)
        + np.minimum(off_positive, off_counts - off_positive)
    ) / n
    best = int(np.argmin(errors))
    return best, float(p_on[best]), float(p_off[best])


def _score_stump(
    stump: Tuple[int, float, float], features: np.ndarray
) -> np.ndarray:
    index, p_on, p_off = stump
    return np.where(features[:, index] > 0.5, p_on, p_off)


def _auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Rank-based (Mann-Whitney) AUC with average-rank tie handling."""
    positives = labels > 0.5
    n_pos = int(positives.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(scores.size, dtype=float)
    ranks[order] = np.arange(1, scores.size + 1, dtype=float)
    # Average ranks across ties so the AUC is permutation-invariant.
    sorted_scores = scores[order]
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0) + 1
    for start, stop in zip(
        np.concatenate([[0], boundaries]),
        np.concatenate([boundaries, [scores.size]]),
    ):
        ranks[order[start:stop]] = 0.5 * (start + 1 + stop)
    rank_sum = ranks[positives].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def _accuracy(scores: np.ndarray, labels: np.ndarray) -> float:
    return float(((scores >= 0.5).astype(float) == labels).mean())


@dataclass(frozen=True)
class ModelScore:
    """One model's real-vs-synthetic comparison on the real test set."""

    model: str
    real_accuracy: float
    synthetic_accuracy: float
    real_auc: float
    synthetic_auc: float

    @property
    def accuracy_delta(self) -> float:
        """Accuracy lost by training on synthetic instead of real data."""
        return self.real_accuracy - self.synthetic_accuracy

    @property
    def auc_delta(self) -> float:
        return self.real_auc - self.synthetic_auc

    def to_dict(self) -> Dict[str, float]:
        return {
            "model": self.model,
            "real_accuracy": self.real_accuracy,
            "synthetic_accuracy": self.synthetic_accuracy,
            "accuracy_delta": self.accuracy_delta,
            "real_auc": self.real_auc,
            "synthetic_auc": self.synthetic_auc,
            "auc_delta": self.auc_delta,
        }


@dataclass(frozen=True)
class MLUtilityReport:
    """All models' scores plus the workload's configuration."""

    target: str
    scores: Tuple[ModelScore, ...]

    @property
    def worst_accuracy_delta(self) -> float:
        return max(score.accuracy_delta for score in self.scores)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "worst_accuracy_delta": self.worst_accuracy_delta,
            "models": [score.to_dict() for score in self.scores],
        }

    def __str__(self) -> str:
        parts = ", ".join(
            f"{s.model}: Δacc={s.accuracy_delta:+.4f} Δauc={s.auc_delta:+.4f}"
            for s in self.scores
        )
        return f"ML utility on {self.target!r}: {parts}"


_MODELS = {
    "logistic": (_fit_logistic, _score_logistic),
    "stump": (_fit_stump, _score_stump),
}


def ml_utility(
    real_train: Dataset,
    real_test: Dataset,
    synthetic: Dataset,
    target: Optional[str] = None,
    models: Sequence[str] = ("logistic", "stump"),
) -> MLUtilityReport:
    """Train-on-synthetic/test-on-real comparison for each model.

    All three datasets must share the schema (the synthesizer's output
    schema compares equal to the original's by construction).  The
    target comes from ``target=`` or the schema annotation; see
    :meth:`repro.data.dataset.Schema.with_target`.
    """
    for name, dataset in (("real_test", real_test), ("synthetic", synthetic)):
        if dataset.schema != real_train.schema:
            raise ValueError(f"{name} schema differs from real_train schema")
        if dataset.n_records == 0:
            raise ValueError(f"{name} dataset is empty")
    if real_train.n_records == 0:
        raise ValueError("real_train dataset is empty")
    target_index = _resolve_target(real_train, target)
    target_name = real_train.schema[target_index].name

    test_features = _features(real_test, target_index)
    test_labels = _labels(real_test, target_index)
    scores = []
    for model in models:
        if model not in _MODELS:
            raise ValueError(
                f"unknown model {model!r}; choose from {sorted(_MODELS)}"
            )
        fit, score = _MODELS[model]
        predictions = {}
        for kind, train in (("real", real_train), ("synthetic", synthetic)):
            fitted = fit(_features(train, target_index), _labels(train, target_index))
            predictions[kind] = score(fitted, test_features)
        scores.append(
            ModelScore(
                model=model,
                real_accuracy=_accuracy(predictions["real"], test_labels),
                synthetic_accuracy=_accuracy(predictions["synthetic"], test_labels),
                real_auc=_auc(predictions["real"], test_labels),
                synthetic_auc=_auc(predictions["synthetic"], test_labels),
            )
        )
    return MLUtilityReport(target=target_name, scores=tuple(scores))
