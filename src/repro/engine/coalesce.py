"""Request coalescing: many concurrent sample requests, one vectorized draw.

Under concurrent load the serve hot path spends more time in per-call
overhead (Python dispatch, small-array BLAS, CDF setup) than in useful
arithmetic.  The :class:`RequestCoalescer` merges concurrent requests
against the same plan into one
:meth:`~repro.engine.plan.SamplerPlan.sample_batch` call using a
*leader/follower* scheme with leadership hand-off:

* the first request to arrive for a ``(model_id, generation)`` key
  becomes the **leader**: it optionally holds the batch open for one
  coalescing window, drains the queue into a batch (which always
  contains its own request) and executes it;
* requests arriving while a batch executes park as **followers**; when
  the leader finishes it promotes the oldest parked follower to lead
  the next batch, so a busy key forms back-to-back batches with zero
  idle time even when ``window_seconds`` is 0 — and no single request
  is ever pinned serving other people's batches after its own is done.

Determinism: each request carries its *own* ``np.random.Generator``,
and ``sample_batch`` draws and matmuls per request — so a request's
records are bitwise identical whether it was coalesced or served alone.
The batch only fuses the slice-stable elementwise stages.

Resilience: the queue is bounded (:class:`EngineOverloadedError`,
mapped to HTTP 429 upstream), waits are deadline-aware (an ambient
:func:`~repro.resilience.deadlines.current_deadline` shortens the
coalescing window and bounds the follower park; an abandoning follower
removes itself and passes leadership on), and a failed batch poisons
only the requests in it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Hashable, List, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.engine.plan import SamplerPlan
from repro.resilience.deadlines import current_deadline
from repro.telemetry import get_logger, metrics

__all__ = ["EngineOverloadedError", "RequestCoalescer"]

_logger = get_logger("engine.coalesce")

_BATCH_SIZE = metrics.REGISTRY.histogram(
    "dpcopula_coalesced_batch_size",
    "Requests merged into one vectorized sampling batch",
    buckets=metrics.DEFAULT_FANOUT_BUCKETS,
)
_REJECTED = metrics.REGISTRY.counter(
    "dpcopula_engine_rejected_total",
    "Sample requests refused because the coalescer queue was full",
)


class EngineOverloadedError(RuntimeError):
    """The coalescer's pending-request queue is at capacity.

    ``retry_after`` is a backoff hint the service layer surfaces as a
    ``Retry-After`` header on the 429 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class _PendingRequest:
    """One parked request: inputs in, result (or error or the baton) out."""

    __slots__ = ("n", "rng", "event", "result", "error", "lead")

    def __init__(self, n: int, rng: np.random.Generator):
        self.n = int(n)
        self.rng = rng
        self.event = threading.Event()
        self.result: Optional[Dataset] = None
        self.error: Optional[BaseException] = None
        #: Set (under the coalescer lock) to wake this follower as the
        #: next leader instead of with a result.
        self.lead = False


class _KeyState:
    """Queue + leadership flag for one ``(model_id, generation)`` key."""

    __slots__ = ("queue", "leader_active", "arrivals")

    def __init__(self, lock: threading.Lock):
        self.queue: Deque[_PendingRequest] = deque()
        self.leader_active = False
        # Notified on every enqueue so a window-holding leader can flush
        # early once the batch is full.
        self.arrivals = threading.Condition(lock)


class RequestCoalescer:
    """Micro-batches concurrent sample requests per ``(model, generation)``.

    Parameters
    ----------
    window_seconds:
        How long a leader holds the batch open for companions before
        executing.  ``0`` (the default) never waits — requests still
        coalesce whenever they arrive while a batch is executing, so
        throughput scales with load at zero idle-latency cost.
    max_batch_records:
        Record budget per executed batch; a drain stops adding requests
        once the batch would exceed it (the first request is always
        taken, whatever its size).
    max_pending_requests:
        Bound on requests parked across all keys.  Arrivals beyond it
        are refused with :class:`EngineOverloadedError`.  ``None``
        disables the bound.
    """

    def __init__(
        self,
        window_seconds: float = 0.0,
        max_batch_records: int = 262_144,
        max_pending_requests: Optional[int] = 256,
    ):
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0, got {window_seconds}")
        if max_batch_records < 1:
            raise ValueError(
                f"max_batch_records must be >= 1, got {max_batch_records}"
            )
        if max_pending_requests is not None and max_pending_requests < 1:
            raise ValueError(
                f"max_pending_requests must be >= 1 or None, "
                f"got {max_pending_requests}"
            )
        self.window_seconds = float(window_seconds)
        self.max_batch_records = int(max_batch_records)
        self.max_pending_requests = (
            None if max_pending_requests is None else int(max_pending_requests)
        )
        self._lock = threading.Lock()
        self._states: Dict[Hashable, _KeyState] = {}
        self._total_pending = 0

    def pending(self) -> int:
        """Requests currently parked or queued (scrape-time gauge source)."""
        with self._lock:
            return self._total_pending

    # -- request path -----------------------------------------------------

    def sample(self, plan: SamplerPlan, n: int, rng: np.random.Generator) -> Dataset:
        """Draw ``n`` records from ``plan``, coalescing with concurrent peers.

        Bitwise identical to ``plan.sample(n, rng)`` for the same
        generator state, whatever batching happens around it.
        """
        key = (plan.model_id, plan.generation)
        pending = _PendingRequest(n, rng)
        with self._lock:
            if (
                self.max_pending_requests is not None
                and self._total_pending >= self.max_pending_requests
            ):
                _REJECTED.inc()
                raise EngineOverloadedError(
                    f"sampling engine overloaded: {self._total_pending} "
                    f"requests already pending (limit "
                    f"{self.max_pending_requests})"
                )
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _KeyState(self._lock)
            state.queue.append(pending)
            self._total_pending += 1
            state.arrivals.notify_all()
            is_leader = not state.leader_active
            if is_leader:
                state.leader_active = True
        if is_leader:
            self._lead(key, state, plan)
        else:
            self._follow(key, state, plan, pending)
        if pending.error is not None:
            raise pending.error
        if pending.result is None:  # pragma: no cover - defensive
            raise RuntimeError("coalesced request finished without a result")
        return pending.result

    # -- leader side ------------------------------------------------------

    def _lead(self, key: Hashable, state: _KeyState, plan: SamplerPlan) -> None:
        """Execute one batch (containing our own request), then hand off.

        Leadership transfers under the lock, so a racing arrival either
        sees the flag still set (and parks) or becomes the new leader
        itself — never neither.
        """
        try:
            self._hold_window(state)
            with self._lock:
                batch = self._drain_locked(state)
            if batch:
                self._execute(plan, batch)
        except BaseException as exc:  # pragma: no cover - defensive
            self._strand(key, state, exc)
            raise
        with self._lock:
            self._pass_leadership_locked(key, state)

    def _hold_window(self, state: _KeyState) -> None:
        """Hold the batch open for up to the coalescing window.

        Deadline-aware: an ambient request deadline caps the hold so
        coalescing can never push a request past its budget, and a full
        batch flushes immediately.
        """
        if self.window_seconds <= 0:
            return
        window = self.window_seconds
        deadline = current_deadline()
        if deadline is not None:
            window = min(window, deadline.remaining())
        flush_at = time.monotonic() + window
        with self._lock:
            while True:
                if sum(r.n for r in state.queue) >= self.max_batch_records:
                    return
                remaining = flush_at - time.monotonic()
                if remaining <= 0:
                    return
                state.arrivals.wait(remaining)

    def _drain_locked(self, state: _KeyState) -> List[_PendingRequest]:
        """Pop the next batch (caller holds the lock)."""
        batch: List[_PendingRequest] = []
        records = 0
        while state.queue:
            request = state.queue[0]
            if batch and records + request.n > self.max_batch_records:
                break
            batch.append(state.queue.popleft())
            records += request.n
        self._total_pending -= len(batch)
        return batch

    def _pass_leadership_locked(self, key: Hashable, state: _KeyState) -> None:
        """Promote the oldest parked follower, or retire the key."""
        if state.queue:
            successor = state.queue[0]
            successor.lead = True
            successor.event.set()
        else:
            state.leader_active = False
            self._states.pop(key, None)

    def _strand(
        self, key: Hashable, state: _KeyState, exc: BaseException
    ) -> None:
        """Fail every queued request and retire the key (leader died)."""
        with self._lock:
            stranded = list(state.queue)
            state.queue.clear()
            self._total_pending -= len(stranded)
            state.leader_active = False
            self._states.pop(key, None)
        for request in stranded:
            request.error = exc
            request.event.set()

    def _execute(self, plan: SamplerPlan, batch: List[_PendingRequest]) -> None:
        """Run one coalesced draw and publish per-request results."""
        _BATCH_SIZE.observe(len(batch))
        try:
            results = plan.sample_batch([(r.n, r.rng) for r in batch])
        except BaseException as exc:
            for request in batch:
                request.error = exc
                request.event.set()
            _logger.warning(
                "coalesced batch failed",
                extra={
                    "model_id": plan.model_id,
                    "batch_requests": len(batch),
                    "cause": f"{type(exc).__name__}: {exc}",
                },
            )
            return
        for request, result in zip(batch, results):
            request.result = result
            request.event.set()

    # -- follower side ----------------------------------------------------

    def _follow(
        self,
        key: Hashable,
        state: _KeyState,
        plan: SamplerPlan,
        pending: _PendingRequest,
    ) -> None:
        """Park until a result arrives or the leadership baton does."""
        deadline = current_deadline()
        while True:
            if deadline is None:
                pending.event.wait()
            else:
                while not pending.event.wait(timeout=max(deadline.remaining(), 0.001)):
                    try:
                        # Raises DeadlineExceeded once the budget is
                        # spent (and never returns normally after that).
                        deadline.check("coalesced sample")
                    except BaseException:
                        self._abandon(key, state, pending)
                        raise
            if pending.result is not None or pending.error is not None:
                return
            if pending.lead:
                # Promoted: our request is still at the head of the
                # queue, so leading drains it into our own batch.
                pending.lead = False
                pending.event.clear()
                self._lead(key, state, plan)
                return

    def _abandon(
        self, key: Hashable, state: _KeyState, pending: _PendingRequest
    ) -> None:
        """Withdraw a deadline-expired follower without stranding peers.

        If the request was already drained into an executing batch the
        leader will still compute (and drop) its result — wasted work
        but harmless.  If we held the leadership baton, pass it on.
        """
        with self._lock:
            try:
                state.queue.remove(pending)
                self._total_pending -= 1
            except ValueError:
                pass
            if pending.lead:
                pending.lead = False
                self._pass_leadership_locked(key, state)
