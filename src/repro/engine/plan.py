"""Compiled sampler plans: per-model work done once, not per request.

Sampling a released copula model (paper Algorithm 3) splits into two
kinds of work.  *Per-model* work — repairing and factorizing the DP
correlation matrix, normalizing the noisy margin counts into CDF lookup
tables — depends only on the released state and is identical for every
request.  *Per-request* work — drawing latent normals, the normal-CDF
push, the inverse-margin lookup — is three vectorized passes.  A
:class:`SamplerPlan` hoists all per-model work to compile time so the
request path is exactly those three passes against read-only arrays.

Bitwise contract: for the same ``np.random.Generator`` state,
:meth:`SamplerPlan.sample` produces bit-for-bit the records of
:meth:`repro.io.ReleasedModel.sample` — the plan caches the *inputs*
to the hot loop (Cholesky factor, inverter tables), never changes the
operations.  (The normal-CDF push uses :func:`scipy.special.ndtr`
directly — the exact kernel ``scipy.stats.norm.cdf`` evaluates, minus
the distribution-dispatch overhead; the outputs are bit-identical.)  :meth:`SamplerPlan.sample_batch` extends the contract to
coalesced execution: each request's latent block is drawn from its own
generator and multiplied at its own shape (single-row slices of a large
GEMM are *not* bitwise stable across BLAS kernels, so the matmul is
deliberately per-request), while the elementwise normal-CDF and the
``searchsorted`` margin inversion — which are slice-stable — run once
over the whole batch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import special as sc

from repro.core.sampling import BatchedMarginInverter
from repro.data.dataset import Attribute, Dataset, Schema
from repro.io import ReleasedModel
from repro.stats.copula_math import cholesky_factor
from repro.stats.ecdf import HistogramCDF
from repro.utils import check_int_at_least

__all__ = ["SamplerPlan", "compile_plan"]

#: Version tag for published plan arrays; bump when the array set or
#: their meaning changes so a stale shared store fails loudly.
PLAN_FORMAT_VERSION = 1


class SamplerPlan:
    """Everything Algorithm 3 needs to sample, precomputed and read-only.

    Parameters
    ----------
    model_id:
        Registry id of the model this plan was compiled from.
    generation:
        Monotone per-model counter assigned by the registry; a hot-swap
        bumps it, which is how shared stores and coalescers recognize
        (and retire) stale plans.
    cholesky:
        Lower-triangular factor of the (repaired) DP correlation matrix.
    inverter:
        Precomputed :class:`~repro.core.sampling.BatchedMarginInverter`
        over the model's DP margins.
    schema:
        Output schema (the sampled ``Dataset``'s domain metadata).
    n_records:
        The model's default sample size.
    epsilon:
        Privacy budget recorded on the released model (metadata only).
    """

    __slots__ = (
        "model_id",
        "generation",
        "cholesky",
        "inverter",
        "schema",
        "n_records",
        "epsilon",
    )

    def __init__(
        self,
        model_id: str,
        generation: int,
        cholesky: np.ndarray,
        inverter: BatchedMarginInverter,
        schema: Schema,
        n_records: int,
        epsilon: float,
    ):
        self.model_id = str(model_id)
        self.generation = int(generation)
        self.cholesky = np.asarray(cholesky, dtype=float)
        self.inverter = inverter
        self.schema = schema
        self.n_records = int(n_records)
        self.epsilon = float(epsilon)
        if self.cholesky.ndim != 2 or self.cholesky.shape[0] != self.cholesky.shape[1]:
            raise ValueError(
                f"cholesky must be square, got shape {self.cholesky.shape}"
            )
        if self.cholesky.shape[0] != schema.dimensions:
            raise ValueError(
                f"cholesky is {self.cholesky.shape[0]}-dimensional but the "
                f"schema has {schema.dimensions} attributes"
            )

    @property
    def m(self) -> int:
        """Number of attributes (the latent dimension)."""
        return self.cholesky.shape[0]

    # -- sampling ---------------------------------------------------------

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        chunk_size: Optional[int] = None,
    ) -> Dataset:
        """One request: bitwise identical to ``ReleasedModel.sample``.

        ``chunk_size`` bounds the transient ``(n, m)`` work arrays
        without changing the output (``standard_normal`` fills C-order
        rows from one stream, so row-chunked draws consume the generator
        identically).
        """
        check_int_at_least("n", n, 1)
        step = n if chunk_size is None else check_int_at_least(
            "chunk_size", chunk_size, 1
        )
        out = np.empty((n, self.m), dtype=np.int64)
        for start in range(0, n, step):
            stop = min(start + step, n)
            latent = rng.standard_normal((stop - start, self.m)) @ self.cholesky.T
            out[start:stop] = self.inverter(sc.ndtr(latent))
        return Dataset(out, self.schema)

    def sample_batch(
        self, requests: Sequence[Tuple[int, np.random.Generator]]
    ) -> List[Dataset]:
        """Coalesced execution of many requests in one vectorized pass.

        Each ``(n, generator)`` request's output is bitwise identical to
        a serial ``self.sample(n, generator)`` call: the latent draw and
        the Cholesky matmul run per request (their results depend on the
        generator state and, for BLAS, on the operand shapes), while the
        elementwise normal CDF and the banded ``searchsorted`` inversion
        — both verified slice-stable — run once over the whole batch.
        """
        if not requests:
            return []
        sizes = [check_int_at_least("n", n, 1) for n, _ in requests]
        total = int(sum(sizes))
        latent = np.empty((total, self.m), dtype=float)
        offset = 0
        for (n, gen), size in zip(requests, sizes):
            block = gen.standard_normal((size, self.m)) @ self.cholesky.T
            latent[offset : offset + size] = block
            offset += size
        records = self.inverter(sc.ndtr(latent))
        results: List[Dataset] = []
        offset = 0
        for size in sizes:
            # Dataset copies its values, so the slice does not pin the
            # whole batch array in memory.
            results.append(Dataset(records[offset : offset + size], self.schema))
            offset += size
        return results

    # -- publication ------------------------------------------------------

    def arrays(self) -> Dict[str, np.ndarray]:
        """The plan's numeric state, for shared stores."""
        tables = self.inverter.tables()
        return {
            "cholesky": self.cholesky,
            "margin_flat": tables["flat"],
            "margin_bands": tables["bands"],
            "margin_starts": tables["starts"],
            "margin_limits": tables["limits"],
        }

    def metadata(self) -> Dict[str, Any]:
        """The plan's non-array state, JSON-serializable."""
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "model_id": self.model_id,
            "generation": self.generation,
            "schema": [[a.name, a.domain_size] for a in self.schema],
            "n_records": self.n_records,
            "epsilon": self.epsilon,
        }

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], metadata: Dict[str, Any]
    ) -> "SamplerPlan":
        """Rebuild a plan around published arrays (mmap or shared memory).

        The arrays are used as-is — no copies — so many processes can
        serve from one physical plan.
        """
        version = int(metadata.get("format_version", 1))
        if version != PLAN_FORMAT_VERSION:
            raise ValueError(
                f"published plan has format version {version}; this build "
                f"reads version {PLAN_FORMAT_VERSION}"
            )
        schema = Schema(
            Attribute(name, int(size)) for name, size in metadata["schema"]
        )
        inverter = BatchedMarginInverter.from_tables(
            arrays["margin_flat"],
            arrays["margin_bands"],
            arrays["margin_starts"],
            arrays["margin_limits"],
        )
        return cls(
            model_id=metadata["model_id"],
            generation=metadata["generation"],
            cholesky=arrays["cholesky"],
            inverter=inverter,
            schema=schema,
            n_records=metadata["n_records"],
            epsilon=metadata["epsilon"],
        )


def compile_plan(
    model: ReleasedModel, model_id: str, generation: int = 1
) -> SamplerPlan:
    """Compile a released model's per-model sampling work into a plan.

    Performs exactly the per-model steps of
    :func:`repro.core.sampling.sample_synthetic` — PSD repair + Cholesky
    via :func:`repro.stats.copula_math.cholesky_factor`, margin CDF
    normalization, inverter table construction — so plan-based sampling
    is bitwise identical to the uncompiled path.
    """
    cholesky = cholesky_factor(model.correlation)
    margins = [HistogramCDF(counts) for counts in model.margin_counts]
    inverter = BatchedMarginInverter(margins)
    return SamplerPlan(
        model_id=model_id,
        generation=generation,
        cholesky=cholesky,
        inverter=inverter,
        schema=model.schema,
        n_records=model.n_records,
        epsilon=model.epsilon,
    )
