"""The sampling-engine facade the synthesis service talks to.

:class:`SamplingEngine` composes the three engine layers behind one
call: resolve the model's compiled plan (from a provider such as
:meth:`~repro.service.registry.ModelRegistry.get_plan`), optionally
re-home its arrays in a shared read-only store, mint the request's
generator, and execute — coalesced with concurrent peers when a
:class:`~repro.engine.coalesce.RequestCoalescer` is configured, or as a
direct plan draw otherwise.

Seeding contract: a request with an explicit ``seed`` gets exactly
``np.random.default_rng(seed)`` — bitwise the generator the pre-engine
serve path used — so seeded requests reproduce historical responses.
Unseeded requests draw from per-request children of one root
``SeedSequence``: statistically independent substreams with no shared
mutable generator state between concurrent requests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.engine.coalesce import RequestCoalescer
from repro.engine.plan import SamplerPlan
from repro.telemetry import current_context, get_logger, metrics

__all__ = ["SamplingEngine"]

_logger = get_logger("engine.engine")

_ENGINE_SECONDS = metrics.REGISTRY.histogram(
    "dpcopula_engine_sample_seconds",
    "Engine sample-request wall-clock seconds (plan resolve + draw)",
)


class SamplingEngine:
    """Serve-side sampling: compiled plans, shared arrays, coalesced draws.

    Parameters
    ----------
    plan_provider:
        ``model_id -> SamplerPlan``; raises ``KeyError`` for unknown
        models.  The provider owns plan caching and generation tagging
        (the registry's ``get_plan``).
    coalescer:
        Optional :class:`~repro.engine.coalesce.RequestCoalescer`;
        ``None`` executes every request as its own draw.
    store:
        Optional shared plan store (``MmapPlanStore`` /
        ``SharedMemoryPlanStore``); ``None`` serves plans process-local.
    seed_root:
        Entropy for the unseeded-request ``SeedSequence``; ``None``
        pulls OS entropy.
    """

    def __init__(
        self,
        plan_provider: Callable[[str], SamplerPlan],
        coalescer: Optional[RequestCoalescer] = None,
        store=None,
        seed_root: Optional[int] = None,
    ):
        self._provider = plan_provider
        self._coalescer = coalescer
        self._store = store
        self._seed_lock = threading.Lock()
        self._seed_sequence = np.random.SeedSequence(seed_root)

    def request_generator(self, seed: Optional[int]) -> np.random.Generator:
        """The request's private generator (see the seeding contract)."""
        if seed is not None:
            return np.random.default_rng(seed)
        with self._seed_lock:
            child = self._seed_sequence.spawn(1)[0]
        return np.random.default_rng(child)

    def plan(self, model_id: str) -> SamplerPlan:
        """The model's current plan, re-homed in the shared store if any."""
        plan = self._provider(model_id)
        if self._store is not None:
            plan = self._store.publish(plan)
        return plan

    def sample(
        self,
        model_id: str,
        n: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Dataset:
        """Draw ``n`` synthetic records (``None``: the model's own size).

        Raises ``KeyError`` for unknown models and
        :class:`~repro.engine.coalesce.EngineOverloadedError` when the
        coalescer queue is full.  Pure post-processing: no privacy
        budget is spent here.
        """
        started = time.perf_counter()
        plan = self.plan(model_id)
        if n is None:
            n = plan.n_records
        rng = self.request_generator(seed)
        if self._coalescer is not None:
            synthetic = self._coalescer.sample(plan, n, rng)
        else:
            synthetic = plan.sample(n, rng)
        # Exemplar: the request id joins this latency bucket to the
        # request's exported trace (JSON snapshot only, never the text
        # exposition).
        context = current_context()
        _ENGINE_SECONDS.observe(
            time.perf_counter() - started,
            exemplar=context.get("request_id") or context.get("job_id"),
        )
        return synthetic

    def pending(self) -> int:
        """Requests parked in the coalescer (scrape-time gauge source)."""
        return self._coalescer.pending() if self._coalescer is not None else 0

    def close(self) -> None:
        """Tear down the shared store, if one is configured."""
        if self._store is not None:
            self._store.close()
