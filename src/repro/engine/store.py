"""Shared read-only plan stores: publish once, serve from every worker.

A compiled :class:`~repro.engine.plan.SamplerPlan` is a handful of
read-only arrays (the Cholesky factor, the inverter's lookup tables).
For pre-fork or pooled deployments the arrays should exist *once* per
machine, not once per process; this module publishes them through two
interchangeable backends:

* :class:`MmapPlanStore` — each array saved as an individual ``.npy``
  file next to a ``manifest.json``, reloaded with
  ``np.load(..., mmap_mode="r")`` so the kernel page cache backs every
  process with one physical copy.  (Individual ``.npy`` files, not an
  NPZ: ``np.load`` silently ignores ``mmap_mode`` inside a zip archive.)
* :class:`SharedMemoryPlanStore` — arrays copied into
  ``multiprocessing.shared_memory`` segments; the manifest carries the
  segment names so sibling processes can :meth:`~SharedMemoryPlanStore.attach`.

Both stores key publications by ``(model_id, generation)``.  A registry
hot-swap bumps the generation, so the next ``publish`` sees a different
key, publishes the new plan and **retires** every older generation of
that model — readers that already hold the old plan keep a valid (if
stale) snapshot, and new requests atomically see only the new one.

The published arrays are strictly read-only.  Sampling from a published
plan is bitwise identical to sampling from the local plan: the bytes are
the same, only their backing storage differs.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import uuid
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.engine.plan import SamplerPlan
from repro.telemetry import get_logger, metrics

__all__ = [
    "MmapPlanStore",
    "SharedMemoryPlanStore",
    "build_plan_store",
]

_logger = get_logger("engine.store")

_PUBLISHED = metrics.REGISTRY.counter(
    "dpcopula_plan_store_published_total",
    "Plans published to the shared read-only store (label: backend)",
)
_RETIRED = metrics.REGISTRY.counter(
    "dpcopula_plan_store_retired_total",
    "Stale plan generations retired from the shared store (label: backend)",
)


class MmapPlanStore:
    """Publishes plans as memory-mapped ``.npy`` files on local disk.

    Layout::

        <directory>/<model_id>/gen-<generation>/
            manifest.json      metadata + array dtypes/shapes
            cholesky.npy       ... one file per plan array ...

    Publication is **multi-process safe**: each publisher stages the
    whole generation in a private ``gen-N.tmp-<pid>-<nonce>`` directory
    and commits it with one ``os.rename``.  When several pre-fork
    workers publish the same generation concurrently, exactly one
    rename wins; losers discard their staging copy and serve the
    winner's bytes (which are bitwise identical).  A crash mid-publish
    leaves only an invisible staging directory — never a torn
    generation.
    """

    backend = "mmap"

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._cache: Dict[str, Tuple[int, SamplerPlan]] = {}

    def _generation_dir(self, model_id: str, generation: int) -> Path:
        return self.directory / model_id / f"gen-{generation}"

    def publish(self, plan: SamplerPlan) -> SamplerPlan:
        """Publish ``plan`` (idempotent per generation); return the shared view.

        The returned plan serves from memory-mapped arrays.  Publishing
        a newer generation retires every older one of the same model.
        """
        with self._lock:
            cached = self._cache.get(plan.model_id)
            if cached is not None and cached[0] == plan.generation:
                return cached[1]
            target = self._generation_dir(plan.model_id, plan.generation)
            if not (target / "manifest.json").exists():
                self._write_generation(plan, target)
            try:
                shared = self._load_locked(plan.model_id, plan.generation)
            except (OSError, KeyError, ValueError):
                # A sibling process retired this generation between our
                # commit and the load (it published a newer one).  The
                # caller's local plan carries the same bytes.
                return plan
            self._cache[plan.model_id] = (plan.generation, shared)
            self._retire_older_locked(plan.model_id, plan.generation)
            return shared

    def _write_generation(self, plan: SamplerPlan, target: Path) -> None:
        """Stage the generation privately, then commit with one rename."""
        staging = target.with_name(
            f"{target.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        staging.mkdir(parents=True, exist_ok=True)
        try:
            manifest: Dict[str, Any] = dict(plan.metadata())
            manifest["arrays"] = {}
            for name, array in plan.arrays().items():
                np.save(staging / f"{name}.npy", array)
                manifest["arrays"][name] = {
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                }
            (staging / "manifest.json").write_text(
                json.dumps(manifest, sort_keys=True, indent=2) + "\n"
            )
            try:
                os.rename(staging, target)
            except OSError:
                # Lost the commit race: a sibling's complete directory
                # already occupies the target.  Its bytes are identical;
                # drop our staging copy and serve the winner's.
                shutil.rmtree(staging, ignore_errors=True)
                if not (target / "manifest.json").exists():
                    raise
                return
            _PUBLISHED.inc(backend=self.backend)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise

    def _load_locked(self, model_id: str, generation: int) -> SamplerPlan:
        target = self._generation_dir(model_id, generation)
        manifest = json.loads((target / "manifest.json").read_text())
        arrays = {
            name: np.load(target / f"{name}.npy", mmap_mode="r")
            for name in manifest["arrays"]
        }
        return SamplerPlan.from_arrays(arrays, manifest)

    def load(self, model_id: str) -> SamplerPlan:
        """Attach to the newest committed generation of ``model_id``.

        For readers that did not publish themselves (e.g. a pre-fork
        worker attaching to the fit owner's publication): scans the
        model's generation directories and memory-maps the highest one
        whose manifest is committed.  Raises ``KeyError`` when nothing
        is published.
        """
        with self._lock:
            model_dir = self.directory / model_id
            newest: Optional[int] = None
            for candidate in model_dir.glob("gen-*"):
                if not (candidate / "manifest.json").exists():
                    continue
                try:
                    generation = int(candidate.name.split("-", 1)[1])
                except (IndexError, ValueError):
                    continue
                if newest is None or generation > newest:
                    newest = generation
            if newest is None:
                raise KeyError(f"no plan published for model {model_id!r}")
            shared = self._load_locked(model_id, newest)
            self._cache[model_id] = (newest, shared)
            return shared

    def _retire_older_locked(self, model_id: str, generation: int) -> None:
        model_dir = self.directory / model_id
        for stale in model_dir.glob("gen-*"):
            try:
                stale_generation = int(stale.name.split("-", 1)[1])
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                continue
            if stale_generation < generation:
                shutil.rmtree(stale, ignore_errors=True)
                _RETIRED.inc(backend=self.backend)
                _logger.debug(
                    "retired stale plan generation",
                    extra={"model_id": model_id, "generation": stale_generation},
                )

    def retire(self, model_id: str) -> None:
        """Drop every published generation of ``model_id``."""
        with self._lock:
            self._cache.pop(model_id, None)
            model_dir = self.directory / model_id
            if model_dir.exists():
                shutil.rmtree(model_dir, ignore_errors=True)
                _RETIRED.inc(backend=self.backend)

    def close(self) -> None:
        """Release cached plan handles (published files stay on disk)."""
        with self._lock:
            self._cache.clear()


class SharedMemoryPlanStore:
    """Publishes plans into ``multiprocessing.shared_memory`` segments.

    Each plan array becomes one POSIX shared-memory segment named
    ``dpc-<pid>-<model_id>-g<generation>-<array>``; the publishing
    process owns the segments (and unlinks them on :meth:`close` /
    :meth:`retire`), sibling processes :meth:`attach` by manifest.
    """

    backend = "shm"

    def __init__(self, prefix: Optional[str] = None):
        import os

        self.prefix = prefix if prefix is not None else f"dpc-{os.getpid()}"
        self._lock = threading.Lock()
        # model_id -> (generation, shared plan, manifest, segments)
        self._published: Dict[str, Tuple[int, SamplerPlan, Dict[str, Any], list]] = {}

    def _segment_name(self, model_id: str, generation: int, array: str) -> str:
        return f"{self.prefix}-{model_id}-g{generation}-{array}"

    def publish(self, plan: SamplerPlan) -> SamplerPlan:
        """Copy the plan's arrays into shared memory (idempotent per generation)."""
        with self._lock:
            existing = self._published.get(plan.model_id)
            if existing is not None:
                if existing[0] == plan.generation:
                    return existing[1]
                self._unlink_locked(plan.model_id)
                _RETIRED.inc(backend=self.backend)
            manifest: Dict[str, Any] = dict(plan.metadata())
            manifest["arrays"] = {}
            segments = []
            arrays: Dict[str, np.ndarray] = {}
            try:
                for name, array in plan.arrays().items():
                    contiguous = np.ascontiguousarray(array)
                    segment = shared_memory.SharedMemory(
                        name=self._segment_name(plan.model_id, plan.generation, name),
                        create=True,
                        size=max(contiguous.nbytes, 1),
                    )
                    segments.append(segment)
                    view = np.ndarray(
                        contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf
                    )
                    view[...] = contiguous
                    arrays[name] = view
                    manifest["arrays"][name] = {
                        "segment": segment.name,
                        "dtype": str(contiguous.dtype),
                        "shape": list(contiguous.shape),
                    }
            except BaseException:
                for segment in segments:
                    segment.close()
                    try:
                        segment.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                raise
            shared = SamplerPlan.from_arrays(arrays, manifest)
            self._published[plan.model_id] = (
                plan.generation,
                shared,
                manifest,
                segments,
            )
            _PUBLISHED.inc(backend=self.backend)
            return shared

    def manifest(self, model_id: str) -> Dict[str, Any]:
        """The attach manifest for a published model (JSON-serializable)."""
        with self._lock:
            entry = self._published.get(model_id)
            if entry is None:
                raise KeyError(f"no plan published for model {model_id!r}")
            return json.loads(json.dumps(entry[2]))

    @classmethod
    def attach(cls, manifest: Dict[str, Any]) -> Tuple[SamplerPlan, list]:
        """Map a sibling publisher's segments into this process.

        Returns the shared plan plus the list of ``SharedMemory``
        handles the caller must keep alive (and ``close()`` when done)
        — dropping them invalidates the plan's array views.
        """
        segments = []
        arrays: Dict[str, np.ndarray] = {}
        try:
            for name, spec in manifest["arrays"].items():
                segment = shared_memory.SharedMemory(name=spec["segment"])
                segments.append(segment)
                arrays[name] = np.ndarray(
                    tuple(spec["shape"]), dtype=spec["dtype"], buffer=segment.buf
                )
        except BaseException:
            for segment in segments:
                segment.close()
            raise
        return SamplerPlan.from_arrays(arrays, manifest), segments

    def _unlink_locked(self, model_id: str) -> None:
        entry = self._published.pop(model_id, None)
        if entry is None:
            return
        for segment in entry[3]:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def retire(self, model_id: str) -> None:
        """Unlink every segment of ``model_id``'s published plan."""
        with self._lock:
            if model_id in self._published:
                self._unlink_locked(model_id)
                _RETIRED.inc(backend=self.backend)

    def close(self) -> None:
        """Unlink every published segment (publisher-side teardown)."""
        with self._lock:
            for model_id in list(self._published):
                self._unlink_locked(model_id)


def build_plan_store(mode: str, directory=None):
    """Factory for the service config's ``shared_store_mode`` knob.

    ``"off"`` returns ``None`` (plans stay process-local), ``"mmap"``
    builds a :class:`MmapPlanStore` under ``directory``, ``"shm"`` a
    :class:`SharedMemoryPlanStore`.
    """
    if mode == "off":
        return None
    if mode == "mmap":
        if directory is None:
            raise ValueError("mmap plan store needs a directory")
        return MmapPlanStore(directory)
    if mode == "shm":
        return SharedMemoryPlanStore()
    raise ValueError(
        f"shared_store_mode must be 'off', 'mmap' or 'shm', got {mode!r}"
    )
