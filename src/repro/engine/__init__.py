"""The sampling engine: compiled plans, shared stores, request coalescing.

The serve hot path (``POST /models/<id>/sample``) used to repeat
per-model work on every request: re-factorize the correlation matrix,
rebuild the inverse-margin lookup tables, revalidate the schema.  This
package compiles that work into a :class:`~repro.engine.plan.SamplerPlan`
once per model and serves every subsequent request from the plan:

* :mod:`repro.engine.plan` — the compiled plan itself (cached Cholesky
  factor, precomputed :class:`~repro.core.sampling.BatchedMarginInverter`
  tables, domain metadata) plus the batched multi-request draw;
* :mod:`repro.engine.store` — read-only plan publication via
  memory-mapped ``.npy`` files or ``multiprocessing.shared_memory``,
  generation-tagged so registry hot-swaps retire stale plans atomically;
* :mod:`repro.engine.coalesce` — micro-batching of concurrent requests
  against the same plan into one vectorized draw, bitwise identical per
  request to an uncoalesced serial draw;
* :mod:`repro.engine.engine` — the facade the service talks to.

Everything here is pure post-processing of already-released DP state:
no code path in this package ever touches original data or spends ε.
"""

from repro.engine.coalesce import EngineOverloadedError, RequestCoalescer
from repro.engine.engine import SamplingEngine
from repro.engine.plan import SamplerPlan, compile_plan
from repro.engine.store import (
    MmapPlanStore,
    SharedMemoryPlanStore,
    build_plan_store,
)

__all__ = [
    "EngineOverloadedError",
    "MmapPlanStore",
    "RequestCoalescer",
    "SamplerPlan",
    "SamplingEngine",
    "SharedMemoryPlanStore",
    "build_plan_store",
    "compile_plan",
]
