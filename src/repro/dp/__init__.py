"""Differential-privacy primitives used throughout the library.

This subpackage is the privacy substrate of the DPCopula reproduction:

* :mod:`repro.dp.mechanisms` — Laplace, geometric and exponential mechanisms;
* :mod:`repro.dp.budget` — an explicit privacy-budget ledger implementing the
  sequential and parallel composition theorems (Theorems 3.1 and 3.2 of the
  paper);
* :mod:`repro.dp.sensitivity` — closed-form sensitivities, including the
  Kendall's-tau sensitivity of Lemma 4.1.
"""

from repro.dp.budget import BudgetExhaustedError, PrivacyBudget
from repro.dp.mechanisms import (
    exponential_mechanism,
    geometric_mechanism,
    laplace_mechanism,
    laplace_noise,
)
from repro.dp.sensitivity import (
    bounded_mean_sensitivity,
    count_sensitivity,
    histogram_sensitivity,
    kendall_tau_sensitivity,
)
from repro.dp.validation import (
    PrivacyLossEstimate,
    estimate_privacy_loss,
    laplace_release,
)

__all__ = [
    "BudgetExhaustedError",
    "PrivacyBudget",
    "laplace_noise",
    "laplace_mechanism",
    "geometric_mechanism",
    "exponential_mechanism",
    "count_sensitivity",
    "histogram_sensitivity",
    "kendall_tau_sensitivity",
    "bounded_mean_sensitivity",
    "PrivacyLossEstimate",
    "estimate_privacy_loss",
    "laplace_release",
]
