"""Empirical differential-privacy validation.

A testing harness in the spirit of "DP-testers": run a mechanism many
times on a pair of neighbouring inputs, histogram the outputs, and
estimate the empirical privacy loss

``L̂(O) = ln( P̂[M(D) ∈ O] / P̂[M(D') ∈ O] )``

over a family of output events.  A correct ε-DP mechanism must satisfy
``max_O L̂(O) <= ε`` up to sampling error; a silently mis-calibrated one
(wrong sensitivity, halved noise) blows past it.  The test suite uses
this to guard the Laplace calibrations end to end — it is a *detector of
bugs*, not a proof of privacy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.utils import RngLike, as_generator, check_int_at_least, check_positive

Mechanism = Callable[[object, np.random.Generator], float]


@dataclass(frozen=True)
class PrivacyLossEstimate:
    """Empirical privacy-loss measurement over binned scalar outputs."""

    max_observed_loss: float
    epsilon_claimed: float
    n_trials: int
    n_bins: int

    def consistent(self, slack: float = 0.35) -> bool:
        """Whether the observations are consistent with the claimed ε.

        ``slack`` absorbs sampling error in the histogram estimates;
        with the default trial counts a correctly calibrated mechanism
        sits well inside it while a 2x-under-noised one sits far outside.
        """
        return self.max_observed_loss <= self.epsilon_claimed + slack


def estimate_privacy_loss(
    mechanism: Mechanism,
    dataset_a,
    dataset_b,
    epsilon_claimed: float,
    n_trials: int = 20_000,
    n_bins: int = 20,
    min_count: int = 50,
    rng: RngLike = None,
) -> PrivacyLossEstimate:
    """Estimate the max privacy loss of a scalar mechanism empirically.

    Parameters
    ----------
    mechanism:
        ``mechanism(dataset, rng) -> float``; must be the *whole*
        randomized release being claimed ε-DP.
    dataset_a / dataset_b:
        A neighbouring pair (add/remove or replace one record, matching
        the claim being tested).
    n_bins:
        Output-space discretization; bins with fewer than ``min_count``
        observations on either side are skipped (their ratio estimates
        are dominated by noise).
    """
    check_positive("epsilon_claimed", epsilon_claimed)
    check_int_at_least("n_trials", n_trials, 100)
    check_int_at_least("n_bins", n_bins, 2)
    gen = as_generator(rng)

    outputs_a = np.array([mechanism(dataset_a, gen) for _ in range(n_trials)])
    outputs_b = np.array([mechanism(dataset_b, gen) for _ in range(n_trials)])

    combined = np.concatenate([outputs_a, outputs_b])
    edges = np.quantile(combined, np.linspace(0.0, 1.0, n_bins + 1))
    edges = np.unique(edges)
    if edges.size < 3:
        raise ValueError("mechanism outputs are (nearly) constant; cannot bin")

    counts_a, _ = np.histogram(outputs_a, bins=edges)
    counts_b, _ = np.histogram(outputs_b, bins=edges)

    max_loss = 0.0
    for count_a, count_b in zip(counts_a, counts_b):
        if count_a < min_count or count_b < min_count:
            continue
        ratio = (count_a / n_trials) / (count_b / n_trials)
        max_loss = max(max_loss, abs(float(np.log(ratio))))
    return PrivacyLossEstimate(
        max_observed_loss=max_loss,
        epsilon_claimed=epsilon_claimed,
        n_trials=n_trials,
        n_bins=len(edges) - 1,
    )


def laplace_release(value_of: Callable[[object], float], scale: float) -> Mechanism:
    """Helper: wrap ``f(D) + Lap(scale)`` as a testable mechanism."""
    check_positive("scale", scale)

    def mechanism(dataset, gen: np.random.Generator) -> float:
        return float(value_of(dataset) + gen.laplace(0.0, scale))

    return mechanism
