"""Core randomized mechanisms for epsilon-differential privacy.

The Laplace mechanism (Dwork et al., "Calibrating Noise to Sensitivity in
Private Data Analysis") is the workhorse of the paper: it perturbs every
histogram bin, every Kendall's-tau coefficient and every partition count.
The geometric mechanism is its integer-valued sibling, useful for counts.
The exponential mechanism (McSherry & Talwar, FOCS 2007) is used inside the
EFPA, P-HP and PSD substrates to privately select discrete structure
(number of Fourier coefficients, partition boundaries, split medians).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

import numpy as np

from repro.utils import RngLike, as_generator, check_positive

ArrayLike = Union[float, Sequence[float], np.ndarray]


def laplace_noise(
    scale: float,
    size: Union[int, Tuple[int, ...], None] = None,
    rng: RngLike = None,
) -> Union[float, np.ndarray]:
    """Draw zero-mean Laplace noise with magnitude ``scale``.

    ``scale`` is the Laplace ``b`` parameter; the variance is ``2 b**2``.
    Returns a scalar when ``size is None``.
    """
    check_positive("scale", scale)
    gen = as_generator(rng)
    sample = gen.laplace(loc=0.0, scale=scale, size=size)
    if size is None:
        return float(sample)
    return sample


def laplace_mechanism(
    value: ArrayLike,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
) -> Union[float, np.ndarray]:
    """Release ``value + Lap(sensitivity / epsilon)``.

    ``value`` may be a scalar or an array; noise is drawn i.i.d. per entry,
    so when the entries are the coordinates of a single vector-valued query
    the supplied ``sensitivity`` must be the L1 sensitivity of that vector.

    >>> out = laplace_mechanism(10.0, sensitivity=1.0, epsilon=1e9, rng=0)
    >>> round(out, 3)
    10.0
    """
    check_positive("sensitivity", sensitivity)
    check_positive("epsilon", epsilon)
    scale = sensitivity / epsilon
    arr = np.asarray(value, dtype=float)
    gen = as_generator(rng)
    noisy = arr + gen.laplace(loc=0.0, scale=scale, size=arr.shape)
    if np.isscalar(value) or arr.ndim == 0:
        return float(noisy)
    return noisy


def geometric_mechanism(
    value: ArrayLike,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
) -> Union[int, np.ndarray]:
    """Release integer counts via the two-sided geometric mechanism.

    Adds noise ``X`` with ``P[X = k] ∝ alpha**|k|`` where
    ``alpha = exp(-epsilon / sensitivity)``.  This is the discrete analogue
    of the Laplace mechanism and is exactly epsilon-DP for integer-valued
    queries with the given L1 sensitivity.
    """
    check_positive("sensitivity", sensitivity)
    check_positive("epsilon", epsilon)
    gen = as_generator(rng)
    alpha = np.exp(-epsilon / sensitivity)
    arr = np.asarray(value)
    # Difference of two geometric variables is two-sided geometric.
    g1 = gen.geometric(p=1.0 - alpha, size=arr.shape) - 1
    g2 = gen.geometric(p=1.0 - alpha, size=arr.shape) - 1
    noisy = arr + g1 - g2
    if np.isscalar(value) or arr.ndim == 0:
        return int(noisy)
    return noisy.astype(np.int64)


def exponential_mechanism(
    candidates: Sequence,
    utility: Callable[[object], float],
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
):
    """Select one of ``candidates`` with probability ``∝ exp(ε·u / (2Δu))``.

    ``utility`` maps a candidate to its (higher-is-better) utility score and
    ``sensitivity`` is the utility function's sensitivity ``Δu``.  The
    selection satisfies ``epsilon``-differential privacy.

    Scores are shifted by their maximum before exponentiation for numerical
    stability, which leaves the selection distribution unchanged.
    """
    if len(candidates) == 0:
        raise ValueError("exponential_mechanism needs at least one candidate")
    check_positive("sensitivity", sensitivity)
    check_positive("epsilon", epsilon)
    gen = as_generator(rng)
    scores = np.array([utility(c) for c in candidates], dtype=float)
    if not np.all(np.isfinite(scores)):
        raise ValueError("utility produced a non-finite score")
    logits = (epsilon * scores) / (2.0 * sensitivity)
    logits -= logits.max()
    weights = np.exp(logits)
    probabilities = weights / weights.sum()
    index = gen.choice(len(candidates), p=probabilities)
    return candidates[index]


def clamp(value: ArrayLike, low: float, high: float) -> Union[float, np.ndarray]:
    """Clamp ``value`` into ``[low, high]`` (post-processing, privacy-free)."""
    if low > high:
        raise ValueError(f"invalid clamp interval [{low}, {high}]")
    clipped = np.clip(np.asarray(value, dtype=float), low, high)
    if np.isscalar(value) or clipped.ndim == 0:
        return float(clipped)
    return clipped
