"""Explicit privacy-budget accounting.

The paper's algorithms split an overall budget ``ε`` between margins
(``ε₁``) and correlation coefficients (``ε₂``), and rely on the sequential
(Theorem 3.1) and parallel (Theorem 3.2) composition theorems for the
end-to-end guarantee.  :class:`PrivacyBudget` makes that arithmetic an
auditable object: synthesizers *spend* from a ledger, tests assert the
ledger never overdraws, and the spend log documents exactly which
mechanism consumed which slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.utils import check_positive

# Tolerance for floating-point accumulation when many small slices are spent.
_EPSILON_SLACK = 1e-9


class BudgetExhaustedError(RuntimeError):
    """Raised when a spend would exceed the remaining privacy budget."""


@dataclass
class PrivacyBudget:
    """A sequential-composition ledger for a total budget of ``epsilon``.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.25, "margins")
    0.25
    >>> budget.remaining
    0.75
    >>> budget.split(3)  # three equal disjoint slices of what remains
    (0.25, 0.25, 0.25)
    """

    epsilon: float
    spent: float = 0.0
    log: List[Tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("epsilon", self.epsilon)

    @property
    def remaining(self) -> float:
        """Budget still available for future spends."""
        return max(0.0, self.epsilon - self.spent)

    def can_spend(self, amount: float) -> bool:
        """Whether ``amount`` fits in the remaining budget."""
        return amount <= self.remaining + _EPSILON_SLACK

    def spend(self, amount: float, label: str = "") -> float:
        """Record a sequential-composition spend of ``amount``.

        Returns the amount spent so calls compose naturally with mechanism
        invocations.  Raises :class:`BudgetExhaustedError` on overdraw.
        """
        check_positive("spend amount", amount)
        if not self.can_spend(amount):
            raise BudgetExhaustedError(
                f"cannot spend {amount:.6g}: only {self.remaining:.6g} of "
                f"{self.epsilon:.6g} remains (label={label!r})"
            )
        self.spent = min(self.epsilon, self.spent + amount)
        self.log.append((label, amount))
        return amount

    def spend_parallel(self, amount: float, label: str = "") -> float:
        """Record a spend over *disjoint* data partitions (Theorem 3.2).

        Parallel composition charges the maximum, not the sum: running an
        ``amount``-DP mechanism once on each of several disjoint subsets
        costs ``amount`` overall.  The ledger therefore records a single
        spend regardless of partition count; callers invoke this once per
        *round* of parallel mechanisms.
        """
        return self.spend(amount, label or "parallel")

    def split(self, parts: int) -> Tuple[float, ...]:
        """Evenly divide the *remaining* budget into ``parts`` slices.

        Does not spend anything; callers spend each slice as they use it.
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        share = self.remaining / parts
        return tuple(share for _ in range(parts))

    @classmethod
    def replay(
        cls, epsilon: float, entries: Iterable[Tuple[str, float]]
    ) -> "PrivacyBudget":
        """Rebuild a ledger from journaled ``(label, amount)`` entries.

        Historic spends are facts — privacy loss that already happened —
        so replay records them verbatim even when they overdraw
        ``epsilon`` (e.g. the cap was lowered after the spends were
        made).  An overdrawn replayed ledger simply has zero remaining
        budget; only *future* :meth:`spend` calls are enforced.
        """
        budget = cls(epsilon)
        for label, amount in entries:
            check_positive("replayed spend amount", amount)
            budget.spent += float(amount)
            budget.log.append((str(label), float(amount)))
        return budget

    def subbudget(self, amount: float, label: str = "") -> "PrivacyBudget":
        """Spend ``amount`` here and return a fresh ledger of that size.

        Used by the hybrid algorithm: the parent spends ``ε − ε₁`` once and
        each partition's DPCopula run accounts against its own sub-ledger
        (parallel composition over disjoint partitions).
        """
        self.spend(amount, label or "subbudget")
        return PrivacyBudget(amount)

    def summary(self) -> str:
        """Human-readable spend log."""
        lines = [f"PrivacyBudget(total={self.epsilon:.6g}, spent={self.spent:.6g})"]
        for label, amount in self.log:
            lines.append(f"  - {label or '<unlabelled>'}: {amount:.6g}")
        return "\n".join(lines)


def split_budget_by_ratio(epsilon: float, k: float) -> Tuple[float, float]:
    """Split ``epsilon`` into ``(ε₁, ε₂)`` with ``ε₁/ε₂ = k`` (paper's ``k``).

    The paper's only algorithmic parameter: ``ε₁`` funds the m marginal
    histograms, ``ε₂`` funds the C(m,2) correlation coefficients, and
    Figure 5 shows accuracy is insensitive to ``k`` once ``k >= 1`` (the
    paper defaults to ``k = 8``).

    >>> split_budget_by_ratio(1.0, 1.0)
    (0.5, 0.5)
    >>> e1, e2 = split_budget_by_ratio(0.9, 8.0)
    >>> round(e1, 3), round(e2, 3)
    (0.8, 0.1)
    """
    check_positive("epsilon", epsilon)
    check_positive("k", k)
    epsilon2 = epsilon / (k + 1.0)
    epsilon1 = epsilon - epsilon2
    return epsilon1, epsilon2
