"""Closed-form L1 sensitivities used by the mechanisms.

Sensitivity (Definition 3.2) is the maximal L1 change of a query's output
when one tuple is added to or removed from the dataset.  Each helper below
documents the argument that justifies its constant; the Kendall's-tau bound
is Lemma 4.1 of the paper and is exercised empirically by the test suite.
"""

from __future__ import annotations

from repro.utils import check_int_at_least, check_positive


def count_sensitivity() -> float:
    """Sensitivity of a single COUNT(*) query: one tuple changes it by 1."""
    return 1.0


def histogram_sensitivity() -> float:
    """Sensitivity of a full histogram released as one vector query.

    Under add/remove-one-tuple neighbourhood each record lands in exactly
    one bin, so the L1 distance between neighbouring histograms is 1.  The
    whole vector of bin counts can therefore be perturbed with
    ``Lap(1/ε)`` per bin.
    """
    return 1.0


def kendall_tau_sensitivity(n: int) -> float:
    """Sensitivity of the sample Kendall's tau coefficient (Lemma 4.1).

    For a dataset of ``n`` records, adding or removing one tuple changes
    the pairwise tau-a statistic by at most ``4 / (n + 1)``.  Intuitively
    the new tuple participates in ``n`` of the ``C(n+1, 2)`` pairs and can
    flip each from concordant to discordant.

    >>> kendall_tau_sensitivity(999)
    0.004
    """
    check_int_at_least("n", n, 1)
    return 4.0 / (n + 1)


def bounded_mean_sensitivity(diameter: float, partition_size: int) -> float:
    """Sensitivity of a mean of values with range ``diameter`` over a block.

    Used by the subsample-and-aggregate DP MLE (Algorithm 2): each of the
    ``l`` disjoint blocks produces an estimate confined to a space of
    diameter ``Λ`` (= 2 for correlation coefficients in [-1, 1]); changing
    one tuple perturbs one block's estimate by at most ``Λ``, so the
    average of ``l`` estimates moves by at most ``Λ / l``.
    """
    check_positive("diameter", diameter)
    check_int_at_least("partition_size", partition_size, 1)
    return diameter / partition_size
