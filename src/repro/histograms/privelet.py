"""Privelet: differential privacy via wavelet transforms (Xiao et al., ICDE 2010).

Privelet applies the Haar wavelet transform to the histogram, perturbs
each coefficient with Laplace noise inversely proportional to the
coefficient's *weight* (coarse coefficients get less noise), and inverts.
Range queries then accumulate only polylogarithmic noise variance instead
of the linear growth of the identity mechanism.

Weights and sensitivity (following the original paper's generalized
sensitivity argument):

* a Haar detail coefficient at a node spanning ``2^j`` leaves changes by
  ``2^-j`` when one record is added, and gets weight ``2^j``;
* the overall-average coefficient changes by ``1/N`` and gets weight ``N``;
* hence each of the ``h + 1`` affected coefficients contributes exactly
  ``weight × |Δc| = 1`` and the generalized sensitivity is ``h + 1``
  (``h = log2 N``);
* coefficient ``c`` receives ``Lap(ρ / (ε · weight(c)))`` noise.

The multi-dimensional transform nests the 1-D transform along each axis;
weights multiply across axes and the generalized sensitivity becomes
``∏_i (h_i + 1)`` — this is the "Privelet+" configuration used as a
baseline in the paper's experiments.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.histograms.base import DenseNoisyHistogram, HistogramPublisher
from repro.utils import RngLike, as_generator, check_positive


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def haar_transform(values: np.ndarray) -> np.ndarray:
    """Haar decomposition along the last axis (power-of-two length).

    Output layout per vector: index 0 holds the overall average; block
    ``[2^(q-1), 2^q)`` holds the detail coefficients of scale ``q``
    (``q = 1`` coarsest).  Detail coefficients are
    ``(left-average − right-average) / 2``.  Batched: any leading axes
    are transformed independently in one vectorized pass per level.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[-1]
    if n & (n - 1) or n == 0:
        raise ValueError(f"haar_transform needs a power-of-two length, got {n}")
    out = np.empty_like(values)
    current = values
    position = n
    while current.shape[-1] > 1:
        pairs = current.reshape(current.shape[:-1] + (-1, 2))
        averages = pairs.mean(axis=-1)
        details = (pairs[..., 0] - pairs[..., 1]) / 2.0
        position -= details.shape[-1]
        out[..., position : position + details.shape[-1]] = details
        current = averages
    out[..., 0] = current[..., 0]
    return out


def inverse_haar_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_transform` (batched along the last axis)."""
    coefficients = np.asarray(coefficients, dtype=float)
    n = coefficients.shape[-1]
    if n & (n - 1) or n == 0:
        raise ValueError(f"inverse needs a power-of-two length, got {n}")
    current = coefficients[..., :1].copy()
    while current.shape[-1] < n:
        size = current.shape[-1]
        details = coefficients[..., size : 2 * size]
        expanded = np.empty(current.shape[:-1] + (2 * size,))
        expanded[..., 0::2] = current + details
        expanded[..., 1::2] = current - details
        current = expanded
    return current


def haar_weights(n: int) -> np.ndarray:
    """Privelet weight of each coefficient slot for a length-``n`` transform.

    ``weight = 2^j`` for a detail coefficient spanning ``2^j`` leaves,
    ``weight = n`` for the average coefficient, so that
    ``weight × |Δc| = 1`` for every coefficient a single record touches.
    """
    if n & (n - 1) or n == 0:
        raise ValueError(f"haar_weights needs a power-of-two length, got {n}")
    h = int(np.log2(n))
    weights = np.empty(n)
    weights[0] = float(n)
    for q in range(1, h + 1):
        start, stop = 2 ** (q - 1), 2**q
        # Storage block q holds nodes spanning 2^(h - q + 1) leaves.
        weights[start:stop] = float(2 ** (h - q + 1))
    return weights


class PriveletPublisher(HistogramPublisher):
    """Haar-wavelet histogram sanitizer, 1-D or multi-dimensional."""

    name = "privelet"

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)

        original_shape = counts.shape
        padded_shape = tuple(_next_power_of_two(s) for s in original_shape)
        padded = np.zeros(padded_shape)
        padded[tuple(slice(0, s) for s in original_shape)] = counts

        # Nested 1-D transforms along every axis (batched per axis).
        transformed = padded
        for axis in range(transformed.ndim):
            transformed = np.moveaxis(
                haar_transform(np.moveaxis(transformed, axis, -1)), -1, axis
            )

        # Weight array = outer product of per-axis weights; sensitivity is
        # the product of per-axis (h + 1) factors.
        sensitivity = 1.0
        weight = np.ones(padded_shape)
        for axis, size in enumerate(padded_shape):
            axis_weights = haar_weights(size)
            shape = [1] * len(padded_shape)
            shape[axis] = size
            weight = weight * axis_weights.reshape(shape)
            sensitivity *= np.log2(size) + 1.0

        noise = gen.laplace(0.0, 1.0, size=padded_shape) * (
            sensitivity / (epsilon * weight)
        )
        transformed = transformed + noise

        reconstructed = transformed
        for axis in range(reconstructed.ndim):
            reconstructed = np.moveaxis(
                inverse_haar_transform(np.moveaxis(reconstructed, axis, -1)), -1, axis
            )
        return reconstructed[tuple(slice(0, s) for s in original_shape)]

    def publish_dense(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        clip_negative: bool = False,
    ) -> DenseNoisyHistogram:
        """Publish and wrap in a range-query answerer."""
        noisy = self.publish(counts, epsilon, rng)
        histogram = DenseNoisyHistogram(noisy)
        return histogram.nonnegative() if clip_negative else histogram
