"""Differentially private histogram publishers.

One-dimensional publishers (used for DPCopula's margins, Section 4.1):

* :class:`~repro.histograms.identity.IdentityPublisher` — Dwork's
  Laplace-per-bin baseline;
* :class:`~repro.histograms.efpa.EFPAPublisher` — the paper's default
  margin publisher (Acs et al., lossy Fourier/cosine compression);
* :class:`~repro.histograms.privelet.PriveletPublisher` — Haar-wavelet
  noise (Xiao et al.), 1-D and multi-dimensional;
* :class:`~repro.histograms.structurefirst.NoiseFirstPublisher` /
  :class:`~repro.histograms.structurefirst.StructureFirstPublisher` —
  merging-based 1-D publishers (Xu et al.).

Multi-dimensional baselines of the evaluation section:

* :class:`~repro.histograms.psd.PSDPublisher` — private spatial
  decomposition, the KD-hybrid tree of Cormode et al.;
* :class:`~repro.histograms.fp.FilterPriorityPublisher` — sparse
  summaries of Cormode et al.;
* :class:`~repro.histograms.php.PHPPublisher` — hierarchical
  bisection partitioning of Acs et al.
"""

from repro.histograms.base import (
    DenseNoisyHistogram,
    HistogramPublisher,
    RangeQueryAnswerer,
)
from repro.histograms.identity import IdentityPublisher
from repro.histograms.efpa import EFPAPublisher
from repro.histograms.privelet import PriveletPublisher, haar_transform, inverse_haar_transform
from repro.histograms.structurefirst import NoiseFirstPublisher, StructureFirstPublisher
from repro.histograms.hierarchical import HierarchicalPublisher
from repro.histograms.psd import PSDPublisher, PSDTree, enforce_tree_consistency
from repro.histograms.fp import FilterPriorityPublisher, SparseNoisySummary
from repro.histograms.php import PHPPublisher
from repro.histograms.dpcube import DPCubePublisher
from repro.histograms.vopt import voptimal_estimate, voptimal_partition
from repro.histograms.grid import (
    AdaptiveGridPublisher,
    UniformGrid,
    UniformGridPublisher,
)

__all__ = [
    "HistogramPublisher",
    "RangeQueryAnswerer",
    "DenseNoisyHistogram",
    "IdentityPublisher",
    "EFPAPublisher",
    "PriveletPublisher",
    "haar_transform",
    "inverse_haar_transform",
    "NoiseFirstPublisher",
    "StructureFirstPublisher",
    "HierarchicalPublisher",
    "PSDPublisher",
    "PSDTree",
    "enforce_tree_consistency",
    "FilterPriorityPublisher",
    "SparseNoisySummary",
    "PHPPublisher",
    "DPCubePublisher",
    "UniformGridPublisher",
    "AdaptiveGridPublisher",
    "UniformGrid",
    "voptimal_partition",
    "voptimal_estimate",
]
