"""Filter Priority: DP summaries for sparse data (Cormode et al., ICDT 2012).

The evaluation's "FP with consistency checks" baseline.  The idea: when
the domain has vastly more bins than records, perturbing every bin is
hopeless — instead publish a *sparse summary*:

1. perturb each **non-zero** bin count with ``Lap(1/ε)`` and keep it only
   if the noisy value clears a threshold ``θ`` (the *filter*);
2. the (astronomically many) zero bins must be treated identically for
   privacy, so the mechanism simulates them: each zero bin independently
   clears the threshold with ``p = P[Lap(1/ε) > θ] = exp(-εθ)/2``; the
   number of clearing zero bins is drawn (Poisson approximation to the
   Binomial) and each receives a value from the conditional distribution
   ``θ + Exp(1/ε)`` at a uniformly random empty location;
3. if the summary still exceeds the size cap, the largest ``s`` noisy
   values are kept (the *priority* step);
4. consistency: a small slice of budget estimates the total record count
   and retained values are rescaled to match it.

The threshold auto-tunes so that the *expected* number of clearing zero
bins is ``target_zero_retentions``, keeping the summary materializable
for domains up to the paper's 10^24 bins.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.mechanisms import laplace_noise
from repro.histograms.base import Range, RangeQueryAnswerer, validate_ranges
from repro.utils import RngLike, as_generator, check_positive


class SparseNoisySummary(RangeQueryAnswerer):
    """A sparse set of (cell, estimated count) pairs over an integer grid."""

    def __init__(
        self,
        positions: np.ndarray,
        values: np.ndarray,
        domain_sizes: Sequence[int],
    ):
        positions = np.asarray(positions, dtype=np.int64).reshape(-1, len(domain_sizes))
        values = np.asarray(values, dtype=float).reshape(-1)
        if positions.shape[0] != values.shape[0]:
            raise ValueError("positions and values must have equal length")
        self._positions = positions
        self._values = values
        self._domain_sizes = tuple(int(s) for s in domain_sizes)

    @property
    def size(self) -> int:
        return self._values.size

    @property
    def positions(self) -> np.ndarray:
        return self._positions

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def dimensions(self) -> int:
        return len(self._domain_sizes)

    @property
    def total(self) -> float:
        return float(self._values.sum())

    def range_count(self, ranges: Sequence[Range]) -> float:
        clipped = validate_ranges(ranges, self._domain_sizes)
        if self.size == 0:
            return 0.0
        mask = np.ones(self.size, dtype=bool)
        for j, (low, high) in enumerate(clipped):
            if high < low:
                return 0.0
            column = self._positions[:, j]
            mask &= (column >= low) & (column <= high)
        return float(self._values[mask].sum())

    def rescaled(self, target_total: float) -> "SparseNoisySummary":
        """Consistency post-processing: scale values to a target total."""
        current = self.total
        if current <= 0:
            return self
        factor = max(target_total, 0.0) / current
        return SparseNoisySummary(
            self._positions, self._values * factor, self._domain_sizes
        )


class FilterPriorityPublisher:
    """Sparse-summary sanitizer taking raw records as input.

    Parameters
    ----------
    target_zero_retentions:
        Expected number of originally-empty cells that clear the filter;
        sets the threshold automatically from the domain volume.
    max_summary_size:
        Priority cap on the published summary size (``None`` = no cap).
    consistency_fraction:
        Budget share used to estimate the total count for the final
        consistency rescale (0 disables the rescale).
    """

    name = "fp"

    def __init__(
        self,
        target_zero_retentions: float = 100.0,
        max_summary_size: Optional[int] = None,
        consistency_fraction: float = 0.1,
        min_threshold: float = 1e-3,
    ):
        check_positive("target_zero_retentions", target_zero_retentions)
        if not 0.0 <= consistency_fraction < 1.0:
            raise ValueError(
                f"consistency_fraction must lie in [0, 1), got {consistency_fraction}"
            )
        self.target_zero_retentions = target_zero_retentions
        self.max_summary_size = max_summary_size
        self.consistency_fraction = consistency_fraction
        self.min_threshold = min_threshold

    @staticmethod
    def _nonzero_cells(dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct occupied cells and their exact counts."""
        cells, counts = np.unique(dataset.values, axis=0, return_counts=True)
        return cells, counts.astype(float)

    def _threshold(self, epsilon: float, empty_cells: float) -> float:
        """θ such that E[# clearing zero bins] = target_zero_retentions."""
        expected_per_cell = self.target_zero_retentions / max(empty_cells, 1.0)
        # P[Lap(1/ε) > θ] = exp(-εθ)/2  ⇒  θ = ln(1 / (2 p)) / ε.
        probability = min(max(expected_per_cell, 1e-300), 0.5)
        return max(self.min_threshold, np.log(1.0 / (2.0 * probability)) / epsilon)

    def publish(
        self,
        dataset: Dataset,
        epsilon: float,
        rng: RngLike = None,
    ) -> SparseNoisySummary:
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)
        domain_sizes = dataset.schema.domain_sizes
        domain_volume = dataset.schema.domain_space()

        epsilon_total = epsilon * self.consistency_fraction
        epsilon_filter = epsilon - epsilon_total

        cells, counts = self._nonzero_cells(dataset)
        empty_cells = max(domain_volume - cells.shape[0], 0.0)
        theta = self._threshold(epsilon_filter, empty_cells)

        # Non-zero bins: perturb and filter.
        noisy = counts + gen.laplace(0.0, 1.0 / epsilon_filter, size=counts.shape)
        keep = noisy > theta
        kept_positions = cells[keep]
        kept_values = noisy[keep]

        # Zero bins: simulate the filter without materializing the domain.
        clear_probability = 0.5 * np.exp(-epsilon_filter * theta)
        expected = empty_cells * clear_probability
        n_zero_retained = int(gen.poisson(min(expected, 1e7)))
        if n_zero_retained > 0:
            occupied = {tuple(cell) for cell in cells}
            sampled = []
            attempts = 0
            while len(sampled) < n_zero_retained and attempts < 20 * n_zero_retained:
                candidate = tuple(
                    int(gen.integers(0, size)) for size in domain_sizes
                )
                attempts += 1
                if candidate not in occupied:
                    occupied.add(candidate)
                    sampled.append(candidate)
            if sampled:
                zero_positions = np.array(sampled, dtype=np.int64)
                zero_values = theta + gen.exponential(
                    1.0 / epsilon_filter, size=len(sampled)
                )
                kept_positions = (
                    np.vstack([kept_positions, zero_positions])
                    if kept_positions.size
                    else zero_positions
                )
                kept_values = np.concatenate([kept_values, zero_values])

        # Priority: keep the s largest noisy counts.
        if self.max_summary_size is not None and kept_values.size > self.max_summary_size:
            order = np.argsort(kept_values)[::-1][: self.max_summary_size]
            kept_positions = kept_positions[order]
            kept_values = kept_values[order]

        summary = SparseNoisySummary(kept_positions, kept_values, domain_sizes)

        if epsilon_total > 0:
            noisy_total = dataset.n_records + laplace_noise(
                1.0 / epsilon_total, rng=gen
            )
            summary = summary.rescaled(noisy_total)
        return summary
