"""Privacy-free post-processing utilities for sanitized histograms.

Everything here operates on already-released DP outputs, so none of it
affects the privacy guarantee (post-processing invariance).  The paper
notes (contribution 1) that histogram-based synthetic-data pipelines
*require* such steps — non-negativity, count consistency — whereas
DPCopula's sampling needs only the normalized-CDF reconstruction.
"""

from __future__ import annotations

import numpy as np


def clip_nonnegative(counts: np.ndarray) -> np.ndarray:
    """Clip negative estimated counts to zero."""
    return np.clip(np.asarray(counts, dtype=float), 0.0, None)


def round_to_integers(counts: np.ndarray) -> np.ndarray:
    """Round estimated counts to non-negative integers."""
    return np.rint(clip_nonnegative(counts)).astype(np.int64)


def rescale_to_total(counts: np.ndarray, target_total: float) -> np.ndarray:
    """Scale non-negative counts so they sum to ``target_total``.

    Falls back to a uniform histogram when everything is zero.
    """
    counts = clip_nonnegative(counts)
    total = counts.sum()
    target = max(float(target_total), 0.0)
    if total <= 0:
        return np.full_like(counts, target / counts.size)
    return counts * (target / total)


def isotonic_cdf(counts: np.ndarray) -> np.ndarray:
    """Monotone non-decreasing CDF on [0, 1] from (possibly noisy) counts.

    Clips, normalizes and accumulates; the final entry is exactly 1.
    """
    pmf = clip_nonnegative(counts)
    total = pmf.sum()
    if total <= 0:
        pmf = np.ones_like(pmf)
        total = pmf.sum()
    cdf = np.cumsum(pmf / total)
    cdf[-1] = 1.0
    return cdf


def consistency_by_averaging(noisy_parent: float, noisy_children: np.ndarray) -> np.ndarray:
    """One step of hierarchical consistency (Hay et al. style).

    Adjust children so they sum to the parent, spreading the discrepancy
    equally.  Used by tests to validate tree post-processing logic.
    """
    children = np.asarray(noisy_children, dtype=float)
    if children.size == 0:
        raise ValueError("need at least one child")
    discrepancy = noisy_parent - children.sum()
    return children + discrepancy / children.size
