"""EFPA: Enhanced Fourier Perturbation Algorithm (Acs et al., ICDM 2012).

The paper's default publisher for DPCopula's one-dimensional margins
(Section 4.1: "Here we use EFPA to generate DP marginal histograms which
is superior to other methods").

EFPA compresses the histogram in an orthonormal trigonometric basis,
keeps only the leading ``k`` coefficients, perturbs them, and
reconstructs.  The number of retained coefficients trades truncation
error (energy in the dropped tail) against perturbation error (noise on
the kept head) and is itself chosen privately with the exponential
mechanism, using exactly that error sum as the (negated) utility.

Implementation notes
--------------------
* We use the orthonormal DCT-II instead of the complex DFT.  Both are
  orthonormal transforms of a real histogram, so the L2 sensitivity
  argument (one record moves the histogram by 1 in one bin, hence the
  coefficient vector moves by 1 in L2) is identical, and the real basis
  avoids splitting complex coefficients into parts.  Energy compaction of
  the DCT on smooth histograms is at least as good as the DFT's.
* Budget split: ``ε/2`` for selecting ``k``, ``ε/2`` for perturbing the
  ``k`` retained coefficients with ``Lap(√k · 2/ε)`` each (the L1
  sensitivity of a k-vector with L2 sensitivity 1 is at most √k).
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sfft

from repro.dp.mechanisms import exponential_mechanism, laplace_noise
from repro.histograms.base import DenseNoisyHistogram, HistogramPublisher
from repro.utils import RngLike, as_generator, check_positive


class EFPAPublisher(HistogramPublisher):
    """Lossy-compression 1-D histogram publisher.

    Parameters
    ----------
    selection_fraction:
        Share of ``epsilon`` spent on the private choice of ``k``
        (default 0.5, as in the original EFPA).
    """

    name = "efpa"

    def __init__(self, selection_fraction: float = 0.5):
        if not 0.0 < selection_fraction < 1.0:
            raise ValueError(
                f"selection_fraction must lie in (0, 1), got {selection_fraction}"
            )
        self.selection_fraction = selection_fraction

    def _choose_k(
        self,
        spectrum: np.ndarray,
        epsilon_select: float,
        epsilon_perturb: float,
        rng: np.random.Generator,
    ) -> int:
        """Exponential-mechanism choice of the number of kept coefficients.

        Utility of ``k`` is the negated root of the expected squared
        error: tail energy ``Σ_{i>k} F_i²`` plus expected perturbation
        ``2 k (√k / ε_p)²`` (variance of k Laplace draws of scale
        √k/ε_p).  The utility's sensitivity is bounded by 1 because a
        one-record change moves the whole spectrum by at most 1 in L2.
        """
        n = spectrum.size
        energy = spectrum**2
        # tail_energy[k] = sum of energies strictly after index k-1.
        tail = np.concatenate([np.cumsum(energy[::-1])[::-1], [0.0]])
        ks = np.arange(1, n + 1)
        perturbation = 2.0 * ks * (np.sqrt(ks) / epsilon_perturb) ** 2
        scores = -np.sqrt(tail[1:] + perturbation)
        chosen = exponential_mechanism(
            list(ks),
            utility=lambda k: scores[int(k) - 1],
            sensitivity=1.0,
            epsilon=epsilon_select,
            rng=rng,
        )
        return int(chosen)

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 1:
            raise ValueError("EFPA is a one-dimensional publisher")
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)
        n = counts.size
        if n == 1:
            return counts + laplace_noise(1.0 / epsilon, rng=gen)

        epsilon_select = epsilon * self.selection_fraction
        epsilon_perturb = epsilon - epsilon_select

        spectrum = sfft.dct(counts, norm="ortho")
        k = self._choose_k(spectrum, epsilon_select, epsilon_perturb, gen)

        kept = spectrum[:k].copy()
        scale = np.sqrt(k) / epsilon_perturb
        kept += gen.laplace(0.0, scale, size=k)

        padded = np.zeros(n)
        padded[:k] = kept
        return sfft.idct(padded, norm="ortho")

    def publish_dense(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        clip_negative: bool = True,
    ) -> DenseNoisyHistogram:
        """Publish and wrap in a range-query answerer."""
        noisy = self.publish(counts, epsilon, rng)
        histogram = DenseNoisyHistogram(noisy)
        return histogram.nonnegative() if clip_negative else histogram
