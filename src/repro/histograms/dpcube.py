"""DPCube (Xiao, Gardner, Xiong — ICDE 2012 demo / SDM 2012).

The paper discusses DPCube alongside PSD: "Both the DPCube and PSD are
based on KD-Tree partitioning ... it has been shown that these two
methods are comparable."  We implement it for completeness as an extra
multi-dimensional baseline:

1. **Phase 1** — spend ``ε·φ`` on Dwork's identity mechanism over the
   full cell grid (so DPCube, unlike PSD, *does* require a
   materializable domain — exactly the limitation the paper exploits);
2. **Partitioning** — build a kd-tree *on the noisy cell histogram*
   (privacy-free post-processing): recursively split the current box on
   the axis/position that minimizes the noisy within-partition L1
   deviation, stopping when the box is small or already homogeneous;
3. **Phase 2** — spend the remaining ``ε·(1-φ)`` on one fresh Laplace
   count per final partition (disjoint ⇒ parallel composition), and
   release the partition histogram, optionally averaging the two
   observations of each partition (both phases observed it: phase-1 sum
   has variance ``cells·2/(φε)²``, phase 2 ``2/((1-φ)ε)²``; inverse-
   variance weighting is the standard post-processing).

Queries are answered from the final dense estimate with uniformity
inside partitions.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.histograms.base import DenseNoisyHistogram
from repro.utils import RngLike, as_generator, check_int_at_least, check_positive

Box = Tuple[Tuple[int, int], ...]


def _l1_deviation(block: np.ndarray) -> float:
    return float(np.abs(block - block.mean()).sum())


class DPCubePublisher:
    """Two-phase kd-partitioning publisher over the dense cell grid.

    Parameters
    ----------
    phase1_fraction:
        Budget share φ for the phase-1 cell histogram.
    max_depth:
        Maximum kd-tree depth.
    min_cells:
        Stop splitting below this many cells.
    homogeneity_threshold:
        Stop splitting when the box's noisy L1 deviation per cell falls
        below this value (already uniform enough).
    """

    name = "dpcube"

    def __init__(
        self,
        phase1_fraction: float = 0.5,
        max_depth: int = 10,
        min_cells: int = 2,
        homogeneity_threshold: float = 0.5,
        max_split_candidates: int = 32,
    ):
        if not 0.0 < phase1_fraction < 1.0:
            raise ValueError(
                f"phase1_fraction must lie in (0, 1), got {phase1_fraction}"
            )
        check_int_at_least("max_depth", max_depth, 1)
        check_int_at_least("min_cells", min_cells, 1)
        check_int_at_least("max_split_candidates", max_split_candidates, 1)
        self.phase1_fraction = phase1_fraction
        self.max_depth = max_depth
        self.min_cells = min_cells
        self.homogeneity_threshold = homogeneity_threshold
        self.max_split_candidates = max_split_candidates

    def _best_split(
        self, noisy: np.ndarray, box: Box
    ) -> Tuple[int, int, float]:
        """(axis, position, score) of the best kd split of ``box``."""
        best = (-1, -1, np.inf)
        slices = tuple(slice(low, high + 1) for low, high in box)
        block = noisy[slices]
        for axis, (low, high) in enumerate(box):
            length = high - low + 1
            if length < 2:
                continue
            positions = np.arange(low, high)
            if positions.size > self.max_split_candidates:
                positions = np.unique(
                    np.linspace(low, high - 1, self.max_split_candidates).astype(int)
                )
            # Deviations computed on the box's own block, axis-relative.
            moved = np.moveaxis(block, axis, 0)
            flat = moved.reshape(moved.shape[0], -1)
            for position in positions:
                cut = position - low + 1
                score = _l1_deviation(flat[:cut]) + _l1_deviation(flat[cut:])
                if score < best[2]:
                    best = (axis, int(position), score)
        return best

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> DenseNoisyHistogram:
        counts = np.asarray(counts, dtype=float)
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)

        epsilon1 = epsilon * self.phase1_fraction
        epsilon2 = epsilon - epsilon1

        noisy = counts + gen.laplace(0.0, 1.0 / epsilon1, size=counts.shape)

        root: Box = tuple((0, s - 1) for s in counts.shape)
        partitions: List[Box] = []
        stack: List[Tuple[Box, int]] = [(root, 0)]
        while stack:
            box, depth = stack.pop()
            slices = tuple(slice(low, high + 1) for low, high in box)
            block = noisy[slices]
            cells = block.size
            deviation_per_cell = _l1_deviation(block) / max(cells, 1)
            if (
                depth >= self.max_depth
                or cells <= self.min_cells
                or deviation_per_cell <= self.homogeneity_threshold
            ):
                partitions.append(box)
                continue
            axis, position, _ = self._best_split(noisy, box)
            if axis < 0:
                partitions.append(box)
                continue
            low, high = box[axis]
            left = box[:axis] + ((low, position),) + box[axis + 1 :]
            right = box[:axis] + ((position + 1, high),) + box[axis + 1 :]
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))

        estimate = np.empty_like(counts)
        phase1_cell_variance = 2.0 / (epsilon1 * epsilon1)
        phase2_variance = 2.0 / (epsilon2 * epsilon2)
        for box in partitions:
            slices = tuple(slice(low, high + 1) for low, high in box)
            cells = estimate[slices].size
            true_sum = counts[slices].sum()
            phase2_sum = true_sum + gen.laplace(0.0, 1.0 / epsilon2)
            phase1_sum = noisy[slices].sum()
            phase1_variance = cells * phase1_cell_variance
            # Inverse-variance weighting of the two observations.
            w1 = 1.0 / phase1_variance
            w2 = 1.0 / phase2_variance
            blended = (w1 * phase1_sum + w2 * phase2_sum) / (w1 + w2)
            estimate[slices] = blended / cells
        return DenseNoisyHistogram(estimate)

    def publish_dense(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        clip_negative: bool = True,
    ) -> DenseNoisyHistogram:
        """Alias matching the other publishers' interface."""
        histogram = self.publish(counts, epsilon, rng)
        return histogram.nonnegative() if clip_negative else histogram
