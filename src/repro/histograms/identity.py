"""Dwork's identity mechanism: independent Laplace noise per bin.

The baseline of reference [13]: with add/remove-one neighbourhood each
record occupies exactly one bin, the histogram's L1 sensitivity is 1, so
adding ``Lap(1/ε)`` to every bin is ε-DP.  Works well in low dimensions,
degrades with domain size — which is precisely the paper's motivation.
"""

from __future__ import annotations

import numpy as np

from repro.dp.mechanisms import laplace_mechanism
from repro.dp.sensitivity import histogram_sensitivity
from repro.histograms.base import DenseNoisyHistogram, HistogramPublisher
from repro.utils import RngLike, as_generator


class IdentityPublisher(HistogramPublisher):
    """Laplace-per-bin sanitizer for count vectors of any dimensionality."""

    name = "identity"

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        gen = as_generator(rng)
        noisy = laplace_mechanism(
            counts, sensitivity=histogram_sensitivity(), epsilon=epsilon, rng=gen
        )
        return np.asarray(noisy, dtype=float)

    def publish_dense(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        clip_negative: bool = False,
    ) -> DenseNoisyHistogram:
        """Publish and wrap in a range-query answerer."""
        noisy = self.publish(counts, epsilon, rng)
        histogram = DenseNoisyHistogram(noisy)
        return histogram.nonnegative() if clip_negative else histogram
