"""Common interfaces for differentially private histogram methods.

Two roles are distinguished:

* a **publisher** consumes exact data (a count vector/array, or raw
  points for spatial methods) plus a privacy budget and emits a sanitized
  object;
* an **answerer** is the sanitized object itself, able to answer
  multi-dimensional range-count queries.  Dense reconstructions are
  wrapped in :class:`DenseNoisyHistogram`; tree and sparse methods return
  their own answerer types.

The range convention throughout the library is *inclusive integer
intervals*: a query is a list of ``(low, high)`` pairs, one per
attribute, and a record matches when ``low_j <= x_j <= high_j`` for all
``j`` — matching the paper's ``A_i ∈ I_i`` predicates.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

import numpy as np

Range = Tuple[int, int]


class RangeQueryAnswerer(abc.ABC):
    """Anything that can answer inclusive multi-dimensional range counts."""

    @abc.abstractmethod
    def range_count(self, ranges: Sequence[Range]) -> float:
        """Estimated number of records inside the hyper-rectangle."""

    @property
    @abc.abstractmethod
    def dimensions(self) -> int:
        """Number of attributes the answerer covers."""


class HistogramPublisher(abc.ABC):
    """A 1-D histogram sanitizer: noisy counts in, noisy counts out."""

    name: str = "publisher"

    @abc.abstractmethod
    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return sanitized counts for the given exact 1-D ``counts``."""


def validate_ranges(ranges: Sequence[Range], shape: Sequence[int]) -> Tuple[Range, ...]:
    """Clip and validate a query's ranges against a domain ``shape``.

    Returns clipped inclusive ranges; raises on dimension mismatch.
    Ranges entirely outside the domain come back as empty markers
    ``(1, 0)`` (low > high), which every answerer treats as count 0.
    """
    if len(ranges) != len(shape):
        raise ValueError(
            f"query has {len(ranges)} ranges but the domain has {len(shape)} dimensions"
        )
    clipped = []
    for (low, high), size in zip(ranges, shape):
        low_c = max(int(low), 0)
        high_c = min(int(high), int(size) - 1)
        clipped.append((low_c, high_c))
    return tuple(clipped)


class DenseNoisyHistogram(RangeQueryAnswerer):
    """A dense estimated-count array over the full attribute grid.

    Suitable whenever the total number of bins is materializable; the
    identity, Privelet, EFPA and P-HP methods all reconstruct one of
    these.  Range counts are exact sums over the hyper-rectangle.
    """

    def __init__(self, estimated_counts: np.ndarray):
        estimated = np.asarray(estimated_counts, dtype=float)
        if estimated.ndim < 1:
            raise ValueError("estimated counts must have at least one dimension")
        self._counts = estimated

    @property
    def counts(self) -> np.ndarray:
        return self._counts

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._counts.shape

    @property
    def dimensions(self) -> int:
        return self._counts.ndim

    @property
    def total(self) -> float:
        return float(self._counts.sum())

    def range_count(self, ranges: Sequence[Range]) -> float:
        clipped = validate_ranges(ranges, self._counts.shape)
        slices = []
        for low, high in clipped:
            if high < low:
                return 0.0
            slices.append(slice(low, high + 1))
        return float(self._counts[tuple(slices)].sum())

    def nonnegative(self) -> "DenseNoisyHistogram":
        """Post-processed copy with negative estimates clipped to zero."""
        return DenseNoisyHistogram(np.clip(self._counts, 0.0, None))
