"""P-HP: private hierarchical partitioning (Acs et al., ICDM 2012).

P-HP recursively bisects the histogram domain, choosing each cut with the
exponential mechanism so that the two sides are as internally homogeneous
as possible, then releases one noisy *average* per final partition.  For
histograms that are piecewise-smooth this spends far less budget than
per-bin noise; the cost is the structure-selection budget and quadratic
worst-case work in the number of bins (which is why the paper only runs
P-HP on 1-D and 2-D data).

Utility of a cut: the negated sum of the L1 deviations from the mean on
the two sides.  Adding one record to some bin changes one count by 1,
which moves that bin's deviation by at most ``1 - 1/s`` and every other
bin's deviation (through the mean) by ``1/s`` each, so the total L1
deviation moves by less than 2 — the utility sensitivity used below.

Budget: ``ε = ε_structure + ε_counts``.  Cuts at one level act on
disjoint intervals (parallel composition), so ``ε_structure`` is divided
across the ``depth`` levels only.  Final partitions are disjoint, so the
per-partition noisy sums cost ``ε_counts`` once overall.

Multi-dimensional inputs are flattened row-major, partitioned as a 1-D
histogram, and reshaped back — the dense reconstruction then answers
arbitrary hyper-rectangles.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dp.mechanisms import exponential_mechanism, laplace_noise
from repro.histograms.base import DenseNoisyHistogram, HistogramPublisher
from repro.utils import RngLike, as_generator, check_positive

_UTILITY_SENSITIVITY = 2.0


def _l1_deviations_for_cuts(segment: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """For each cut ``t``, L1 deviation-from-mean of ``segment[:t+1]`` and
    ``segment[t+1:]`` summed.  Vectorized over bins for each candidate."""
    scores = np.empty(cuts.size)
    for i, t in enumerate(cuts):
        left = segment[: t + 1]
        right = segment[t + 1 :]
        score = np.abs(left - left.mean()).sum()
        if right.size:
            score += np.abs(right - right.mean()).sum()
        scores[i] = score
    return scores


class PHPPublisher(HistogramPublisher):
    """Hierarchical-bisection histogram sanitizer.

    Parameters
    ----------
    max_depth:
        Maximum bisection depth (final partition count <= 2**max_depth).
    structure_fraction:
        Share of the budget spent selecting cut points.
    max_candidates:
        Cap on candidate cut positions evaluated per node (evenly spaced
        subsample); bounds the quadratic worst case.
    """

    name = "php"

    def __init__(
        self,
        max_depth: int = 10,
        structure_fraction: float = 0.5,
        max_candidates: int = 128,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if not 0.0 < structure_fraction < 1.0:
            raise ValueError(
                f"structure_fraction must lie in (0, 1), got {structure_fraction}"
            )
        if max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        self.max_depth = max_depth
        self.structure_fraction = structure_fraction
        self.max_candidates = max_candidates

    def _partition(
        self,
        counts: np.ndarray,
        epsilon_per_level: float,
        rng: np.random.Generator,
    ) -> List[Tuple[int, int]]:
        """Recursive private bisection; returns inclusive (start, end) spans."""
        spans = [(0, counts.size - 1)]
        for _ in range(self.max_depth):
            next_spans: List[Tuple[int, int]] = []
            for start, end in spans:
                length = end - start + 1
                if length < 2:
                    next_spans.append((start, end))
                    continue
                segment = counts[start : end + 1]
                candidates = np.arange(length - 1)
                if candidates.size > self.max_candidates:
                    candidates = np.unique(
                        np.linspace(0, length - 2, self.max_candidates).astype(int)
                    )
                scores = _l1_deviations_for_cuts(segment, candidates)
                utilities = {int(t): -s for t, s in zip(candidates, scores)}
                cut = exponential_mechanism(
                    list(utilities),
                    utility=lambda t: utilities[t],
                    sensitivity=_UTILITY_SENSITIVITY,
                    epsilon=epsilon_per_level,
                    rng=rng,
                )
                next_spans.append((start, start + cut))
                next_spans.append((start + cut + 1, end))
            spans = next_spans
        return spans

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)

        original_shape = counts.shape
        flat = counts.reshape(-1)
        if flat.size == 1:
            return (flat + laplace_noise(1.0 / epsilon, rng=gen)).reshape(original_shape)

        epsilon_structure = epsilon * self.structure_fraction
        epsilon_counts = epsilon - epsilon_structure
        depth = min(self.max_depth, max(1, int(np.ceil(np.log2(flat.size)))))
        epsilon_per_level = epsilon_structure / depth

        spans = self._partition(flat, epsilon_per_level, gen)

        estimate = np.empty_like(flat)
        for start, end in spans:
            length = end - start + 1
            # Partition sums are disjoint: Lap(1/ε_counts) each by
            # parallel composition; the average inherits scale 1/(len ε).
            noisy_sum = flat[start : end + 1].sum() + laplace_noise(
                1.0 / epsilon_counts, rng=gen
            )
            estimate[start : end + 1] = noisy_sum / length
        return estimate.reshape(original_shape)

    def publish_dense(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        clip_negative: bool = True,
    ) -> DenseNoisyHistogram:
        """Publish and wrap in a range-query answerer."""
        noisy = self.publish(counts, epsilon, rng)
        histogram = DenseNoisyHistogram(noisy)
        return histogram.nonnegative() if clip_negative else histogram
