"""Hierarchical histograms with consistency (Hay et al., VLDB 2010).

The paper cites this method ([19], "Boosting the accuracy of
differentially-private histograms through consistency") as one of the
effective single-dimensional publishers DPCopula can plug in for its
margins.  The mechanism:

1. build a complete ``fanout``-ary interval tree over the domain;
2. perturb **every** node's count with ``Lap(h/ε)`` where ``h`` is the
   tree height — one record appears in one node per level, so releasing
   all levels costs ``h·(1/scale)``; equivalently each level is a
   histogram of sensitivity 1 and the levels compose sequentially;
3. post-process with the ordinary-least-squares estimate that makes the
   tree consistent (children sum to parents), which provably reduces
   variance — Hay et al.'s two-pass weighted averaging:

   * **upward pass**: ``z[v] = (f^(h_v+1) - f^h_v) / (f^(h_v+1) - 1) · ỹ[v]
     + (f^h_v - 1)/(f^(h_v+1) - 1) · Σ z[children]`` blends a node's own
     noisy count with its children's estimates;
   * **downward pass**: spreads each node's residual mismatch equally
     over its children.

Range queries are answered from the consistent leaf counts (sums of
O(f·h) node estimates would also work; leaves are simplest and exact
after consistency).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.histograms.base import DenseNoisyHistogram, HistogramPublisher
from repro.utils import RngLike, as_generator, check_int_at_least, check_positive


class HierarchicalPublisher(HistogramPublisher):
    """Hay-style tree publisher for 1-D histograms.

    Parameters
    ----------
    fanout:
        Tree branching factor (2 in the original paper's experiments;
        larger fanouts trade tree height against per-level resolution).
    """

    name = "hierarchical"

    def __init__(self, fanout: int = 2):
        check_int_at_least("fanout", fanout, 2)
        self.fanout = fanout

    def _padded_size(self, n: int) -> int:
        size = 1
        while size < n:
            size *= self.fanout
        return size

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 1:
            raise ValueError("HierarchicalPublisher is one-dimensional")
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)
        n = counts.size
        if n == 1:
            return counts + gen.laplace(0.0, 1.0 / epsilon)

        size = self._padded_size(n)
        padded = np.zeros(size)
        padded[:n] = counts

        # levels[0] = leaves ... levels[-1] = root.
        levels: List[np.ndarray] = [padded]
        while levels[-1].size > 1:
            levels.append(levels[-1].reshape(-1, self.fanout).sum(axis=1))
        height = len(levels)  # number of released levels

        scale = height / epsilon  # each level gets epsilon / height
        noisy = [level + gen.laplace(0.0, scale, size=level.size) for level in levels]

        # Upward pass (Hay et al. weighted averaging).  z-estimates are
        # built leaves-first; f^(h+1) etc. use h = subtree height in
        # levels (leaves have h = 1).
        f = float(self.fanout)
        z: List[np.ndarray] = [noisy[0].copy()]
        for level_index in range(1, height):
            h = level_index + 1  # levels below including this one
            child_sums = z[level_index - 1].reshape(-1, self.fanout).sum(axis=1)
            alpha = (f**h - f ** (h - 1)) / (f**h - 1.0)
            z.append(alpha * noisy[level_index] + (1.0 - alpha) * child_sums)

        # Downward pass: distribute each node's surplus over children.
        consistent: List[np.ndarray] = [None] * height  # type: ignore[list-item]
        consistent[height - 1] = z[height - 1]
        for level_index in range(height - 1, 0, -1):
            parents = consistent[level_index]
            children = z[level_index - 1].reshape(-1, self.fanout)
            child_sums = children.sum(axis=1, keepdims=True)
            adjusted = children + (parents[:, None] - child_sums) / self.fanout
            consistent[level_index - 1] = adjusted.reshape(-1)

        return consistent[0][:n]

    def publish_dense(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        clip_negative: bool = True,
    ) -> DenseNoisyHistogram:
        """Publish and wrap in a range-query answerer."""
        noisy = self.publish(counts, epsilon, rng)
        histogram = DenseNoisyHistogram(noisy)
        return histogram.nonnegative() if clip_negative else histogram
