"""NoiseFirst and StructureFirst (Xu et al., ICDE 2012) — 1-D publishers.

Section 4.1 of the paper lists these alongside EFPA as candidate methods
for DPCopula's marginal histograms; the ablation benchmarks swap them in.

* **NoiseFirst** — perturb every bin (identity mechanism), then
  post-process by merging adjacent bins into a coarser histogram chosen
  to minimize an estimate of total squared error.  Merging is pure
  post-processing, so the whole budget goes to the noise.  We merge
  greedily (agglomeratively) instead of by exact dynamic programming;
  this is the standard scalable variant and keeps the publisher
  O(N log N).

* **StructureFirst** — select the bucket structure *privately* first
  (recursive bisection via the exponential mechanism, reusing the P-HP
  machinery with the L1-deviation utility whose sensitivity is < 2),
  then spend the remaining budget on one noisy sum per bucket.  This is
  a simplified but budget-correct rendering of the original's
  exponential-mechanism boundary sampling.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.histograms.base import DenseNoisyHistogram, HistogramPublisher
from repro.histograms.identity import IdentityPublisher
from repro.histograms.php import PHPPublisher
from repro.utils import RngLike, as_generator, check_positive


def _greedy_merge_path(noisy: np.ndarray) -> List[List[Tuple[int, int]]]:
    """Agglomerative merge path from N singleton buckets down to 1.

    Returns the list of partitions (inclusive spans) after each merge,
    ordered from fine to coarse.  Each step merges the adjacent pair
    whose merge increases within-bucket SSE the least.
    """
    spans = [(i, i) for i in range(noisy.size)]
    sums = noisy.astype(float).tolist()
    squares = (noisy.astype(float) ** 2).tolist()
    lengths = [1] * noisy.size
    path = [list(spans)]

    def sse(total: float, square: float, length: int) -> float:
        return square - total * total / length

    while len(spans) > 1:
        best_index, best_cost = -1, np.inf
        for i in range(len(spans) - 1):
            merged_sse = sse(
                sums[i] + sums[i + 1],
                squares[i] + squares[i + 1],
                lengths[i] + lengths[i + 1],
            )
            cost = merged_sse - sse(sums[i], squares[i], lengths[i]) - sse(
                sums[i + 1], squares[i + 1], lengths[i + 1]
            )
            if cost < best_cost:
                best_cost, best_index = cost, i
        i = best_index
        spans[i] = (spans[i][0], spans[i + 1][1])
        sums[i] += sums[i + 1]
        squares[i] += squares[i + 1]
        lengths[i] += lengths[i + 1]
        del spans[i + 1], sums[i + 1], squares[i + 1], lengths[i + 1]
        path.append(list(spans))
    return path


class NoiseFirstPublisher(HistogramPublisher):
    """Identity noise followed by error-driven merging (post-processing)."""

    name = "noisefirst"

    def __init__(self, max_bins_for_merge: int = 4096):
        self.max_bins_for_merge = max_bins_for_merge
        self._identity = IdentityPublisher()

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 1:
            raise ValueError("NoiseFirst is a one-dimensional publisher")
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)
        noisy = self._identity.publish(counts, epsilon, gen)
        if counts.size > self.max_bins_for_merge or counts.size < 2:
            return noisy

        noise_variance = 2.0 / (epsilon * epsilon)
        path = _greedy_merge_path(noisy)

        best_estimate, best_score = noisy, np.inf
        for partition in path:
            estimate = np.empty_like(noisy)
            score = 0.0
            for start, end in partition:
                length = end - start + 1
                segment = noisy[start : end + 1]
                mean = segment.mean()
                estimate[start : end + 1] = mean
                # Estimated true within-bucket SSE (debias the noisy SSE)
                # plus the variance of the bucket's averaged noise.
                observed_sse = float(((segment - mean) ** 2).sum())
                debiased = max(observed_sse - (length - 1) * noise_variance, 0.0)
                score += debiased + noise_variance
            if score < best_score:
                best_score, best_estimate = score, estimate
        return best_estimate


class StructureFirstPublisher(HistogramPublisher):
    """Private structure selection, then per-bucket noisy sums.

    Delegates to the P-HP machinery (identical mechanism shape: private
    hierarchical bisection + disjoint noisy bucket sums) with a bucket
    count controlled by ``max_depth``.
    """

    name = "structurefirst"

    def __init__(self, max_depth: int = 6, structure_fraction: float = 0.5):
        self._php = PHPPublisher(
            max_depth=max_depth, structure_fraction=structure_fraction
        )

    def publish(
        self,
        counts: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 1:
            raise ValueError("StructureFirst is a one-dimensional publisher")
        return self._php.publish(counts, epsilon, rng)


def publish_dense(
    publisher: HistogramPublisher,
    counts: np.ndarray,
    epsilon: float,
    rng: RngLike = None,
) -> DenseNoisyHistogram:
    """Convenience: run any 1-D publisher and wrap the result."""
    return DenseNoisyHistogram(publisher.publish(counts, epsilon, rng))
