"""V-optimal histogram partitioning by dynamic programming.

The exact counterpart of the greedy merging inside NoiseFirst (Xu et
al. build their optimal k-bucket structure with this DP).  Given a
sequence of (noisy) counts, find the contiguous partition into at most
``k`` buckets minimizing the total within-bucket sum of squared errors:

``opt[k][i] = min_{j<i} opt[k-1][j] + SSE(j..i-1)``

``SSE(a..b)`` is computed in O(1) from prefix sums, and the inner
minimization is vectorized over ``j``, giving O(N²·k) with numpy-level
constants — practical to N of a few thousand.  The DP also returns the
actual bucket boundaries via backpointers.

``NoiseFirstPublisher`` uses the greedy merge path for scalability; this
module exists (a) as the exact reference the greedy is tested against,
(b) as an opt-in upgrade for small domains.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils import check_int_at_least


def _prefix_sums(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    sums = np.concatenate([[0.0], np.cumsum(values)])
    squares = np.concatenate([[0.0], np.cumsum(values**2)])
    return sums, squares


def segment_sse(sums: np.ndarray, squares: np.ndarray, a: int, b: int) -> float:
    """SSE of values[a..b] (inclusive) from prefix sums."""
    length = b - a + 1
    total = sums[b + 1] - sums[a]
    square = squares[b + 1] - squares[a]
    return float(square - total * total / length)


def voptimal_partition(
    values: np.ndarray,
    k: int,
) -> Tuple[List[Tuple[int, int]], float]:
    """The SSE-minimal partition of ``values`` into at most ``k`` buckets.

    Returns ``(spans, total_sse)`` with inclusive ``(start, end)`` spans.

    >>> spans, sse = voptimal_partition(np.array([1., 1., 9., 9.]), 2)
    >>> spans
    [(0, 1), (2, 3)]
    >>> round(sse, 6)
    0.0
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("need a non-empty 1-D array")
    n = values.size
    check_int_at_least("k", k, 1)
    k = min(k, n)

    sums, squares = _prefix_sums(values)

    # sse_ending[j, i] = SSE of values[j..i-1]; computed per column i
    # vectorized over j to keep memory O(N) per step.
    INF = np.inf
    # opt[i] for the current bucket count; boundaries[b][i] = best j.
    opt = np.empty(n + 1)
    opt[0] = 0.0
    for i in range(1, n + 1):
        opt[i] = segment_sse(sums, squares, 0, i - 1)
    backpointers = [np.zeros(n + 1, dtype=int)]

    lengths_cache = np.arange(1, n + 1, dtype=float)
    for _ in range(1, k):
        new_opt = np.full(n + 1, INF)
        pointer = np.zeros(n + 1, dtype=int)
        new_opt[0] = 0.0
        for i in range(1, n + 1):
            js = np.arange(i)
            lengths = lengths_cache[: i][::-1]  # i - js
            totals = sums[i] - sums[js]
            segment = (squares[i] - squares[js]) - totals * totals / lengths
            candidates = opt[js] + segment
            best = int(np.argmin(candidates))
            new_opt[i] = candidates[best]
            pointer[i] = best
        # A partition into b buckets is never worse than b-1 buckets.
        improved = new_opt <= opt
        pointer = np.where(improved, pointer, backpointers[-1])
        opt = np.minimum(new_opt, opt)
        backpointers.append(pointer)

    # Recover spans from the last backpointer table that improved.
    spans: List[Tuple[int, int]] = []
    i = n
    level = len(backpointers) - 1
    while i > 0:
        j = int(backpointers[level][i]) if level >= 0 else 0
        if level == 0:
            j = 0
        spans.append((j, i - 1))
        i = j
        level -= 1
    spans.reverse()
    return spans, float(opt[n])


def voptimal_estimate(values: np.ndarray, k: int) -> np.ndarray:
    """Replace each optimal bucket by its mean (the k-bucket histogram)."""
    values = np.asarray(values, dtype=float)
    spans, _ = voptimal_partition(values, k)
    estimate = np.empty_like(values)
    for start, end in spans:
        estimate[start : end + 1] = values[start : end + 1].mean()
    return estimate
