"""Uniform and adaptive grids for 2-D data (Qardaji et al., ICDE 2013).

The paper cites this method ([33]) as the specialist technique "proposed
especially for two dimensional data".  Both variants are implemented as
extra 2-D baselines:

* **UG (uniform grid)** — partition the domain into a g×g grid with the
  ICDE'13 rule ``g = sqrt(n ε / c)`` (``c ≈ 10``), add ``Lap(1/ε)`` to
  each grid cell, answer queries with uniformity inside cells.
* **AG (adaptive grid)** — a coarse first-level grid built with half the
  budget (``g₁ = sqrt(n ε / c) / 2`` rule), then each first-level cell
  whose noisy count is large is subdivided by its own second-level grid
  sized ``g₂ = sqrt(count·ε₂/c₂)`` and re-counted with the remaining
  budget (disjoint ⇒ parallel composition per level).

Input is raw 2-D points (a :class:`~repro.data.dataset.Dataset`), so —
like PSD — the grids do not require materializing the cell domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.histograms.base import Range, RangeQueryAnswerer, validate_ranges
from repro.utils import RngLike, as_generator, check_positive


def _edges(domain_size: int, cells: int) -> np.ndarray:
    """Integer bucket edges splitting [0, domain_size) into ``cells``."""
    cells = max(1, min(cells, domain_size))
    return np.unique(np.linspace(0, domain_size, cells + 1).astype(int))


@dataclass
class _GridCell:
    box: Tuple[Range, Range]
    noisy_count: float
    child: Optional["UniformGrid"] = None


class UniformGrid(RangeQueryAnswerer):
    """A g×g noisy grid over a 2-D integer domain."""

    def __init__(
        self,
        cells: List[_GridCell],
        domain_sizes: Sequence[int],
    ):
        self._cells = cells
        self._domain_sizes = tuple(int(s) for s in domain_sizes)

    @property
    def dimensions(self) -> int:
        return 2

    @property
    def cells(self) -> List[_GridCell]:
        return self._cells

    def range_count(self, ranges: Sequence[Range]) -> float:
        clipped = validate_ranges(ranges, self._domain_sizes)
        for low, high in clipped:
            if high < low:
                return 0.0
        total = 0.0
        for cell in self._cells:
            overlap = 1.0
            contained = True
            disjoint = False
            for (b_low, b_high), (q_low, q_high) in zip(cell.box, clipped):
                low = max(b_low, q_low)
                high = min(b_high, q_high)
                if high < low:
                    disjoint = True
                    break
                overlap *= high - low + 1
                if q_low > b_low or q_high < b_high:
                    contained = False
            if disjoint:
                continue
            if contained or cell.child is None:
                volume = 1.0
                for b_low, b_high in cell.box:
                    volume *= b_high - b_low + 1
                total += max(cell.noisy_count, 0.0) * (
                    1.0 if contained else overlap / volume
                )
            else:
                total += cell.child.range_count(clipped)
        return total


class UniformGridPublisher:
    """UG: one noisy g×g grid, g chosen by the ICDE'13 rule."""

    name = "ug"

    def __init__(self, c: float = 10.0, grid_size: Optional[int] = None):
        check_positive("c", c)
        self.c = c
        self.grid_size = grid_size

    def choose_grid_size(self, n: int, epsilon: float) -> int:
        """``g = sqrt(n ε / c)``, at least 1."""
        if self.grid_size is not None:
            return max(1, int(self.grid_size))
        return max(1, int(round(np.sqrt(n * epsilon / self.c))))

    def publish(
        self,
        dataset: Dataset,
        epsilon: float,
        rng: RngLike = None,
    ) -> UniformGrid:
        if dataset.dimensions != 2:
            raise ValueError("UniformGridPublisher handles 2-D data only")
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)
        sizes = dataset.schema.domain_sizes
        g = self.choose_grid_size(dataset.n_records, epsilon)
        edges_x = _edges(sizes[0], g)
        edges_y = _edges(sizes[1], g)
        counts, _, _ = np.histogram2d(
            dataset.column(0), dataset.column(1), bins=[edges_x, edges_y]
        )
        noisy = counts + gen.laplace(0.0, 1.0 / epsilon, size=counts.shape)
        cells = []
        for i in range(len(edges_x) - 1):
            for j in range(len(edges_y) - 1):
                box = (
                    (int(edges_x[i]), int(edges_x[i + 1] - 1)),
                    (int(edges_y[j]), int(edges_y[j + 1] - 1)),
                )
                cells.append(_GridCell(box=box, noisy_count=float(noisy[i, j])))
        return UniformGrid(cells, sizes)


class AdaptiveGridPublisher:
    """AG: coarse level-1 grid, dense level-2 grids in heavy cells."""

    name = "ag"

    def __init__(
        self,
        c: float = 10.0,
        c2: float = 5.0,
        level1_fraction: float = 0.5,
        subdivide_threshold: Optional[float] = None,
    ):
        check_positive("c", c)
        check_positive("c2", c2)
        if not 0.0 < level1_fraction < 1.0:
            raise ValueError(
                f"level1_fraction must lie in (0, 1), got {level1_fraction}"
            )
        self.c = c
        self.c2 = c2
        self.level1_fraction = level1_fraction
        self.subdivide_threshold = subdivide_threshold

    def publish(
        self,
        dataset: Dataset,
        epsilon: float,
        rng: RngLike = None,
    ) -> UniformGrid:
        if dataset.dimensions != 2:
            raise ValueError("AdaptiveGridPublisher handles 2-D data only")
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)
        epsilon1 = epsilon * self.level1_fraction
        epsilon2 = epsilon - epsilon1
        sizes = dataset.schema.domain_sizes
        n = dataset.n_records

        g1 = max(1, int(round(np.sqrt(n * epsilon / self.c) / 2.0)))
        edges_x = _edges(sizes[0], g1)
        edges_y = _edges(sizes[1], g1)
        counts, _, _ = np.histogram2d(
            dataset.column(0), dataset.column(1), bins=[edges_x, edges_y]
        )
        noisy = counts + gen.laplace(0.0, 1.0 / epsilon1, size=counts.shape)

        threshold = (
            self.subdivide_threshold
            if self.subdivide_threshold is not None
            else 2.0 * self.c2 / epsilon2
        )

        x = dataset.column(0)
        y = dataset.column(1)
        cells: List[_GridCell] = []
        for i in range(len(edges_x) - 1):
            for j in range(len(edges_y) - 1):
                box = (
                    (int(edges_x[i]), int(edges_x[i + 1] - 1)),
                    (int(edges_y[j]), int(edges_y[j + 1] - 1)),
                )
                cell = _GridCell(box=box, noisy_count=float(noisy[i, j]))
                estimated = max(cell.noisy_count, 0.0)
                box_cells = (box[0][1] - box[0][0] + 1) * (box[1][1] - box[1][0] + 1)
                if estimated > threshold and box_cells > 1:
                    g2 = max(
                        1, int(round(np.sqrt(estimated * epsilon2 / self.c2)))
                    )
                    sub_x = _edges(box[0][1] - box[0][0] + 1, g2) + box[0][0]
                    sub_y = _edges(box[1][1] - box[1][0] + 1, g2) + box[1][0]
                    mask = (
                        (x >= box[0][0])
                        & (x <= box[0][1])
                        & (y >= box[1][0])
                        & (y <= box[1][1])
                    )
                    sub_counts, _, _ = np.histogram2d(
                        x[mask], y[mask], bins=[sub_x, sub_y]
                    )
                    sub_noisy = sub_counts + gen.laplace(
                        0.0, 1.0 / epsilon2, size=sub_counts.shape
                    )
                    sub_cells = []
                    for a in range(len(sub_x) - 1):
                        for b in range(len(sub_y) - 1):
                            sub_box = (
                                (int(sub_x[a]), int(sub_x[a + 1] - 1)),
                                (int(sub_y[b]), int(sub_y[b + 1] - 1)),
                            )
                            sub_cells.append(
                                _GridCell(
                                    box=sub_box,
                                    noisy_count=float(sub_noisy[a, b]),
                                )
                            )
                    cell.child = UniformGrid(sub_cells, sizes)
                cells.append(cell)
        return UniformGrid(cells, sizes)
