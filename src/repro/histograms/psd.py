"""PSD: private spatial decompositions (Cormode et al., ICDE 2012).

The paper's strongest baseline (the "KD-hybrid" variant): a kd-tree built
over the raw records, with

* **private medians** at the upper levels — each split point is chosen by
  the exponential mechanism with the rank-distance-to-median utility
  (sensitivity 1), cycling through the axes;
* **uniform (midpoint) splits** below ``switch_level`` — structure that
  costs no budget, which is exactly the "hybrid" in KD-hybrid;
* **noisy counts at every node**, with the count budget divided across
  levels *geometrically* (deeper levels get more, weight ``2^(i/3)``, the
  allocation recommended by the PSD paper).  Nodes at one level are
  disjoint, so each level pays its slice once (parallel composition).

Queries descend the tree: fully-covered nodes contribute their noisy
count, partially-covered leaves contribute under the uniformity
assumption, and partially-covered internal nodes recurse.  Because the
input is the record list rather than the domain grid, PSD's space cost is
``O(mn)`` — the reason the paper can run it at domain spaces up to 10^24
where every grid-input method is infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.mechanisms import exponential_mechanism
from repro.histograms.base import Range, RangeQueryAnswerer, validate_ranges
from repro.utils import RngLike, as_generator, check_positive

Box = Tuple[Range, ...]


@dataclass
class PSDNode:
    """One node of the decomposition tree."""

    box: Box
    noisy_count: float
    children: List["PSDNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def volume(self) -> float:
        vol = 1.0
        for low, high in self.box:
            vol *= float(high - low + 1)
        return vol


def _overlap(box: Box, ranges: Sequence[Range]) -> Tuple[float, bool, bool]:
    """(overlap volume, fully contained, disjoint) of ``box`` vs the query."""
    volume = 1.0
    contained = True
    for (b_low, b_high), (q_low, q_high) in zip(box, ranges):
        low = max(b_low, q_low)
        high = min(b_high, q_high)
        if high < low:
            return 0.0, False, True
        volume *= float(high - low + 1)
        if q_low > b_low or q_high < b_high:
            contained = False
    return volume, contained, False


class PSDTree(RangeQueryAnswerer):
    """The sanitized decomposition: answers range counts by tree descent."""

    def __init__(self, root: PSDNode, dimensions: int):
        self._root = root
        self._dimensions = dimensions

    @property
    def root(self) -> PSDNode:
        return self._root

    @property
    def dimensions(self) -> int:
        return self._dimensions

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def range_count(self, ranges: Sequence[Range]) -> float:
        shape = [high + 1 for _, high in self._root.box]
        clipped = validate_ranges(ranges, shape)
        for low, high in clipped:
            if high < low:
                return 0.0
        return self._answer(self._root, clipped)

    def _answer(self, node: PSDNode, ranges: Sequence[Range]) -> float:
        overlap, contained, disjoint = _overlap(node.box, ranges)
        if disjoint:
            return 0.0
        count = max(node.noisy_count, 0.0)
        if contained:
            return count
        if node.is_leaf:
            return count * overlap / node.volume()
        return sum(self._answer(child, ranges) for child in node.children)


def enforce_tree_consistency(tree: PSDTree) -> PSDTree:
    """Hay-style two-pass consistency post-processing (in place).

    The PSD paper recommends post-processing the noisy tree so children
    sum to parents, which provably reduces query variance.  Upward pass:
    blend each internal node's own noisy count with its children's sum
    using the optimal-for-equal-variance weights ``z = (c·y + Σz_child)
    / (c + 1)`` with ``c`` the child count; downward pass: spread each
    node's residual equally over its children.  Pure post-processing —
    no privacy cost.
    """

    def upward(node: PSDNode) -> float:
        if node.is_leaf:
            return node.noisy_count
        child_sum = sum(upward(child) for child in node.children)
        c = len(node.children)
        node.noisy_count = (c * node.noisy_count + child_sum) / (c + 1.0)
        return node.noisy_count

    def downward(node: PSDNode) -> None:
        if node.is_leaf:
            return
        child_sum = sum(child.noisy_count for child in node.children)
        residual = (node.noisy_count - child_sum) / len(node.children)
        for child in node.children:
            child.noisy_count += residual
            downward(child)

    upward(tree.root)
    downward(tree.root)
    return tree


class PSDPublisher:
    """KD-hybrid private spatial decomposition over raw records.

    Parameters
    ----------
    height:
        Tree height (number of split levels).
    switch_level:
        Levels using private-median splits before switching to budget-free
        midpoint splits; ``None`` uses ``height // 2`` as in KD-hybrid.
    median_fraction:
        Budget share spent on private medians.
    max_median_candidates:
        Cap on candidate split values evaluated per node.
    consistency:
        Apply the Hay-style consistency post-processing to the finished
        tree (the PSD paper's recommended variance reduction).
    """

    name = "psd"

    def __init__(
        self,
        height: int = 8,
        switch_level: Optional[int] = None,
        median_fraction: float = 0.3,
        max_median_candidates: int = 64,
        consistency: bool = False,
    ):
        if height < 1:
            raise ValueError(f"height must be >= 1, got {height}")
        if switch_level is None:
            switch_level = max(1, height // 2)
        if not 0 <= switch_level <= height:
            raise ValueError(
                f"switch_level must lie in [0, {height}], got {switch_level}"
            )
        if not 0.0 <= median_fraction < 1.0:
            raise ValueError(
                f"median_fraction must lie in [0, 1), got {median_fraction}"
            )
        self.height = height
        self.switch_level = switch_level
        self.median_fraction = median_fraction
        self.max_median_candidates = max_median_candidates
        self.consistency = consistency

    def _count_budgets(self, epsilon_counts: float) -> np.ndarray:
        """Geometric allocation over levels 0..height (deeper gets more)."""
        levels = np.arange(self.height + 1, dtype=float)
        weights = 2.0 ** (levels / 3.0)
        return epsilon_counts * weights / weights.sum()

    def _private_median(
        self,
        column: np.ndarray,
        low: int,
        high: int,
        epsilon: float,
        rng: np.random.Generator,
    ) -> int:
        """Exponential-mechanism median: split value in ``[low, high - 1]``."""
        candidates = np.arange(low, high)
        if candidates.size > self.max_median_candidates:
            candidates = np.unique(
                np.linspace(low, high - 1, self.max_median_candidates).astype(int)
            )
        sorted_column = np.sort(column)
        target = column.size / 2.0
        left_counts = np.searchsorted(sorted_column, candidates, side="right")
        utilities = {int(v): -abs(float(c) - target) for v, c in zip(candidates, left_counts)}
        chosen = exponential_mechanism(
            list(utilities),
            utility=lambda v: utilities[v],
            sensitivity=1.0,
            epsilon=epsilon,
            rng=rng,
        )
        return int(chosen)

    def publish(
        self,
        dataset: Dataset,
        epsilon: float,
        rng: RngLike = None,
    ) -> PSDTree:
        check_positive("epsilon", epsilon)
        gen = as_generator(rng)
        m = dataset.dimensions

        epsilon_medians = epsilon * self.median_fraction
        epsilon_counts = epsilon - epsilon_medians
        per_level_counts = self._count_budgets(epsilon_counts)
        per_level_median = (
            epsilon_medians / self.switch_level if self.switch_level else 0.0
        )

        root_box: Box = tuple(
            (0, attribute.domain_size - 1) for attribute in dataset.schema
        )
        values = dataset.values

        def build(indices: np.ndarray, box: Box, depth: int) -> PSDNode:
            count_epsilon = per_level_counts[depth]
            true_count = float(indices.size)
            noisy_count = true_count + gen.laplace(0.0, 1.0 / count_epsilon)
            node = PSDNode(box=box, noisy_count=noisy_count)

            if depth >= self.height:
                return node
            # Choose a splittable axis, cycling from depth.
            axis = -1
            for offset in range(m):
                candidate = (depth + offset) % m
                low, high = box[candidate]
                if high > low:
                    axis = candidate
                    break
            if axis < 0:
                return node  # box is a single cell

            low, high = box[axis]
            column = values[indices, axis] if indices.size else np.empty(0)
            if depth < self.switch_level and per_level_median > 0 and column.size:
                split = self._private_median(column, low, high, per_level_median, gen)
            else:
                split = (low + high - 1) // 2  # midpoint (budget-free)
            split = min(max(split, low), high - 1)

            left_mask = column <= split if column.size else np.zeros(0, dtype=bool)
            left_indices = indices[left_mask] if indices.size else indices
            right_indices = indices[~left_mask] if indices.size else indices

            left_box = box[:axis] + ((low, split),) + box[axis + 1 :]
            right_box = box[:axis] + ((split + 1, high),) + box[axis + 1 :]
            node.children = [
                build(left_indices, left_box, depth + 1),
                build(right_indices, right_box, depth + 1),
            ]
            return node

        root = build(np.arange(dataset.n_records), root_box, 0)
        tree = PSDTree(root, m)
        if self.consistency:
            tree = enforce_tree_consistency(tree)
        return tree
