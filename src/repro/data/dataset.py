"""Tabular dataset model.

The paper works with integer-coded multi-dimensional data: each attribute
``A_i`` has a finite ordered domain ``{0, ..., |A_i| - 1}`` (nominal
attributes are totally ordered first, as in Xiao et al. [39]).  A
:class:`Dataset` is an ``n × m`` integer matrix plus a :class:`Schema`
describing the per-attribute domains; everything downstream (histograms,
copulas, queries) consumes this representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import check_int_at_least

# Attributes with fewer than this many values cannot be treated as
# approximately continuous (paper section 4.4) and must go through the
# hybrid partitioning path.
SMALL_DOMAIN_THRESHOLD = 10


@dataclass(frozen=True)
class Attribute:
    """A named attribute with an integer domain ``{0, ..., domain_size-1}``."""

    name: str
    domain_size: int

    def __post_init__(self) -> None:
        check_int_at_least(f"domain size of {self.name!r}", self.domain_size, 1)

    @property
    def is_small_domain(self) -> bool:
        """True when the domain is too small for the copula approximation."""
        return self.domain_size < SMALL_DOMAIN_THRESHOLD

    def contains(self, values: np.ndarray) -> bool:
        """Whether every entry of ``values`` lies in this attribute's domain."""
        values = np.asarray(values)
        return bool(values.size == 0 or ((values >= 0) & (values < self.domain_size)).all())


class Schema:
    """An ordered collection of :class:`Attribute` objects.

    A schema may additionally designate one attribute as the **target**
    column — the label the ML-utility workload predicts
    (:mod:`repro.queries.ml_utility`).  The target is evaluation
    metadata, not part of the data contract: two schemas with the same
    attributes compare equal regardless of their targets, so a
    synthesizer that rebuilds the schema without the annotation still
    produces comparable datasets.
    """

    def __init__(
        self, attributes: Iterable[Attribute], target: Optional[str] = None
    ):
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        if not self._attributes:
            raise ValueError("a schema needs at least one attribute")
        names = [a.name for a in self._attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        if target is not None and target not in names:
            raise ValueError(
                f"target {target!r} is not an attribute of this schema "
                f"(attributes: {names})"
            )
        self._target = target
        self._domain_sizes_array = np.array(
            [a.domain_size for a in self._attributes], dtype=np.int64
        )
        self._domain_sizes_array.setflags(write=False)

    @classmethod
    def from_domain_sizes(cls, sizes: Sequence[int], prefix: str = "A") -> "Schema":
        """Build a schema with generated names ``A0, A1, ...``."""
        return cls(Attribute(f"{prefix}{i}", int(s)) for i, s in enumerate(sizes))

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> List[str]:
        return [a.name for a in self._attributes]

    @property
    def domain_sizes(self) -> List[int]:
        return [a.domain_size for a in self._attributes]

    @property
    def domain_sizes_array(self) -> np.ndarray:
        """Domain sizes as a read-only int64 vector, for vectorized checks."""
        return self._domain_sizes_array

    @property
    def dimensions(self) -> int:
        return len(self._attributes)

    @property
    def target(self) -> Optional[str]:
        """Name of the designated target attribute, or ``None``."""
        return self._target

    @property
    def target_index(self) -> int:
        """Position of the target attribute.

        Raises ``ValueError`` when no target is designated — callers of
        the ML-utility workload either pass an explicit target or use
        :meth:`with_target` to annotate the schema first.
        """
        if self._target is None:
            raise ValueError(
                "schema has no target attribute; set one with "
                "Schema.with_target(name) or pass target= explicitly"
            )
        return self.index_of(self._target)

    def with_target(self, name: Optional[str]) -> "Schema":
        """A copy of this schema with the target attribute set to ``name``."""
        return Schema(self._attributes, target=name)

    def domain_space(self) -> float:
        """The paper's ``∏ |A_i|``: total number of histogram bins.

        Returned as a float because for the 8-D experiments it reaches
        ``10**24``, far beyond int64 multiplication safety for downstream
        arithmetic.
        """
        return float(np.prod([float(s) for s in self.domain_sizes]))

    def index_of(self, name: str) -> int:
        """Position of the attribute called ``name``."""
        for i, attribute in enumerate(self._attributes):
            if attribute.name == name:
                return i
        raise KeyError(f"no attribute named {name!r}")

    def small_domain_indices(self) -> List[int]:
        """Indices of attributes the hybrid algorithm must partition on."""
        return [i for i, a in enumerate(self._attributes) if a.is_small_domain]

    def large_domain_indices(self) -> List[int]:
        """Indices of attributes DPCopula can model directly."""
        return [i for i, a in enumerate(self._attributes) if not a.is_small_domain]

    def subset(self, indices: Sequence[int]) -> "Schema":
        """Schema restricted to ``indices`` (in the given order).

        The target annotation survives when its attribute is kept.
        """
        kept = [self._attributes[i] for i in indices]
        names = {a.name for a in kept}
        return Schema(kept, target=self._target if self._target in names else None)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, index: int) -> Attribute:
        return self._attributes[index]

    def __eq__(self, other: object) -> bool:
        # Deliberately ignores the target annotation: the target marks a
        # workload convention, not a difference in the data itself.
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}[{a.domain_size}]" for a in self._attributes)
        if self._target is not None:
            return f"Schema({parts}, target={self._target!r})"
        return f"Schema({parts})"


class Dataset:
    """An integer-coded table: ``n`` records over a :class:`Schema`.

    The column matrix is stored as an ``(n, m)`` int64 array.  Instances
    are immutable from the library's point of view (the array is marked
    read-only) so synthesizers can share them without defensive copies.
    """

    def __init__(self, values: np.ndarray, schema: Schema):
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"dataset values must be 2-D, got shape {values.shape}")
        if values.shape[1] != schema.dimensions:
            raise ValueError(
                f"dataset has {values.shape[1]} columns but schema has "
                f"{schema.dimensions} attributes"
            )
        if values.size and not np.issubdtype(values.dtype, np.integer):
            rounded = np.rint(values)
            if not np.allclose(values, rounded):
                raise ValueError("dataset values must be integer-coded")
            values = rounded
        values = values.astype(np.int64, copy=True)
        # One vectorized pass over all columns; only on failure fall back
        # to the per-column scan to name the offending attribute.
        if values.size and (
            values.min() < 0
            or (values.max(axis=0) >= schema.domain_sizes_array).any()
        ):
            for j, attribute in enumerate(schema):
                if not attribute.contains(values[:, j]):
                    raise ValueError(
                        f"column {attribute.name!r} contains values outside "
                        f"[0, {attribute.domain_size})"
                    )
        values.setflags(write=False)
        self._values = values
        self._schema = schema

    @property
    def values(self) -> np.ndarray:
        """Read-only ``(n, m)`` matrix of integer codes."""
        return self._values

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_records(self) -> int:
        return self._values.shape[0]

    @property
    def dimensions(self) -> int:
        return self._values.shape[1]

    def column(self, index: int) -> np.ndarray:
        """The ``index``-th column as a 1-D array."""
        return self._values[:, index]

    def project(self, indices: Sequence[int]) -> "Dataset":
        """Dataset restricted to the given attribute indices."""
        indices = list(indices)
        return Dataset(self._values[:, indices], self._schema.subset(indices))

    def select(self, mask: np.ndarray) -> "Dataset":
        """Dataset restricted to records where ``mask`` is True."""
        return Dataset(self._values[np.asarray(mask, dtype=bool)], self._schema)

    def sample(self, size: int, rng: np.random.Generator) -> "Dataset":
        """Uniform without-replacement sample of ``min(size, n)`` records."""
        size = min(int(size), self.n_records)
        indices = rng.choice(self.n_records, size=size, replace=False)
        return Dataset(self._values[indices], self._schema)

    def marginal_counts(self, index: int) -> np.ndarray:
        """Exact (non-private) marginal histogram for attribute ``index``."""
        attribute = self._schema[index]
        return np.bincount(self.column(index), minlength=attribute.domain_size).astype(float)

    def __len__(self) -> int:
        return self.n_records

    def __repr__(self) -> str:
        return f"Dataset(n={self.n_records}, schema={self._schema!r})"


def coarsen_dataset(dataset: Dataset, max_domain_size: int) -> Dataset:
    """Bucket large attribute domains down to at most ``max_domain_size``.

    Each oversized attribute's values are integer-divided by
    ``ceil(domain / max_domain_size)``.  Used by the experiment harness to
    give dense-grid baselines (Privelet, P-HP) a materializable domain
    when comparing against point-input methods on census-scale schemas;
    the coarsening factor is recorded in the new attribute names.
    """
    check_int_at_least("max_domain_size", max_domain_size, 2)
    attributes = []
    columns = []
    for j, attribute in enumerate(dataset.schema):
        size = attribute.domain_size
        if size <= max_domain_size:
            attributes.append(attribute)
            columns.append(dataset.column(j))
            continue
        factor = -(-size // max_domain_size)  # ceil division
        new_size = -(-size // factor)
        attributes.append(Attribute(f"{attribute.name}/{factor}", new_size))
        columns.append(dataset.column(j) // factor)
    return Dataset(np.column_stack(columns), Schema(attributes))


def concatenate(datasets: Sequence[Dataset]) -> Dataset:
    """Stack datasets sharing one schema into a single dataset."""
    if not datasets:
        raise ValueError("need at least one dataset to concatenate")
    schema = datasets[0].schema
    for ds in datasets[1:]:
        if ds.schema != schema:
            raise ValueError("cannot concatenate datasets with different schemas")
    values = np.vstack([ds.values for ds in datasets])
    return Dataset(values, schema)
