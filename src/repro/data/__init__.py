"""Datasets: schema model, synthetic generators, simulated census extracts."""

from repro.data.dataset import Attribute, Dataset, Schema
from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.data.census import brazil_census, us_census
from repro.data.discretize import (
    CategoricalEncoder,
    ContinuousBinner,
    TableEncoder,
)

__all__ = [
    "Attribute",
    "Schema",
    "Dataset",
    "SyntheticSpec",
    "gaussian_dependence_data",
    "random_correlation_matrix",
    "us_census",
    "brazil_census",
    "CategoricalEncoder",
    "ContinuousBinner",
    "TableEncoder",
]
