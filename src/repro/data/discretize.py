"""Preparing raw columns for DPCopula: encoding onto integer domains.

The paper's pipeline assumes integer-coded attributes: "For nominal
attributes, we convert them to numeric attributes by imposing a total
order on the domain of the attribute" (Section 5.1, following Xiao et
al.).  This module provides the two encoders a real ingestion needs and
their inverses, so synthetic data can be decoded back to the original
value space:

* :class:`CategoricalEncoder` — nominal values -> dense codes under a
  chosen total order (lexicographic by default);
* :class:`ContinuousBinner` — real values -> equal-width or quantile
  bins, decoding to bin midpoints (quantile bins give every code similar
  mass, which suits the copula's approximately-continuous-margin
  assumption).

A note on privacy: fitting an encoder *on the sensitive data* makes the
encoding data-dependent (quantile edges, observed category sets leak).
For a strict end-to-end guarantee, fit encoders on public metadata
(known category lists, fixed value ranges) — both encoders accept
explicit specifications for exactly that reason.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import Attribute, Dataset, Schema
from repro.utils import check_int_at_least


class CategoricalEncoder:
    """Total-order encoding of nominal values onto ``{0..K-1}``.

    >>> encoder = CategoricalEncoder(["red", "green", "blue"])
    >>> encoder.encode(["green", "blue", "green"]).tolist()
    [1, 0, 1]
    """

    def __init__(self, categories: Sequence):
        ordered = sorted(set(categories), key=lambda v: str(v))
        if not ordered:
            raise ValueError("need at least one category")
        self._categories: List = ordered
        self._codes = {value: code for code, value in enumerate(ordered)}

    @classmethod
    def fit(cls, values: Sequence) -> "CategoricalEncoder":
        """Infer the category set from observed values (see privacy note)."""
        return cls(list(values))

    @property
    def domain_size(self) -> int:
        return len(self._categories)

    @property
    def categories(self) -> List:
        return list(self._categories)

    def encode(self, values: Sequence) -> np.ndarray:
        """Map values to codes; unknown values raise."""
        try:
            return np.asarray([self._codes[v] for v in values], dtype=np.int64)
        except KeyError as error:
            raise ValueError(f"unknown category {error.args[0]!r}") from None

    def decode(self, codes: np.ndarray) -> List:
        """Map codes back to the original values."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.domain_size):
            raise ValueError("code outside the encoder's domain")
        return [self._categories[int(code)] for code in codes]


class ContinuousBinner:
    """Discretization of real values onto ``{0..bins-1}``.

    Parameters
    ----------
    edges:
        Explicit strictly-increasing bin edges (``len = bins + 1``).
        Prefer public, data-independent edges (see the module note);
        :meth:`fit` derives them from data when that is acceptable.
    """

    def __init__(self, edges: Sequence[float]):
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("need at least two bin edges")
        if not (np.diff(edges) > 0).all():
            raise ValueError("bin edges must be strictly increasing")
        self._edges = edges

    @classmethod
    def fit(
        cls,
        values: Sequence[float],
        bins: int = 100,
        strategy: str = "quantile",
    ) -> "ContinuousBinner":
        """Derive edges from data: ``"quantile"`` or ``"uniform"`` width."""
        check_int_at_least("bins", bins, 1)
        values = np.asarray(list(values), dtype=float)
        if values.size == 0:
            raise ValueError("cannot fit a binner on no data")
        if strategy == "quantile":
            edges = np.quantile(values, np.linspace(0.0, 1.0, bins + 1))
            edges = np.unique(edges)
            if edges.size < 2:
                edges = np.array([values.min(), values.min() + 1.0])
        elif strategy == "uniform":
            low, high = float(values.min()), float(values.max())
            if high <= low:
                high = low + 1.0
            edges = np.linspace(low, high, bins + 1)
        else:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected 'quantile' or 'uniform'"
            )
        return cls(edges)

    @property
    def domain_size(self) -> int:
        return self._edges.size - 1

    @property
    def edges(self) -> np.ndarray:
        return self._edges.copy()

    def encode(self, values: Sequence[float]) -> np.ndarray:
        """Bin values; out-of-range values clamp to the boundary bins."""
        values = np.asarray(list(values), dtype=float)
        codes = np.searchsorted(self._edges, values, side="right") - 1
        return np.clip(codes, 0, self.domain_size - 1).astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map codes to bin midpoints."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.domain_size):
            raise ValueError("code outside the binner's domain")
        left = self._edges[codes]
        right = self._edges[codes + 1]
        return (left + right) / 2.0


class TableEncoder:
    """Column-wise encoder bundle producing a :class:`Dataset`.

    >>> import numpy as np
    >>> encoder = TableEncoder(
    ...     names=["color", "height"],
    ...     encoders=[
    ...         CategoricalEncoder(["red", "blue"]),
    ...         ContinuousBinner([0.0, 1.5, 2.0]),
    ...     ],
    ... )
    >>> dataset = encoder.encode([["red", 1.0], ["blue", 1.8]])
    >>> dataset.values.tolist()
    [[1, 0], [0, 1]]
    """

    def __init__(self, names: Sequence[str], encoders: Sequence):
        if len(names) != len(encoders):
            raise ValueError(
                f"{len(names)} names for {len(encoders)} encoders"
            )
        self.names = list(names)
        self.encoders = list(encoders)
        self.schema = Schema(
            Attribute(name, encoder.domain_size)
            for name, encoder in zip(self.names, self.encoders)
        )

    def encode(self, rows: Sequence[Sequence]) -> Dataset:
        """Encode raw rows into an integer-coded :class:`Dataset`."""
        columns = list(zip(*rows)) if rows else [[] for _ in self.names]
        if len(columns) != len(self.encoders):
            raise ValueError(
                f"rows have {len(columns)} columns, expected {len(self.encoders)}"
            )
        encoded = [
            encoder.encode(column)
            for encoder, column in zip(self.encoders, columns)
        ]
        values = (
            np.column_stack(encoded)
            if rows
            else np.empty((0, len(self.encoders)), dtype=np.int64)
        )
        return Dataset(values, self.schema)

    def decode(self, dataset: Dataset) -> List[List]:
        """Decode a (synthetic) dataset back to original value space."""
        if dataset.schema != self.schema:
            raise ValueError("dataset schema does not match this encoder")
        decoded_columns = [
            encoder.decode(dataset.column(j))
            for j, encoder in enumerate(self.encoders)
        ]
        return [list(row) for row in zip(*decoded_columns)]
