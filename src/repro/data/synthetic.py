"""Synthetic data with Gaussian dependence and configurable margins.

Section 5.4 of the paper evaluates on synthetic datasets generated with a
Gaussian dependence structure and margins drawn from Gaussian, uniform or
Zipf families over integer domains of size 1000.  This module implements
exactly that generating process: draw latent ``Z ~ N(0, P)``, push each
coordinate through the standard normal CDF to get uniforms, then through
the inverse CDF of the requested margin onto the integer domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np
from scipy import stats as sps

from repro.data.dataset import Dataset, Schema
from repro.stats.distributions import margin_pmf
from repro.utils import RngLike, as_generator, check_int_at_least, check_matrix_square

MarginSpec = Union[str, Sequence[float]]


@dataclass
class SyntheticSpec:
    """Specification of a synthetic dataset in the style of Section 5.4.

    Parameters
    ----------
    n_records:
        Dataset cardinality (paper default 50000).
    domain_sizes:
        Per-attribute domain sizes (paper default: 1000 for every attribute).
    margins:
        Per-attribute margin family: ``"gaussian"``, ``"uniform"``,
        ``"zipf"`` or an explicit pmf.  A single string applies to all
        attributes.
    correlation:
        Latent Gaussian correlation matrix ``P``; ``None`` draws a random
        well-conditioned one.
    """

    n_records: int = 50_000
    domain_sizes: Sequence[int] = (1000, 1000)
    margins: Union[MarginSpec, Sequence[MarginSpec]] = "gaussian"
    correlation: Optional[np.ndarray] = None
    zipf_exponent: float = 1.2
    gaussian_spread: float = 4.0
    seed_names: str = "A"
    extra: dict = field(default_factory=dict)

    @property
    def dimensions(self) -> int:
        return len(self.domain_sizes)

    def margin_for(self, index: int) -> MarginSpec:
        """Margin spec for attribute ``index``."""
        if isinstance(self.margins, str):
            return self.margins
        margins = list(self.margins)
        if len(margins) == 1:
            return margins[0]
        if len(margins) != self.dimensions:
            raise ValueError(
                f"{len(margins)} margins for {self.dimensions} attributes"
            )
        return margins[index]


def random_correlation_matrix(
    m: int,
    rng: RngLike = None,
    strength: float = 0.7,
) -> np.ndarray:
    """A random positive-definite correlation matrix.

    Built as a normalized random Gram matrix blended toward the identity:
    ``strength = 0`` gives independence, ``strength → 1`` gives strongly
    coupled attributes.  Always strictly positive definite.
    """
    check_int_at_least("m", m, 1)
    if not 0.0 <= strength < 1.0:
        raise ValueError(f"strength must lie in [0, 1), got {strength}")
    gen = as_generator(rng)
    factors = gen.standard_normal((m, max(m, 2)))
    gram = factors @ factors.T
    diag = np.sqrt(np.diag(gram))
    correlation = gram / np.outer(diag, diag)
    blended = strength * correlation + (1.0 - strength) * np.eye(m)
    # Renormalize the diagonal exactly to 1 (it already is, up to rounding).
    d = np.sqrt(np.diag(blended))
    blended = blended / np.outer(d, d)
    return (blended + blended.T) / 2.0


def _inverse_margin(uniforms: np.ndarray, pmf: np.ndarray) -> np.ndarray:
    """Map uniforms through the inverse CDF of a discrete pmf."""
    cdf = np.cumsum(pmf)
    cdf[-1] = 1.0  # guard against rounding drift
    return np.searchsorted(cdf, uniforms, side="left").astype(np.int64)


def gaussian_dependence_data(
    spec: SyntheticSpec,
    rng: RngLike = None,
) -> Dataset:
    """Generate a dataset following ``spec`` (the paper's Section 5.4 process).

    Returns a :class:`Dataset` whose latent dependence is exactly Gaussian
    with correlation ``spec.correlation`` and whose margins follow the
    requested families discretized onto the integer domains.
    """
    gen = as_generator(rng)
    m = spec.dimensions
    check_int_at_least("n_records", spec.n_records, 1)

    if spec.correlation is None:
        correlation = random_correlation_matrix(m, gen)
    else:
        correlation = check_matrix_square("correlation", spec.correlation)
        if correlation.shape[0] != m:
            raise ValueError(
                f"correlation is {correlation.shape[0]}x{correlation.shape[0]} "
                f"but spec has {m} attributes"
            )

    latent = gen.multivariate_normal(
        mean=np.zeros(m), cov=correlation, size=spec.n_records, method="cholesky"
    )
    uniforms = sps.norm.cdf(latent)

    columns = []
    for j in range(m):
        pmf = margin_pmf(
            spec.margin_for(j),
            spec.domain_sizes[j],
            zipf_exponent=spec.zipf_exponent,
            gaussian_spread=spec.gaussian_spread,
        )
        columns.append(_inverse_margin(uniforms[:, j], pmf))

    values = np.column_stack(columns)
    schema = Schema.from_domain_sizes(spec.domain_sizes, prefix=spec.seed_names)
    return Dataset(values, schema)
