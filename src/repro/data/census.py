"""Simulated census extracts matching the paper's real datasets.

The paper evaluates on two IPUMS extracts that cannot be redistributed:

* **US census** — 100,000 records, 4 attributes:
  age (96), income (1020), occupation (511), gender (2);
* **Brazil census** — 188,846 records, 8 attributes:
  age (95), gender (2), disability (2), nativity (2),
  number of years residing (31), education (140),
  working hours per week (95), annual income (586).

Per the reproduction's substitution rule we ship deterministic simulators
with the *published schemas and domain sizes* (Table 2), realistic skewed
margins (heavy-tailed income, mixture-shaped age, skewed binary
attributes) and a plausible Gaussian dependence (age/education/income
positively coupled, hours coupled to income, etc.).  The methods under
comparison see data with the same dimensionality, domain sizes, skew and
cardinality as the originals, so the comparative behaviour the figures
report is preserved even though absolute error values differ.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats as sps

from repro.data.dataset import Dataset, Attribute, Schema
from repro.stats.distributions import zipf_pmf
from repro.utils import RngLike, as_generator

US_CENSUS_SCHEMA = Schema(
    [
        Attribute("age", 96),
        Attribute("income", 1020),
        Attribute("occupation", 511),
        Attribute("gender", 2),
    ]
)

BRAZIL_CENSUS_SCHEMA = Schema(
    [
        Attribute("age", 95),
        Attribute("gender", 2),
        Attribute("disability", 2),
        Attribute("nativity", 2),
        Attribute("years_residing", 31),
        Attribute("education", 140),
        Attribute("working_hours", 95),
        Attribute("annual_income", 586),
    ]
)


def _age_pmf(domain_size: int) -> np.ndarray:
    """Population-pyramid-like age margin: broad with a young bulge."""
    ages = np.arange(domain_size, dtype=float)
    young = sps.norm.pdf(ages, loc=0.28 * domain_size, scale=0.16 * domain_size)
    old = sps.norm.pdf(ages, loc=0.55 * domain_size, scale=0.22 * domain_size)
    pmf = 0.55 * young + 0.45 * old
    return pmf / pmf.sum()


def _income_pmf(domain_size: int) -> np.ndarray:
    """Heavy-tailed income margin with a spike at zero (no income)."""
    pmf = zipf_pmf(domain_size, exponent=1.05)
    pmf = pmf.copy()
    pmf[0] += 0.08  # mass for zero-income records
    return pmf / pmf.sum()


def _education_pmf(domain_size: int) -> np.ndarray:
    """Education margin: most mass at low/mid codes, thin tail of degrees."""
    codes = np.arange(domain_size, dtype=float)
    pmf = np.exp(-codes / (0.25 * domain_size))
    pmf += 0.3 * sps.norm.pdf(codes, loc=0.35 * domain_size, scale=0.1 * domain_size)
    return pmf / pmf.sum()


def _hours_pmf(domain_size: int) -> np.ndarray:
    """Working-hours margin: spike near full-time, mass at zero."""
    hours = np.arange(domain_size, dtype=float)
    pmf = sps.norm.pdf(hours, loc=0.42 * domain_size, scale=0.12 * domain_size)
    pmf[0] += 0.35 * pmf.sum()  # not in the labour force
    return pmf / pmf.sum()


def _occupation_pmf(domain_size: int) -> np.ndarray:
    """Occupation codes: Zipf-like popularity of occupations."""
    return zipf_pmf(domain_size, exponent=0.9)


def _years_pmf(domain_size: int) -> np.ndarray:
    """Years-residing margin: geometric decay (most people moved recently)."""
    years = np.arange(domain_size, dtype=float)
    pmf = np.exp(-years / (0.3 * domain_size))
    return pmf / pmf.sum()


def _binary_pmf(p_one: float) -> np.ndarray:
    """Binary margin with ``P[X = 1] = p_one``."""
    return np.array([1.0 - p_one, p_one])


def _sample_from_latent(
    pmfs, correlation: np.ndarray, n_records: int, schema: Schema, rng: np.random.Generator
) -> Dataset:
    """Draw records with Gaussian dependence and the given discrete margins."""
    latent = rng.multivariate_normal(
        mean=np.zeros(len(pmfs)), cov=correlation, size=n_records, method="cholesky"
    )
    uniforms = sps.norm.cdf(latent)
    columns = []
    for j, pmf in enumerate(pmfs):
        cdf = np.cumsum(pmf)
        cdf[-1] = 1.0
        columns.append(np.searchsorted(cdf, uniforms[:, j], side="left"))
    return Dataset(np.column_stack(columns).astype(np.int64), schema)


def us_census(
    n_records: int = 100_000,
    rng: RngLike = 20140324,
    correlation: Optional[np.ndarray] = None,
) -> Dataset:
    """Simulated US census extract (schema of Table 2(a)).

    Defaults are deterministic (fixed seed) so experiments are repeatable;
    pass a different ``rng`` to draw an independent replicate.
    """
    gen = as_generator(rng)
    if correlation is None:
        # age, income, occupation, gender
        correlation = np.array(
            [
                [1.00, 0.45, 0.20, 0.02],
                [0.45, 1.00, 0.35, 0.15],
                [0.20, 0.35, 1.00, 0.10],
                [0.02, 0.15, 0.10, 1.00],
            ]
        )
    pmfs = [
        _age_pmf(96),
        _income_pmf(1020),
        _occupation_pmf(511),
        _binary_pmf(0.49),
    ]
    return _sample_from_latent(pmfs, correlation, n_records, US_CENSUS_SCHEMA, gen)


def brazil_census(
    n_records: int = 188_846,
    rng: RngLike = 20140325,
    correlation: Optional[np.ndarray] = None,
) -> Dataset:
    """Simulated Brazil census extract (schema of Table 2(b))."""
    gen = as_generator(rng)
    if correlation is None:
        # age, gender, disability, nativity, years, education, hours, income
        base = np.eye(8)
        couples = {
            (0, 4): 0.40,   # age - years residing
            (0, 5): -0.15,  # age - education (younger cohorts more educated)
            (0, 7): 0.30,   # age - income
            (5, 7): 0.45,   # education - income
            (6, 7): 0.50,   # hours - income
            (5, 6): 0.25,   # education - hours
            (2, 6): -0.20,  # disability - hours
            (1, 7): 0.12,   # gender - income
            (3, 4): 0.18,   # nativity - years residing
        }
        for (i, j), value in couples.items():
            base[i, j] = base[j, i] = value
        # Blend toward identity enough to guarantee positive definiteness.
        correlation = 0.9 * base + 0.1 * np.eye(8)
        d = np.sqrt(np.diag(correlation))
        correlation = correlation / np.outer(d, d)
    pmfs = [
        _age_pmf(95),
        _binary_pmf(0.51),
        _binary_pmf(0.14),
        _binary_pmf(0.07),
        _years_pmf(31),
        _education_pmf(140),
        _hours_pmf(95),
        _income_pmf(586),
    ]
    return _sample_from_latent(pmfs, correlation, n_records, BRAZIL_CENSUS_SCHEMA, gen)
