"""Gaussian-copula density and maximum-likelihood estimation.

Equation (1) of the paper gives the Gaussian-copula density

``c_P(u) = |P|^{-1/2} exp(-z' (P⁻¹ - I) z / 2)``, ``z = Φ⁻¹(u)``.

Maximizing the full joint pseudo-likelihood over an m×m correlation matrix
is hard (the paper notes this and motivates the Kendall estimator); the
standard practical MLE proceeds pairwise — each off-diagonal coefficient
is estimated from its bivariate copula likelihood, for which the score
equation is one-dimensional.  That is what Algorithm 2 computes on each
data partition.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, stats as sps

from repro.stats.psd_repair import (
    DEFAULT_EIGENVALUE_FLOOR,
    is_positive_definite,
    make_positive_definite,
)
from repro.utils import check_matrix_square

_PROBIT_CLIP = 1e-12

#: Eigenvalue floor for covariance (non-correlation) factorization; the
#: conditional sampler's historical constant, kept for bitwise stability.
COVARIANCE_EIGENVALUE_FLOOR = 1e-10


def cholesky_factor(
    matrix: np.ndarray,
    repair: str = "correlation",
    floor: float = None,
) -> np.ndarray:
    """The library's one Cholesky-with-jitter-floor idiom.

    Every Gaussian(-like) sampler needs the lower-triangular factor
    ``L`` with ``L Lᵀ = M`` of a matrix that may have drifted slightly
    indefinite (Laplace noise on a correlation, floating-point error in
    a Schur complement).  This helper centralizes the repair-then-factor
    step so the floor semantics cannot diverge between call sites.

    Parameters
    ----------
    matrix:
        The symmetric matrix to factor.
    repair:
        ``"correlation"`` (default) applies Algorithm 5's eigenvalue
        repair — only when an eigenvalue check fails — and renormalizes
        the diagonal to 1 (:func:`~repro.stats.psd_repair.make_positive_definite`).
        ``"covariance"`` unconditionally floors the eigenvalues and
        reassembles *without* renormalizing (the diagonal is meaningful
        for a covariance).  ``"none"`` factors as-is and lets
        ``np.linalg.cholesky`` raise on an indefinite input.
    floor:
        Eigenvalue floor; defaults to
        :data:`~repro.stats.psd_repair.DEFAULT_EIGENVALUE_FLOOR` for
        ``"correlation"`` and :data:`COVARIANCE_EIGENVALUE_FLOOR` for
        ``"covariance"``.

    Returns
    -------
    The lower-triangular Cholesky factor of the (repaired) matrix.
    """
    matrix = check_matrix_square("matrix", matrix)
    if repair == "correlation":
        if not is_positive_definite(matrix):
            matrix = make_positive_definite(
                matrix,
                floor=DEFAULT_EIGENVALUE_FLOOR if floor is None else floor,
            )
    elif repair == "covariance":
        if floor is None:
            floor = COVARIANCE_EIGENVALUE_FLOOR
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        matrix = (eigenvectors * np.clip(eigenvalues, floor, None)) @ eigenvectors.T
    elif repair != "none":
        raise ValueError(
            f"repair must be 'correlation', 'covariance' or 'none', got {repair!r}"
        )
    return np.linalg.cholesky(matrix)


def _probit(u: np.ndarray) -> np.ndarray:
    """Numerically safe ``Φ⁻¹`` on pseudo-copula data."""
    return sps.norm.ppf(np.clip(np.asarray(u, dtype=float), _PROBIT_CLIP, 1.0 - _PROBIT_CLIP))


#: Gauss-Legendre node count for the bivariate normal CDF quadrature.
#: 48 nodes keep the absolute error below ~1e-12 for |ρ| ≤ 0.99 (the
#: integrand is smooth on the integration path; only |ρ| → 1 degrades).
_BVN_QUADRATURE_NODES = 48

#: Probit scores are clipped to ±8 before quadrature: Φ(±8) differs from
#: 0/1 by < 1e-15, and finite scores keep the integrand free of inf·0.
_BVN_SCORE_CLIP = 8.0


def bivariate_normal_cdf(h, k, rho: float) -> np.ndarray:
    """``Φ₂(h, k; ρ) = P(Z₁ ≤ h, Z₂ ≤ k)`` for standard bivariate normals.

    Deterministic Gauss-Legendre quadrature of Drezner's identity

    ``Φ₂(h, k; ρ) = Φ(h)Φ(k) +
    (1/2π) ∫₀^ρ exp(−(h² − 2 t h k + k²) / (2(1−t²))) / √(1−t²) dt``

    so repeated evaluations are bitwise identical (scipy's
    ``multivariate_normal.cdf`` integrates adaptively and is not).  Used
    to turn a released Gaussian-copula model (DP margins + repaired
    correlation ρ) into its *implied* two-way marginal cell
    probabilities — the reference distribution the utility probe's
    k-way marginal gauge scores samples against.

    ``h`` and ``k`` broadcast against each other; ``rho`` is scalar.
    ``|ρ| = 1`` falls back to the exact comonotone/antitone formulas.
    """
    h = np.clip(np.asarray(h, dtype=float), -_BVN_SCORE_CLIP, _BVN_SCORE_CLIP)
    k = np.clip(np.asarray(k, dtype=float), -_BVN_SCORE_CLIP, _BVN_SCORE_CLIP)
    rho = float(rho)
    if not -1.0 <= rho <= 1.0:
        raise ValueError(f"rho must lie in [-1, 1], got {rho}")
    phi_h = sps.norm.cdf(h)
    phi_k = sps.norm.cdf(k)
    if rho >= 1.0 - 1e-12:
        return np.minimum(phi_h, phi_k)
    if rho <= -1.0 + 1e-12:
        return np.maximum(phi_h + phi_k - 1.0, 0.0)
    if rho == 0.0:
        return phi_h * phi_k
    nodes, weights = np.polynomial.legendre.leggauss(_BVN_QUADRATURE_NODES)
    # Map [-1, 1] onto [0, rho].
    t = 0.5 * rho * (nodes + 1.0)
    scale = 0.5 * rho * weights
    one_minus_t2 = 1.0 - t * t
    hh = h[..., np.newaxis]
    kk = k[..., np.newaxis]
    integrand = np.exp(
        -(hh * hh - 2.0 * t * hh * kk + kk * kk) / (2.0 * one_minus_t2)
    ) / np.sqrt(one_minus_t2)
    correction = (integrand * scale).sum(axis=-1) / (2.0 * np.pi)
    return np.clip(phi_h * phi_k + correction, 0.0, 1.0)


def gaussian_copula_logdensity(u: np.ndarray, correlation: np.ndarray) -> np.ndarray:
    """Log of Eq. (1) evaluated at each row of pseudo-copula data ``u``.

    Parameters
    ----------
    u:
        ``(n, m)`` pseudo-copula observations in ``(0, 1)``.
    correlation:
        Positive-definite ``m × m`` correlation matrix ``P``.

    Returns
    -------
    ``(n,)`` array of per-observation log-densities.
    """
    correlation = check_matrix_square("correlation", correlation)
    u = np.atleast_2d(np.asarray(u, dtype=float))
    if u.shape[1] != correlation.shape[0]:
        raise ValueError(
            f"data has {u.shape[1]} columns but correlation is "
            f"{correlation.shape[0]}x{correlation.shape[0]}"
        )
    z = _probit(u)
    sign, logdet = np.linalg.slogdet(correlation)
    if sign <= 0:
        raise np.linalg.LinAlgError("correlation matrix is not positive definite")
    inverse_minus_identity = np.linalg.inv(correlation) - np.eye(correlation.shape[0])
    quadratic = np.einsum("ni,ij,nj->n", z, inverse_minus_identity, z)
    return -0.5 * logdet - 0.5 * quadratic


def bivariate_copula_loglikelihood(rho: float, z1: np.ndarray, z2: np.ndarray) -> float:
    """Summed bivariate Gaussian-copula log-likelihood at correlation ``rho``.

    Works directly on probit scores ``z = Φ⁻¹(u)`` for speed: for the
    bivariate case Eq. (1) reduces to

    ``-½ log(1-ρ²) - (ρ² (z₁² + z₂²) - 2ρ z₁ z₂) / (2 (1-ρ²))``.
    """
    rho = float(np.clip(rho, -0.999999, 0.999999))
    one_minus = 1.0 - rho * rho
    s11 = float(np.dot(z1, z1))
    s22 = float(np.dot(z2, z2))
    s12 = float(np.dot(z1, z2))
    n = z1.size
    return -0.5 * n * np.log(one_minus) - (rho * rho * (s11 + s22) - 2.0 * rho * s12) / (
        2.0 * one_minus
    )


def pairwise_copula_mle(
    u1: np.ndarray,
    u2: np.ndarray,
    initial: float = None,
) -> float:
    """MLE of the bivariate Gaussian-copula correlation from pseudo-data.

    Bounded scalar maximization of the closed-form bivariate likelihood,
    initialized at the normal-scores correlation (the one-step estimator).
    """
    z1 = _probit(u1)
    z2 = _probit(u2)
    if z1.shape != z2.shape or z1.ndim != 1:
        raise ValueError("u1 and u2 must be 1-D arrays of equal length")
    if initial is None:
        denom = np.sqrt(np.dot(z1, z1) * np.dot(z2, z2))
        initial = float(np.dot(z1, z2) / denom) if denom > 0 else 0.0
    result = optimize.minimize_scalar(
        lambda r: -bivariate_copula_loglikelihood(r, z1, z2),
        bounds=(-0.9999, 0.9999),
        method="bounded",
        options={"xatol": 1e-7},
    )
    if not result.success:  # pragma: no cover - scipy bounded rarely fails
        return float(np.clip(initial, -0.9999, 0.9999))
    return float(result.x)


def copula_mle_matrix(pseudo_copula: np.ndarray) -> np.ndarray:
    """Pairwise-MLE estimate of the full copula correlation matrix."""
    u = np.asarray(pseudo_copula, dtype=float)
    if u.ndim != 2:
        raise ValueError(f"expected 2-D pseudo-copula data, got shape {u.shape}")
    m = u.shape[1]
    matrix = np.eye(m)
    z = _probit(u)
    for j in range(m):
        for k in range(j + 1, m):
            denom = np.sqrt(np.dot(z[:, j], z[:, j]) * np.dot(z[:, k], z[:, k]))
            init = float(np.dot(z[:, j], z[:, k]) / denom) if denom > 0 else 0.0
            result = optimize.minimize_scalar(
                lambda r, a=z[:, j], b=z[:, k]: -bivariate_copula_loglikelihood(r, a, b),
                bounds=(-0.9999, 0.9999),
                method="bounded",
                options={"xatol": 1e-7},
            )
            estimate = float(result.x) if result.success else init
            matrix[j, k] = matrix[k, j] = estimate
    return matrix
