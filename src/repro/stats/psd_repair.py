"""Positive-definiteness repair for noisy correlation matrices.

The noisy matrix ``P̃ = sin(π/2 · τ̃)`` of Algorithm 5 may be indefinite
once Laplace noise is injected.  Step 3 of Algorithm 5 repairs it with the
eigenvalue method of Rousseeuw & Molenberghs (1993): replace negative
eigenvalues by a small positive floor, reassemble and renormalize the
diagonal.  We also provide Higham's alternating-projections nearest
correlation matrix as a stronger (ablation) alternative.

Both repairs are post-processing of a differentially private release and
therefore privacy-free.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_matrix_square

DEFAULT_EIGENVALUE_FLOOR = 1e-6


def is_positive_definite(matrix: np.ndarray, tol: float = 0.0) -> bool:
    """Whether the symmetric matrix has all eigenvalues > ``tol``."""
    matrix = check_matrix_square("matrix", matrix)
    symmetric = (matrix + matrix.T) / 2.0
    eigenvalues = np.linalg.eigvalsh(symmetric)
    return bool(eigenvalues.min() > tol)


def _renormalize_correlation(matrix: np.ndarray) -> np.ndarray:
    """Scale a PSD matrix so its diagonal is exactly 1."""
    diag = np.sqrt(np.clip(np.diag(matrix), 1e-12, None))
    out = matrix / np.outer(diag, diag)
    out = (out + out.T) / 2.0
    np.fill_diagonal(out, 1.0)
    return out


def make_positive_definite(
    matrix: np.ndarray,
    floor: float = DEFAULT_EIGENVALUE_FLOOR,
    use_absolute: bool = False,
) -> np.ndarray:
    """Algorithm 5, step 3: the eigenvalue repair.

    Decompose ``P̃₁ = R D Rᵀ``, replace negative eigenvalues by ``floor``
    (or their absolute values when ``use_absolute``), reassemble and
    renormalize to a unit diagonal.  Matrices that are already positive
    definite are returned (symmetrized) unchanged apart from rounding.
    """
    matrix = check_matrix_square("matrix", matrix)
    symmetric = (matrix + matrix.T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    if eigenvalues.min() > 0:
        return _renormalize_correlation(symmetric)
    if use_absolute:
        repaired = np.where(eigenvalues <= 0, np.abs(eigenvalues), eigenvalues)
        repaired = np.clip(repaired, floor, None)
    else:
        repaired = np.clip(eigenvalues, floor, None)
    rebuilt = (eigenvectors * repaired) @ eigenvectors.T
    return _renormalize_correlation(rebuilt)


def higham_nearest_correlation(
    matrix: np.ndarray,
    max_iterations: int = 100,
    tol: float = 1e-8,
    floor: float = DEFAULT_EIGENVALUE_FLOOR,
) -> np.ndarray:
    """Higham (2002) alternating projections onto {PSD} ∩ {unit diagonal}.

    Finds (approximately) the nearest correlation matrix in Frobenius
    norm.  Used by the ablation benchmarks to quantify how much the choice
    of repair procedure matters for DPCopula's end accuracy.
    """
    matrix = check_matrix_square("matrix", matrix)
    y = (matrix + matrix.T) / 2.0
    correction = np.zeros_like(y)
    x = y.copy()
    for _ in range(max_iterations):
        r = y - correction
        eigenvalues, eigenvectors = np.linalg.eigh(r)
        clipped = np.clip(eigenvalues, 0.0, None)
        x_new = (eigenvectors * clipped) @ eigenvectors.T
        correction = x_new - r
        y_new = x_new.copy()
        np.fill_diagonal(y_new, 1.0)
        if np.linalg.norm(y_new - y, ord="fro") < tol:
            y = y_new
            break
        y = y_new
    # Guarantee strict positive definiteness for the Cholesky sampler.
    return make_positive_definite(y, floor=floor)
