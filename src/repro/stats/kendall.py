"""Kendall's tau rank correlation (Definition 3.5).

Two implementations are provided:

* :func:`kendall_tau_naive` — the literal O(n²) pairwise definition,
  kept as an executable specification and test oracle;
* :func:`kendall_tau_merge` — Knight's O(n log n) algorithm (the "fast
  Kendall's tau computation method" the paper's complexity analysis
  assumes), counting discordant pairs as inversions with a merge sort.

Both compute **tau-a**: the paper's Definition 3.5 normalizes by
``C(n, 2)`` without tie corrections, and the Lemma 4.1 sensitivity bound
is derived for exactly that statistic, so we match it.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_matrix_square


def kendall_tau_naive(x: np.ndarray, y: np.ndarray) -> float:
    """O(n²) Kendall's tau-a, the literal Definition 3.5 estimator.

    ``τ̂ = C(n,2)⁻¹ Σ_{i<j} sign(x_i - x_j) * sign(y_i - y_j)``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = x.size
    if n < 2:
        raise ValueError("Kendall's tau needs at least two observations")
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    upper = np.triu_indices(n, k=1)
    total = float(np.sum(dx[upper] * dy[upper]))
    return total / (n * (n - 1) / 2.0)


def _count_inversions(values: np.ndarray) -> int:
    """Number of (i < j, values[i] > values[j]) inversions.

    Vectorized bottom-up merge sort: the array is padded to a power of
    two with a maximal sentinel, and at each of the log n levels all
    blocks are processed in one batched ``searchsorted`` (rows are kept
    disjoint by adding per-block offsets to the rank-coded values), so
    the Python-level work is O(log n) passes rather than O(n) merges.
    Pairs equal in value contribute no inversions (strict ``>`` only).
    """
    values = np.asarray(values)
    n = values.size
    if n < 2:
        return 0
    # Dense rank coding: preserves order/ties, bounds values for offsets.
    ranks = np.unique(values, return_inverse=True)[1].astype(np.int64)
    sentinel = np.int64(ranks.max() + 1)
    size = 1
    while size < n:
        size *= 2
    padded = np.full(size, sentinel, dtype=np.int64)
    padded[:n] = ranks

    inversions = 0
    width = 1
    stride = sentinel + 1
    while width < size:
        blocks = padded.reshape(-1, 2 * width)
        left = blocks[:, :width]
        right = blocks[:, width:]
        # Offset every block into its own value band so one flat
        # searchsorted answers all blocks at once.
        offsets = (np.arange(blocks.shape[0], dtype=np.int64) * stride)[:, None]
        flat_left = (left + offsets).ravel()
        flat_right = (right + offsets).ravel()
        positions = np.searchsorted(flat_left, flat_right, side="right")
        # Elements of `left` strictly greater than each right element are
        # those after its insertion point, within the block's band.
        block_ends = np.repeat(np.arange(1, blocks.shape[0] + 1) * width, width)
        inversions += int((block_ends - positions).sum())
        padded = np.sort(blocks, axis=1, kind="stable").ravel()
        width *= 2
    return inversions


def kendall_tau_merge(x: np.ndarray, y: np.ndarray) -> float:
    """O(n log n) Kendall's tau-a via Knight's inversion-counting algorithm.

    Sort by ``x`` (ties broken by ``y``), then discordant pairs among
    x-distinct pairs are exactly inversions of the ``y`` sequence.  Tied
    pairs contribute ``sign(...) = 0`` and are subtracted from both the
    concordant and discordant tallies, matching the tau-a definition.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = x.size
    if n < 2:
        raise ValueError("Kendall's tau needs at least two observations")

    order = np.lexsort((y, x))
    xs, ys = x[order], y[order]

    total_pairs = n * (n - 1) // 2

    def tied_pair_count(sorted_values: np.ndarray) -> int:
        _, counts = np.unique(sorted_values, return_counts=True)
        return int(np.sum(counts * (counts - 1) // 2))

    ties_x = tied_pair_count(xs)
    ties_y = tied_pair_count(np.sort(ys))

    # Pairs tied in both coordinates simultaneously.
    pairs = np.stack([xs, ys], axis=1)
    _, joint_counts = np.unique(pairs, axis=0, return_counts=True)
    ties_xy = int(np.sum(joint_counts * (joint_counts - 1) // 2))

    # Inversions of y within the x-sorted order count discordant pairs,
    # but pairs tied in x were sorted by y and contribute no inversions,
    # and pairs tied in y contribute no inversions either - both already
    # excluded.  Discordant strictly requires x and y strict and opposite.
    discordant = _count_inversions(ys)

    # Among x-strict pairs: concordant + discordant + (y-tied-but-x-strict)
    # = total - ties_x.  y-tied-but-x-strict = ties_y - ties_xy.
    concordant = total_pairs - ties_x - (ties_y - ties_xy) - discordant
    return (concordant - discordant) / total_pairs


def kendall_tau(x: np.ndarray, y: np.ndarray, method: str = "merge") -> float:
    """Kendall's tau-a via the requested implementation."""
    if method == "merge":
        return kendall_tau_merge(x, y)
    if method == "naive":
        return kendall_tau_naive(x, y)
    raise ValueError(f"unknown method {method!r}; expected 'merge' or 'naive'")


def kendall_tau_matrix(values: np.ndarray, method: str = "merge") -> np.ndarray:
    """Pairwise Kendall's tau-a matrix of the columns of ``values``.

    Diagonal entries are 1 by convention.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D sample matrix, got shape {values.shape}")
    m = values.shape[1]
    matrix = np.eye(m)
    for j in range(m):
        for k in range(j + 1, m):
            tau = kendall_tau(values[:, j], values[:, k], method=method)
            matrix[j, k] = matrix[k, j] = tau
    return check_matrix_square("tau matrix", matrix)
