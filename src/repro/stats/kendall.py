"""Kendall's tau rank correlation (Definition 3.5).

Two implementations are provided:

* :func:`kendall_tau_naive` — the literal O(n²) pairwise definition,
  kept as an executable specification and test oracle;
* :func:`kendall_tau_merge` — Knight's O(n log n) algorithm (the "fast
  Kendall's tau computation method" the paper's complexity analysis
  assumes), counting discordant pairs as inversions with a merge sort.

:func:`kendall_tau_matrix` additionally caches per-column dense rank
codings (:func:`rank_code_columns`) and computes each of the ``C(m, 2)``
pairwise coefficients with a compiled Knight's-algorithm kernel, fanning
the independent pairs out over a :class:`~repro.parallel.ExecutionContext`.

Both compute **tau-a**: the paper's Definition 3.5 normalizes by
``C(n, 2)`` without tie corrections, and the Lemma 4.1 sensitivity bound
is derived for exactly that statistic, so we match it.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np
from scipy import stats as sps

from repro.parallel import ExecutionContext, resolve_context
from repro.utils import check_matrix_square


def kendall_tau_naive(x: np.ndarray, y: np.ndarray) -> float:
    """O(n²) Kendall's tau-a, the literal Definition 3.5 estimator.

    ``τ̂ = C(n,2)⁻¹ Σ_{i<j} sign(x_i - x_j) * sign(y_i - y_j)``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = x.size
    if n < 2:
        raise ValueError("Kendall's tau needs at least two observations")
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    upper = np.triu_indices(n, k=1)
    total = float(np.sum(dx[upper] * dy[upper]))
    return total / (n * (n - 1) / 2.0)


def _count_inversions(values: np.ndarray) -> int:
    """Number of (i < j, values[i] > values[j]) inversions.

    Vectorized bottom-up merge sort: the array is padded to a power of
    two with a maximal sentinel, and at each of the log n levels all
    blocks are processed in one batched ``searchsorted`` (rows are kept
    disjoint by adding per-block offsets to the rank-coded values), so
    the Python-level work is O(log n) passes rather than O(n) merges.
    Pairs equal in value contribute no inversions (strict ``>`` only).
    """
    values = np.asarray(values)
    n = values.size
    if n < 2:
        return 0
    # Dense rank coding: preserves order/ties, bounds values for offsets.
    ranks = np.unique(values, return_inverse=True)[1].astype(np.int64)
    sentinel = np.int64(ranks.max() + 1)
    size = 1
    while size < n:
        size *= 2
    padded = np.full(size, sentinel, dtype=np.int64)
    padded[:n] = ranks

    inversions = 0
    width = 1
    stride = sentinel + 1
    while width < size:
        blocks = padded.reshape(-1, 2 * width)
        left = blocks[:, :width]
        right = blocks[:, width:]
        # Offset every block into its own value band so one flat
        # searchsorted answers all blocks at once.
        offsets = (np.arange(blocks.shape[0], dtype=np.int64) * stride)[:, None]
        flat_left = (left + offsets).ravel()
        flat_right = (right + offsets).ravel()
        positions = np.searchsorted(flat_left, flat_right, side="right")
        # Elements of `left` strictly greater than each right element are
        # those after its insertion point, within the block's band.
        block_ends = np.repeat(np.arange(1, blocks.shape[0] + 1) * width, width)
        inversions += int((block_ends - positions).sum())
        padded = np.sort(blocks, axis=1, kind="stable").ravel()
        width *= 2
    return inversions


def kendall_tau_merge(x: np.ndarray, y: np.ndarray) -> float:
    """O(n log n) Kendall's tau-a via Knight's inversion-counting algorithm.

    Sort by ``x`` (ties broken by ``y``), then discordant pairs among
    x-distinct pairs are exactly inversions of the ``y`` sequence.  Tied
    pairs contribute ``sign(...) = 0`` and are subtracted from both the
    concordant and discordant tallies, matching the tau-a definition.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = x.size
    if n < 2:
        raise ValueError("Kendall's tau needs at least two observations")

    order = np.lexsort((y, x))
    xs, ys = x[order], y[order]

    total_pairs = n * (n - 1) // 2

    def tied_pair_count(sorted_values: np.ndarray) -> int:
        _, counts = np.unique(sorted_values, return_counts=True)
        return int(np.sum(counts * (counts - 1) // 2))

    ties_x = tied_pair_count(xs)
    ties_y = tied_pair_count(np.sort(ys))

    # Pairs tied in both coordinates simultaneously.
    pairs = np.stack([xs, ys], axis=1)
    _, joint_counts = np.unique(pairs, axis=0, return_counts=True)
    ties_xy = int(np.sum(joint_counts * (joint_counts - 1) // 2))

    # Inversions of y within the x-sorted order count discordant pairs,
    # but pairs tied in x were sorted by y and contribute no inversions,
    # and pairs tied in y contribute no inversions either - both already
    # excluded.  Discordant strictly requires x and y strict and opposite.
    discordant = _count_inversions(ys)

    # Among x-strict pairs: concordant + discordant + (y-tied-but-x-strict)
    # = total - ties_x.  y-tied-but-x-strict = ties_y - ties_xy.
    concordant = total_pairs - ties_x - (ties_y - ties_xy) - discordant
    return (concordant - discordant) / total_pairs


def kendall_tau(x: np.ndarray, y: np.ndarray, method: str = "merge") -> float:
    """Kendall's tau-a via the requested implementation."""
    if method == "merge":
        return kendall_tau_merge(x, y)
    if method == "naive":
        return kendall_tau_naive(x, y)
    raise ValueError(f"unknown method {method!r}; expected 'merge' or 'naive'")


# Above roughly this many pairs the float64 round-trip through scipy's
# tau-b statistic can no longer recover the integer (C - D) exactly, so
# the matrix engine falls back to the pure-Python merge implementation.
_EXACT_RECOVERY_MAX_PAIRS = 2**50


def _tied_pair_count_from_bincount(counts: np.ndarray) -> int:
    counts = counts.astype(np.int64)
    return int(np.sum(counts * (counts - 1) // 2))


def rank_code_columns(values: np.ndarray) -> Tuple[List[np.ndarray], List[int]]:
    """Dense rank codings and tied-pair counts, once per column.

    Kendall's tau-a depends only on the order/tie structure of each
    column, so every pairwise statistic can be computed from these
    ``int64`` codes.  Computing them here — once per column instead of
    once per pair inside the pair kernel — removes ``O(m)`` redundant
    ``np.unique`` sorts from the ``C(m, 2)`` loop and gives the parallel
    backends a compact shared payload.
    """
    values = np.asarray(values, dtype=float)
    codes: List[np.ndarray] = []
    tied_pairs: List[int] = []
    for j in range(values.shape[1]):
        column_codes = np.unique(values[:, j], return_inverse=True)[1]
        column_codes = np.ascontiguousarray(column_codes, dtype=np.int64)
        codes.append(column_codes)
        tied_pairs.append(
            _tied_pair_count_from_bincount(np.bincount(column_codes))
        )
    return codes, tied_pairs


def _tau_a_from_codes(
    cx: np.ndarray, cy: np.ndarray, ties_x: int, ties_y: int
) -> float:
    """Exact tau-a of two rank-coded columns via a compiled merge sort.

    ``scipy.stats.kendalltau`` runs Knight's O(n log n) algorithm in C
    and divides the integer concordant-minus-discordant count by the
    tau-b normalizer ``sqrt(total - ties_x) * sqrt(total - ties_y)``.
    Multiplying the statistic back by that normalizer and rounding
    recovers the integer exactly (the float error is ~1e-16 relative,
    orders of magnitude below 1/2 for any ``C(n, 2) < 2**50``), and
    re-normalizing by ``C(n, 2)`` yields tau-a — bit-for-bit equal to
    :func:`kendall_tau_merge`, which the regression tests assert.
    """
    n = cx.size
    total_pairs = n * (n - 1) // 2
    if ties_x == total_pairs or ties_y == total_pairs:
        # A constant column ties every pair: zero concordant minus
        # discordant, hence tau-a = 0 (scipy would return nan here).
        return 0.0
    if total_pairs > _EXACT_RECOVERY_MAX_PAIRS:
        return kendall_tau_merge(cx, cy)
    statistic = sps.kendalltau(cx, cy, method="asymptotic").statistic
    normalizer = np.sqrt(total_pairs - ties_x) * np.sqrt(total_pairs - ties_y)
    concordant_minus_discordant = round(float(statistic) * float(normalizer))
    return concordant_minus_discordant / total_pairs


def _pair_tau_task(task: Tuple[int, int], shared) -> float:
    """Worker body for one (j, k) pair of the tau matrix."""
    j, k = task
    method, columns, tied_pairs = shared
    if method == "merge":
        return _tau_a_from_codes(
            columns[j], columns[k], tied_pairs[j], tied_pairs[k]
        )
    return kendall_tau_naive(columns[j], columns[k])


def kendall_tau_matrix(
    values: np.ndarray,
    method: str = "merge",
    context: Union[ExecutionContext, str, None] = None,
) -> np.ndarray:
    """Pairwise Kendall's tau-a matrix of the columns of ``values``.

    Diagonal entries are 1 by convention.  The ``C(m, 2)`` pairs are
    independent, so they fan out over ``context`` (an
    :class:`~repro.parallel.ExecutionContext`; default serial).  For
    ``method="merge"`` each pair is computed from the cached per-column
    rank codings by a compiled Knight's-algorithm kernel — exactly equal
    to :func:`kendall_tau_merge`, just faster.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D sample matrix, got shape {values.shape}")
    if method not in ("merge", "naive"):
        raise ValueError(f"unknown method {method!r}; expected 'merge' or 'naive'")
    n, m = values.shape
    if m >= 2 and n < 2:
        raise ValueError("Kendall's tau needs at least two observations")
    matrix = np.eye(m)
    pairs = [(j, k) for j in range(m) for k in range(j + 1, m)]
    if not pairs:
        return check_matrix_square("tau matrix", matrix)
    if method == "merge":
        columns, tied_pairs = rank_code_columns(values)
    else:
        columns = [np.ascontiguousarray(values[:, j]) for j in range(m)]
        tied_pairs = [0] * m
    shared = (method, columns, tied_pairs)
    taus = resolve_context(context).map_tasks(_pair_tau_task, pairs, shared=shared)
    for (j, k), tau in zip(pairs, taus):
        matrix[j, k] = matrix[k, j] = tau
    return check_matrix_square("tau matrix", matrix)
