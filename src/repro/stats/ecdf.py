"""Empirical CDFs, histogram-backed CDFs and the pseudo-copula transform.

Equation (2) of the paper estimates each marginal CDF empirically with an
``n + 1`` denominator (keeping values strictly below 1 so the probit
transform stays finite); Equation (3) maps each column through its own
empirical CDF to produce *pseudo-copula data* on ``(0, 1)``.

The DP pipeline never sees the exact empirical CDF: margins are released
as noisy histograms and the CDF is reconstructed from the sanitized
counts.  :class:`HistogramCDF` implements that reconstruction (clip
negatives, normalize, cumulative-sum) together with the inverse transform
used by the sampler (Algorithm 3), interpolating uniformly within a bin so
synthetic values spread across the bin instead of piling on its left edge.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class EmpiricalCDF:
    """The paper's Eq. (2) empirical CDF of a 1-D sample.

    ``F̂(x) = (1 / (n + 1)) * #{ i : X_i <= x }`` — values lie in
    ``(0, 1)`` for every in-sample point, which keeps ``Φ⁻¹(F̂(X))``
    finite.
    """

    def __init__(self, sample: Sequence[float]):
        sample = np.asarray(sample, dtype=float)
        if sample.ndim != 1 or sample.size == 0:
            raise ValueError("EmpiricalCDF needs a non-empty 1-D sample")
        self._sorted = np.sort(sample)
        self._n = sample.size

    @property
    def n(self) -> int:
        return self._n

    def __call__(self, x) -> np.ndarray:
        """Evaluate ``F̂`` at ``x`` (scalar or array)."""
        counts = np.searchsorted(self._sorted, np.asarray(x, dtype=float), side="right")
        return counts / (self._n + 1.0)

    def inverse(self, u) -> np.ndarray:
        """Generalized inverse: smallest sample value with ``F̂(x) >= u``."""
        u = np.asarray(u, dtype=float)
        ranks = np.ceil(u * (self._n + 1.0)).astype(int) - 1
        ranks = np.clip(ranks, 0, self._n - 1)
        return self._sorted[ranks]


def pseudo_copula_transform(values: np.ndarray) -> np.ndarray:
    """Equation (3): column-wise empirical-CDF transform onto ``(0, 1)``.

    Uses ranks directly (equivalent to evaluating each column's Eq.-(2)
    ECDF at its own points) so the result is exactly
    ``rank / (n + 1)`` with average ranks for ties.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        values = values[:, None]
    n, m = values.shape
    if n == 0:
        raise ValueError("cannot transform an empty sample")
    out = np.empty_like(values)
    for j in range(m):
        column = values[:, j]
        order = np.argsort(column, kind="mergesort")
        sorted_col = column[order]
        # right-side counts give the Eq.-(2) value at each point, and
        # automatically assign tied values their common (maximal) rank.
        counts = np.searchsorted(sorted_col, column, side="right")
        out[:, j] = counts / (n + 1.0)
    return out


class HistogramCDF:
    """CDF over an integer domain reconstructed from (noisy) bin counts.

    Post-processing applied to the raw DP counts, none of which touches
    the privacy guarantee:

    1. negative counts are clipped to zero (non-negativity);
    2. if everything clips to zero the distribution falls back to uniform;
    3. counts are normalized into a pmf and accumulated into a CDF.

    The forward transform maps a domain value ``v`` to the CDF evaluated
    at the *midpoint* of its bin, i.e. ``F(v-1) + pmf(v)/2``, which is the
    standard continuity correction that makes discrete data approximately
    continuous (Section 3.2 of the paper).  The inverse transform maps a
    uniform ``u`` back to the bin containing it.
    """

    def __init__(self, counts: Sequence[float]):
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 1 or counts.size == 0:
            raise ValueError("HistogramCDF needs a non-empty 1-D count vector")
        clipped = np.clip(counts, 0.0, None)
        total = clipped.sum()
        if total <= 0:
            clipped = np.ones_like(clipped)
            total = clipped.sum()
        self._pmf = clipped / total
        self._cdf = np.cumsum(self._pmf)
        self._cdf[-1] = 1.0
        self._total_mass = float(max(total, 0.0))

    @property
    def domain_size(self) -> int:
        return self._pmf.size

    @property
    def pmf(self) -> np.ndarray:
        return self._pmf.copy()

    @property
    def cdf(self) -> np.ndarray:
        return self._cdf.copy()

    @property
    def total_mass(self) -> float:
        """Sum of the clipped input counts (a noisy estimate of n)."""
        return self._total_mass

    def __call__(self, values) -> np.ndarray:
        """Midpoint-corrected CDF at integer domain values."""
        values = np.asarray(values)
        idx = np.clip(values.astype(int), 0, self.domain_size - 1)
        left = np.where(idx > 0, self._cdf[np.maximum(idx - 1, 0)], 0.0)
        return left + self._pmf[idx] / 2.0

    def inverse(self, u) -> np.ndarray:
        """Map uniforms on ``[0, 1]`` back to integer domain values."""
        u = np.asarray(u, dtype=float)
        idx = np.searchsorted(self._cdf, np.clip(u, 0.0, 1.0), side="left")
        return np.clip(idx, 0, self.domain_size - 1).astype(np.int64)

    def range_mass(self, low: int, high: int) -> float:
        """Probability mass of the inclusive integer interval [low, high]."""
        low = max(int(low), 0)
        high = min(int(high), self.domain_size - 1)
        if high < low:
            return 0.0
        upper = self._cdf[high]
        lower = self._cdf[low - 1] if low > 0 else 0.0
        return float(upper - lower)
