"""Statistical substrate: ECDFs, Kendall's tau, correlation transforms,
positive-definiteness repair, Gaussian-copula likelihood, margin families."""

from repro.stats.ecdf import (
    EmpiricalCDF,
    HistogramCDF,
    pseudo_copula_transform,
)
from repro.stats.kendall import (
    kendall_tau,
    kendall_tau_matrix,
    kendall_tau_merge,
    kendall_tau_naive,
)
from repro.stats.correlation import (
    correlation_from_spearman,
    correlation_from_tau,
    normal_scores_correlation,
    spearman_rho,
    tau_from_correlation,
)
from repro.stats.psd_repair import (
    higham_nearest_correlation,
    is_positive_definite,
    make_positive_definite,
)
from repro.stats.copula_math import (
    cholesky_factor,
    gaussian_copula_logdensity,
    pairwise_copula_mle,
)
from repro.stats.distributions import margin_pmf
from repro.stats.goodness_of_fit import (
    GoodnessOfFitResult,
    cramer_von_mises_uniform,
    gaussian_copula_gof,
    rosenblatt_transform,
)

__all__ = [
    "EmpiricalCDF",
    "HistogramCDF",
    "pseudo_copula_transform",
    "kendall_tau",
    "kendall_tau_naive",
    "kendall_tau_merge",
    "kendall_tau_matrix",
    "correlation_from_tau",
    "tau_from_correlation",
    "normal_scores_correlation",
    "spearman_rho",
    "correlation_from_spearman",
    "is_positive_definite",
    "make_positive_definite",
    "higham_nearest_correlation",
    "cholesky_factor",
    "gaussian_copula_logdensity",
    "pairwise_copula_mle",
    "margin_pmf",
    "rosenblatt_transform",
    "cramer_von_mises_uniform",
    "gaussian_copula_gof",
    "GoodnessOfFitResult",
]
