"""Correlation transforms: Greiner's relation and normal-scores correlation.

Equation (4) of the paper converts Kendall's tau into the Gaussian-copula
correlation parameter via ``ρ = sin(π/2 · τ)`` (Greiner's relation, exact
for elliptical distributions).  The inverse is used by tests and by the
convergence diagnostics; normal-scores (van der Waerden) correlation is
the one-step approximation to the Gaussian-copula MLE used to initialize
the per-pair optimizer.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

from repro.utils import check_matrix_square


def correlation_from_tau(tau):
    """Equation (4): ``ρ = sin(π/2 · τ)``, elementwise.

    Accepts a scalar or a matrix; matrix diagonals are forced to exactly 1.
    """
    tau_arr = np.asarray(tau, dtype=float)
    rho = np.sin(np.pi / 2.0 * np.clip(tau_arr, -1.0, 1.0))
    if rho.ndim == 2 and rho.shape[0] == rho.shape[1]:
        np.fill_diagonal(rho, 1.0)
    if np.isscalar(tau) or rho.ndim == 0:
        return float(rho)
    return rho


def tau_from_correlation(rho):
    """Inverse of Eq. (4): ``τ = (2/π) · arcsin(ρ)``, elementwise."""
    rho_arr = np.asarray(rho, dtype=float)
    tau = (2.0 / np.pi) * np.arcsin(np.clip(rho_arr, -1.0, 1.0))
    if np.isscalar(rho) or tau.ndim == 0:
        return float(tau)
    return tau


def spearman_rho(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman's rank correlation (average ranks for ties).

    Provided for the ablation that backs the paper's design argument:
    Section 3.2 chooses Kendall's tau over Spearman because tau "has
    better statistical properties".  ``correlation_from_spearman`` is
    the elliptical-conversion counterpart of Eq. (4).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if x.size < 2:
        raise ValueError("Spearman's rho needs at least two observations")

    def average_ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="mergesort")
        ranks = np.empty(values.size)
        ranks[order] = np.arange(1, values.size + 1, dtype=float)
        # Average the ranks within tied groups.
        sorted_values = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_values) != 0) + 1
        groups = np.split(np.arange(values.size), boundaries)
        for group in groups:
            if group.size > 1:
                ranks[order[group]] = ranks[order[group]].mean()
        return ranks

    rx = average_ranks(x)
    ry = average_ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denominator = np.sqrt(np.dot(rx, rx) * np.dot(ry, ry))
    if denominator == 0:
        return 0.0
    return float(np.dot(rx, ry) / denominator)


def correlation_from_spearman(rho_s):
    """Pearson's relation for elliptical data: ``ρ = 2 sin(π ρ_s / 6)``.

    The Spearman analogue of Eq. (4); exact for Gaussian dependence.
    """
    rho_arr = np.asarray(rho_s, dtype=float)
    rho = 2.0 * np.sin(np.pi * np.clip(rho_arr, -1.0, 1.0) / 6.0)
    if rho.ndim == 2 and rho.shape[0] == rho.shape[1]:
        np.fill_diagonal(rho, 1.0)
    if np.isscalar(rho_s) or rho.ndim == 0:
        return float(rho)
    return rho


def normal_scores_correlation(pseudo_copula: np.ndarray) -> np.ndarray:
    """Pearson correlation of probit-transformed pseudo-copula data.

    For data whose dependence is a Gaussian copula, the correlation of
    ``z = Φ⁻¹(u)`` is a consistent estimator of the copula's correlation
    matrix and is the non-iterative step of the semi-parametric MLE.
    """
    u = np.asarray(pseudo_copula, dtype=float)
    if u.ndim != 2:
        raise ValueError(f"expected 2-D pseudo-copula data, got shape {u.shape}")
    if not ((u > 0) & (u < 1)).all():
        raise ValueError("pseudo-copula values must lie strictly inside (0, 1)")
    z = sps.norm.ppf(u)
    corr = np.corrcoef(z, rowvar=False)
    corr = np.atleast_2d(corr)
    np.fill_diagonal(corr, 1.0)
    return check_matrix_square("normal-scores correlation", corr)
