"""Copula goodness-of-fit via the Rosenblatt transform.

Section 3.2 of the paper: "we can use many approaches to test the
goodness-of-fit".  The Rosenblatt probability-integral transform is the
classical one: under the hypothesized Gaussian copula with correlation
``P``, mapping each observation through the sequence of conditional CDFs

``e_1 = u_1,  e_k = P(U_k <= u_k | U_1..U_{k-1})``

yields vectors that are i.i.d. uniform on ``[0,1]^m`` with *independent*
coordinates.  Deviations from joint uniformity therefore measure misfit.
We score them with a Cramér–von Mises statistic on the per-coordinate
uniformity plus a dependence check on the transformed coordinates, and
calibrate the p-value by parametric bootstrap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.stats.kendall import kendall_tau_matrix
from repro.utils import RngLike, as_generator, check_matrix_square

_CLIP = 1e-12


def rosenblatt_transform(u: np.ndarray, correlation: np.ndarray) -> np.ndarray:
    """Rosenblatt transform of pseudo-copula data under a Gaussian copula.

    For the Gaussian copula the conditional CDFs have closed form in the
    latent space: with ``z = Φ⁻¹(u)`` and ``L`` the Cholesky factor of
    ``P``, the innovations ``e = L⁻¹ z`` are i.i.d. standard normal under
    the model, so ``Φ(e)`` are i.i.d. uniform.
    """
    correlation = check_matrix_square("correlation", correlation)
    u = np.atleast_2d(np.asarray(u, dtype=float))
    if u.shape[1] != correlation.shape[0]:
        raise ValueError(
            f"data has {u.shape[1]} columns but correlation is "
            f"{correlation.shape[0]}x{correlation.shape[0]}"
        )
    z = sps.norm.ppf(np.clip(u, _CLIP, 1.0 - _CLIP))
    cholesky = np.linalg.cholesky(correlation)
    e = np.linalg.solve(cholesky, z.T).T
    return sps.norm.cdf(e)


def cramer_von_mises_uniform(values: np.ndarray) -> float:
    """Cramér–von Mises distance of a 1-D sample from U(0, 1)."""
    values = np.sort(np.asarray(values, dtype=float))
    n = values.size
    if n == 0:
        raise ValueError("empty sample")
    grid = (2 * np.arange(1, n + 1) - 1) / (2.0 * n)
    return float(1.0 / (12 * n) + np.sum((values - grid) ** 2))


def _statistic(u: np.ndarray, correlation: np.ndarray) -> float:
    """Combined misfit score.

    Three components, each zero in expectation under the model:
    per-coordinate uniformity (CvM), residual rank dependence of the
    transformed coordinates (max |tau|), and a radial/tail probe — the
    squared latent radius ``Σ Φ⁻¹(e_j)²`` must be χ²_m, and heavy-tailed
    alternatives (e.g. t copulas) inflate it detectably even when the
    coordinatewise margins look uniform.
    """
    transformed = rosenblatt_transform(u, correlation)
    m = u.shape[1]
    uniformity = np.mean(
        [cramer_von_mises_uniform(transformed[:, j]) for j in range(m)]
    )
    if m >= 2:
        tau = kendall_tau_matrix(transformed)
        off_diagonal = np.abs(tau[np.triu_indices(m, 1)]).max()
    else:
        off_diagonal = 0.0
    latent = sps.norm.ppf(np.clip(transformed, _CLIP, 1.0 - _CLIP))
    radius_sq = np.sum(latent**2, axis=1)
    radial = cramer_von_mises_uniform(sps.chi2.cdf(radius_sq, df=m))
    return float(uniformity + off_diagonal + 4.0 * radial)


def copula_probe_statistic(
    pseudo_copula: np.ndarray, correlation: np.ndarray
) -> float:
    """The Rosenblatt misfit score alone — no bootstrap, no p-value.

    The continuous utility probes (``repro.telemetry.observatory``) need
    a cheap, deterministic misfit number per probe cycle; the bootstrap
    calibration of :func:`gaussian_copula_gof` is ~100x the cost and
    only needed for a hypothesis test.  Smaller is better; the score is
    comparable across cycles of the same model/sample size, which is
    what a drift monitor needs.
    """
    u = np.atleast_2d(np.asarray(pseudo_copula, dtype=float))
    correlation = check_matrix_square("correlation", correlation)
    return _statistic(u, correlation)


@dataclass(frozen=True)
class GoodnessOfFitResult:
    """Outcome of the Gaussian-copula goodness-of-fit test."""

    statistic: float
    p_value: float
    n_bootstrap: int

    def rejects(self, alpha: float = 0.05) -> bool:
        """Whether the Gaussian-copula hypothesis is rejected at ``alpha``."""
        return self.p_value < alpha


def gaussian_copula_gof(
    pseudo_copula: np.ndarray,
    correlation: np.ndarray,
    n_bootstrap: int = 100,
    rng: RngLike = None,
) -> GoodnessOfFitResult:
    """Parametric-bootstrap goodness-of-fit test for a Gaussian copula.

    The observed Rosenblatt misfit statistic is compared against its
    distribution under the hypothesized model (fresh samples from the
    Gaussian copula with the same ``correlation`` and sample size).
    """
    u = np.atleast_2d(np.asarray(pseudo_copula, dtype=float))
    correlation = check_matrix_square("correlation", correlation)
    gen = as_generator(rng)
    observed = _statistic(u, correlation)

    n, m = u.shape
    cholesky = np.linalg.cholesky(correlation)
    exceed = 0
    for _ in range(n_bootstrap):
        latent = gen.standard_normal((n, m)) @ cholesky.T
        simulated = sps.norm.cdf(latent)
        if _statistic(simulated, correlation) >= observed:
            exceed += 1
    p_value = (exceed + 1) / (n_bootstrap + 1)
    return GoodnessOfFitResult(
        statistic=observed, p_value=float(p_value), n_bootstrap=n_bootstrap
    )
