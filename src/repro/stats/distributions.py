"""Discrete margin families used by the synthetic generators.

The paper's synthetic experiments (Section 5.4) use Gaussian, uniform and
Zipf margins over integer domains.  Each helper returns a probability mass
function over ``{0, ..., domain_size - 1}``.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np
from scipy import stats as sps

from repro.utils import check_int_at_least, check_positive


def uniform_pmf(domain_size: int) -> np.ndarray:
    """Uniform pmf over the integer domain."""
    check_int_at_least("domain_size", domain_size, 1)
    return np.full(domain_size, 1.0 / domain_size)


def gaussian_pmf(domain_size: int, spread: float = 4.0) -> np.ndarray:
    """Discretized Gaussian centred on the middle of the domain.

    ``spread`` is the number of standard deviations the domain covers; the
    default of 4 gives a clearly peaked but not degenerate margin.
    """
    check_int_at_least("domain_size", domain_size, 1)
    check_positive("spread", spread)
    if domain_size == 1:
        return np.array([1.0])
    mean = (domain_size - 1) / 2.0
    sigma = domain_size / spread
    edges = np.arange(domain_size + 1) - 0.5
    cdf = sps.norm.cdf(edges, loc=mean, scale=sigma)
    pmf = np.diff(cdf)
    return pmf / pmf.sum()


def zipf_pmf(domain_size: int, exponent: float = 1.2) -> np.ndarray:
    """Bounded Zipf pmf: ``p(i) ∝ (i + 1) ** -exponent``.

    Heavily skewed toward small values, matching the paper's "zipf
    distribution" margins that stress methods on skewed data.
    """
    check_int_at_least("domain_size", domain_size, 1)
    check_positive("exponent", exponent)
    ranks = np.arange(1, domain_size + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def margin_pmf(
    spec: Union[str, Sequence[float]],
    domain_size: int,
    zipf_exponent: float = 1.2,
    gaussian_spread: float = 4.0,
) -> np.ndarray:
    """Resolve a margin spec (family name or explicit pmf) to a pmf array."""
    if isinstance(spec, str):
        family = spec.lower()
        if family == "uniform":
            return uniform_pmf(domain_size)
        if family in ("gaussian", "normal"):
            return gaussian_pmf(domain_size, spread=gaussian_spread)
        if family == "zipf":
            return zipf_pmf(domain_size, exponent=zipf_exponent)
        raise ValueError(
            f"unknown margin family {spec!r}; expected 'gaussian', 'uniform', "
            "'zipf' or an explicit pmf"
        )
    pmf = np.asarray(spec, dtype=float)
    if pmf.ndim != 1 or pmf.size != domain_size:
        raise ValueError(
            f"explicit pmf must be 1-D with length {domain_size}, got shape {pmf.shape}"
        )
    if (pmf < 0).any():
        raise ValueError("pmf entries must be non-negative")
    total = pmf.sum()
    if total <= 0:
        raise ValueError("pmf must have positive total mass")
    return pmf / total
