"""DPCopula: differentially private multi-dimensional data synthesization.

A from-scratch reproduction of *Differentially Private Synthesization of
Multi-Dimensional Data using Copula Functions* (Li, Xiong, Jiang —
EDBT 2014), including every substrate and baseline the paper's
evaluation depends on.

Quickstart
----------
>>> from repro import DPCopulaKendall, SyntheticSpec, gaussian_dependence_data
>>> data = gaussian_dependence_data(
...     SyntheticSpec(n_records=2000, domain_sizes=(100, 100)), rng=0)
>>> synthesizer = DPCopulaKendall(epsilon=1.0, rng=0)
>>> synthetic = synthesizer.fit_sample(data)
>>> synthetic.n_records
2000
"""

from repro.core import (
    DPCopulaHybrid,
    DPCopulaKendall,
    DPCopulaMLE,
    DPCopulaSynthesizer,
    DPMargins,
    EvolvingDPCopula,
    GaussianCopulaModel,
    TCopulaModel,
    dp_kendall_correlation,
    dp_mle_correlation,
    sample_synthetic,
    select_copula,
)
from repro.io import (
    ReleasedModel,
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)
from repro.queries.metrics import UtilityReport, utility_report
from repro.data import (
    Attribute,
    Dataset,
    Schema,
    SyntheticSpec,
    brazil_census,
    gaussian_dependence_data,
    us_census,
)
from repro.dp import BudgetExhaustedError, PrivacyBudget
from repro.service import (
    ModelRegistry,
    PrivacyAccountant,
    ServiceConfig,
    SynthesisService,
    build_server,
)
from repro.queries import (
    RangeQuery,
    evaluate_workload,
    random_workload,
    workload_with_volume,
)

__version__ = "1.0.0"

__all__ = [
    "DPCopulaSynthesizer",
    "DPCopulaKendall",
    "DPCopulaMLE",
    "DPCopulaHybrid",
    "DPMargins",
    "GaussianCopulaModel",
    "TCopulaModel",
    "dp_kendall_correlation",
    "dp_mle_correlation",
    "sample_synthetic",
    "select_copula",
    "Attribute",
    "Schema",
    "Dataset",
    "SyntheticSpec",
    "gaussian_dependence_data",
    "us_census",
    "brazil_census",
    "PrivacyBudget",
    "BudgetExhaustedError",
    "ModelRegistry",
    "PrivacyAccountant",
    "ServiceConfig",
    "SynthesisService",
    "build_server",
    "RangeQuery",
    "random_workload",
    "workload_with_volume",
    "evaluate_workload",
    "EvolvingDPCopula",
    "ReleasedModel",
    "save_dataset_csv",
    "load_dataset_csv",
    "save_dataset_npz",
    "load_dataset_npz",
    "UtilityReport",
    "utility_report",
    "__version__",
]
