"""Shared small utilities: RNG handling and argument validation.

Every randomized component in this library accepts an optional ``rng``
argument.  Passing ``None`` gives a fresh non-deterministic generator;
passing an ``int`` seeds a new generator; passing a
:class:`numpy.random.Generator` uses it directly.  This keeps experiments
reproducible end-to-end while letting library users ignore seeding
entirely.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    >>> g = as_generator(42)
    >>> isinstance(g, np.random.Generator)
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite positive number."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]``."""
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_int_at_least(name: str, value: int, minimum: int) -> int:
    """Raise ``ValueError`` unless ``value`` is an integer >= ``minimum``."""
    if int(value) != value or value < minimum:
        raise ValueError(f"{name} must be an integer >= {minimum}, got {value!r}")
    return int(value)


def check_matrix_square(name: str, matrix: np.ndarray) -> np.ndarray:
    """Raise ``ValueError`` unless ``matrix`` is a square 2-D array."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {matrix.shape}")
    return matrix


def pairs_count(m: int) -> int:
    """Number of unordered attribute pairs, ``C(m, 2)``."""
    check_int_at_least("m", m, 1)
    return m * (m - 1) // 2
