"""Shared parallel-execution layer for the DPCopula hot paths.

Every embarrassingly parallel loop in the library — the ``C(m, 2)``
pairwise Kendall's-tau fan-out, the per-cell hybrid fits, the per-block
MLE estimation, the repeated-run evaluation harness — runs through one
:class:`ExecutionContext` with three interchangeable backends:

``serial``
    A plain in-process loop.  The reference backend: every other backend
    is required to produce bitwise-identical results.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` fan-out.  Useful
    when the task body releases the GIL (large-array NumPy/SciPy work).
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` fan-out for
    CPU-bound task bodies.  Task functions and payloads must be
    picklable (module-level functions, plain-data arguments).

Determinism contract
--------------------
Parallel execution must never change results.  Two rules enforce that:

1. :meth:`ExecutionContext.map_tasks` always returns results in task
   order, regardless of completion order.
2. Randomized task bodies never share a generator.  Callers derive one
   independent child seed per task *up front* with
   :func:`spawn_seed_sequences` (``np.random.SeedSequence.spawn``), in
   task order, from the caller's own generator.  Each task then builds
   its private ``Generator`` from its child seed, so the random stream a
   task sees depends only on (caller seed, task index) — not on which
   worker ran it or when.

Under these rules ``serial``, ``thread`` and ``process`` backends are
bitwise-interchangeable for a fixed seed, which the determinism suite
(`tests/core/test_parallel_determinism.py`) asserts end-to-end.

Contexts are stateless (each :meth:`map_tasks` call builds and tears
down its own executor), so one context can be shared freely across
threads — e.g. by every worker of the service's fit pool.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Union

import numpy as np

from repro.resilience import faults
from repro.resilience.deadlines import Deadline, current_deadline
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.telemetry import bind_context, current_context, get_logger, metrics, trace
from repro.utils import RngLike, as_generator

_logger = get_logger("parallel")

_TASKS_TOTAL = metrics.REGISTRY.counter(
    "dpcopula_parallel_tasks_total",
    "Tasks dispatched through ExecutionContext.map_tasks (label: backend)",
)
_FANOUT_TASKS = metrics.REGISTRY.histogram(
    "dpcopula_parallel_fanout_tasks",
    "Tasks per map_tasks call (label: backend)",
    buckets=metrics.DEFAULT_FANOUT_BUCKETS,
)

__all__ = [
    "BACKENDS",
    "ExecutionContext",
    "resolve_context",
    "spawn_generators",
    "spawn_seed_sequences",
]

BACKENDS = ("serial", "thread", "process")

#: Environment variable consulted by :func:`resolve_context` when no
#: explicit context is given, e.g. ``DPCOPULA_PARALLEL=process:4``.
PARALLEL_ENV_VAR = "DPCOPULA_PARALLEL"

#: Entropy words drawn from the caller's generator to key a spawn root.
_ENTROPY_WORDS = 4

#: Retry policy for pooled dispatch: a SIGKILLed/OOM-killed worker
#: surfaces as ``BrokenExecutor`` in the parent, the broken pool is
#: torn down, and the whole fan-out is re-dispatched on a fresh pool.
#: Safe because tasks are pure functions of (task, shared, per-task
#: seed): a retried fan-out recomputes bitwise-identical results — the
#: DP release is the same release, so retries cost no extra ε (see
#: docs/RELIABILITY.md).  Tests may monkeypatch this module attribute.
MAP_TASKS_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.1, multiplier=4.0, max_delay=2.0, jitter=0.1
)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def spawn_seed_sequences(rng: RngLike, n: int) -> List[np.random.SeedSequence]:
    """Derive ``n`` independent child seeds from ``rng``, deterministically.

    Draws a fixed number of entropy words from ``rng`` (advancing it by
    the same amount no matter how many children are requested), keys a
    :class:`numpy.random.SeedSequence` with them and spawns ``n``
    children.  For a given generator state the children are a pure
    function of the task index, which is what makes parallel randomness
    reproducible and backend-independent.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    gen = as_generator(rng)
    entropy = gen.integers(0, 2**63 - 1, size=_ENTROPY_WORDS).tolist()
    root = np.random.SeedSequence([int(word) for word in entropy])
    return root.spawn(n)


def spawn_generators(rng: RngLike, n: int) -> List[np.random.Generator]:
    """:func:`spawn_seed_sequences`, materialized into ``Generator``s."""
    return [np.random.default_rng(seq) for seq in spawn_seed_sequences(rng, n)]


# Worker-process state installed by the pool initializer: the shared
# payload is pickled once per worker instead of once per task/chunk.
_PROCESS_SHARED: Any = None


def _install_shared(shared: Any) -> None:
    global _PROCESS_SHARED
    _PROCESS_SHARED = shared


def _run_tasks(
    fn: Callable[[Any, Any], Any],
    chunk: Sequence[Any],
    shared: Any,
    deadline: Optional[Deadline],
    context_ids: Optional[dict] = None,
) -> List[Any]:
    """The shared chunk body: fault point, per-task deadline checks.

    The ``parallel.chunk`` fault point runs *inside the worker*, which
    is what lets the chaos suite SIGKILL a pool worker mid-fan-out; the
    deadline check between tasks is the cooperative cancellation point
    for hung/slow stages (a :class:`Deadline` pickles as its remaining
    budget, so process workers enforce it against their own clocks).

    ``context_ids`` re-binds the dispatching caller's correlation ids
    (request/job) inside the worker — contextvars don't cross pool
    boundaries on their own — so every log line a pooled task emits
    still carries the ids of the request that caused it.
    """
    if context_ids:
        with bind_context(**context_ids):
            return _run_tasks(fn, chunk, shared, deadline)
    faults.inject("parallel.chunk")
    results = []
    for task in chunk:
        if deadline is not None:
            deadline.check("parallel.map_tasks task")
        results.append(fn(task, shared))
    return results


def _run_chunk(
    fn: Callable[[Any, Any], Any],
    chunk: Sequence[Any],
    deadline: Optional[Deadline] = None,
    context_ids: Optional[dict] = None,
) -> List[Any]:
    """Execute one contiguous chunk of tasks against the installed payload."""
    return _run_tasks(fn, chunk, _PROCESS_SHARED, deadline, context_ids)


def _run_chunk_with_shared(
    fn: Callable[[Any, Any], Any],
    chunk: Sequence[Any],
    shared: Any,
    deadline: Optional[Deadline] = None,
    context_ids: Optional[dict] = None,
) -> List[Any]:
    return _run_tasks(fn, chunk, shared, deadline, context_ids)


# Traced twins of the chunk runners: pool workers cannot see the
# caller's contextvars, so when a trace is active each chunk runs under
# its own collected root (`parallel.chunk`) and ships the exported
# subtree home with the results.  Timing is the only difference — the
# task bodies, their order, and their RNG streams are untouched, so
# traced runs stay bitwise-identical to untraced ones.
def _run_chunk_traced(
    fn: Callable[[Any, Any], Any],
    chunk: Sequence[Any],
    deadline: Optional[Deadline] = None,
    context_ids: Optional[dict] = None,
):
    return trace.call_collected(
        "parallel.chunk",
        lambda: _run_tasks(fn, chunk, _PROCESS_SHARED, deadline, context_ids),
        tasks=len(chunk),
    )


def _run_chunk_with_shared_traced(
    fn: Callable[[Any, Any], Any],
    chunk: Sequence[Any],
    shared: Any,
    deadline: Optional[Deadline] = None,
    context_ids: Optional[dict] = None,
):
    return trace.call_collected(
        "parallel.chunk",
        lambda: _run_tasks(fn, chunk, shared, deadline, context_ids),
        tasks=len(chunk),
    )


class ExecutionContext:
    """A named backend plus a worker budget for :meth:`map_tasks`.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Worker count for the pooled backends; ``None`` uses the number
        of CPUs available to this process.  Ignored by ``serial``.
    chunk_size:
        Default tasks-per-dispatch for :meth:`map_tasks`; ``None`` picks
        ``ceil(len(tasks) / (4 * workers))`` so each worker sees a few
        chunks (amortizing dispatch overhead while keeping the pool
        load-balanced).
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.backend = backend
        self.max_workers = (
            int(max_workers) if max_workers is not None else _available_cpus()
        )
        self.chunk_size = int(chunk_size) if chunk_size is not None else None

    @classmethod
    def from_spec(cls, spec: Union[str, "ExecutionContext", None]) -> "ExecutionContext":
        """Parse ``"backend"`` or ``"backend:workers"`` (e.g. ``process:4``)."""
        if spec is None:
            return cls()
        if isinstance(spec, ExecutionContext):
            return spec
        text = str(spec).strip()
        if not text:
            return cls()
        backend, _, workers = text.partition(":")
        if workers:
            try:
                count: Optional[int] = int(workers)
            except ValueError:
                raise ValueError(
                    f"invalid worker count in parallel spec {spec!r}"
                ) from None
        else:
            count = None
        return cls(backend=backend, max_workers=count)

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial" or self.max_workers == 1

    def _chunk(self, tasks: Sequence[Any], chunk_size: Optional[int]) -> List[Sequence[Any]]:
        size = chunk_size or self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(tasks) / (4 * self.max_workers)))
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    def map_tasks(
        self,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[Any],
        shared: Any = None,
        chunk_size: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[Any]:
        """Apply ``fn(task, shared)`` to every task; results in task order.

        ``shared`` is a read-only payload broadcast to every task: the
        ``process`` backend ships it to each worker exactly once (via the
        pool initializer) instead of per task, so large arrays — rank
        codings, data blocks — cost one pickle per worker.

        For the ``process`` backend ``fn`` must be a module-level
        function and tasks/shared/results must be picklable.

        Resilience: an explicit ``deadline`` (or the ambient one from
        :func:`repro.resilience.deadlines.deadline_scope`) is checked
        cooperatively between tasks on every backend, raising
        :class:`~repro.resilience.deadlines.DeadlineExceeded`; a fan-out
        whose pool breaks (worker crash) is re-dispatched on a fresh
        pool under :data:`MAP_TASKS_RETRY_POLICY`, bitwise identically.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if deadline is None:
            deadline = current_deadline()
        _TASKS_TOTAL.inc(len(tasks), backend=self.backend)
        _FANOUT_TASKS.observe(len(tasks), backend=self.backend)
        traced = trace.is_active()
        with trace.span(
            "parallel.map_tasks",
            backend=self.backend,
            tasks=len(tasks),
            workers=1 if self.is_serial else self.max_workers,
        ):
            if self.is_serial:
                if deadline is None:
                    return [fn(task, shared) for task in tasks]
                return _run_tasks(fn, tasks, shared, deadline)
            chunks = self._chunk(tasks, chunk_size)
            workers = min(self.max_workers, len(chunks))
            _logger.debug(
                "map_tasks fan-out",
                extra={
                    "backend": self.backend,
                    "tasks": len(tasks),
                    "chunks": len(chunks),
                    "workers": workers,
                },
            )

            # Correlation ids captured at dispatch travel with every
            # chunk: pool workers (threads *and* processes) re-bind
            # them, so a pooled fan-out logs under its request/job ids.
            context_ids = current_context() or None

            def dispatch() -> List[Any]:
                deadlines = [deadline] * len(chunks)
                contexts = [context_ids] * len(chunks)
                if self.backend == "thread":
                    runner = (
                        _run_chunk_with_shared_traced
                        if traced
                        else _run_chunk_with_shared
                    )
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        return list(
                            pool.map(
                                runner,
                                [fn] * len(chunks),
                                chunks,
                                [shared] * len(chunks),
                                deadlines,
                                contexts,
                            )
                        )
                runner = _run_chunk_traced if traced else _run_chunk
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_install_shared,
                    initargs=(shared,),
                ) as pool:
                    return list(
                        pool.map(
                            runner, [fn] * len(chunks), chunks, deadlines, contexts
                        )
                    )

            chunked = call_with_retry(
                dispatch,
                MAP_TASKS_RETRY_POLICY,
                operation=f"parallel.map_tasks[{self.backend}]",
            )
            if traced:
                results = []
                for chunk_results, exported in chunked:
                    trace.attach(exported)
                    results.extend(chunk_results)
                return results
            return [result for chunk in chunked for result in chunk]

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(backend={self.backend!r}, "
            f"max_workers={self.max_workers})"
        )


def resolve_context(
    context: Union[ExecutionContext, str, None] = None
) -> ExecutionContext:
    """Coerce ``context`` into an :class:`ExecutionContext`.

    ``None`` consults the ``DPCOPULA_PARALLEL`` environment variable
    (``backend`` or ``backend:workers``) and falls back to ``serial``;
    a string is parsed with :meth:`ExecutionContext.from_spec`.
    """
    if isinstance(context, ExecutionContext):
        return context
    if context is None:
        env = os.environ.get(PARALLEL_ENV_VAR, "").strip()
        return ExecutionContext.from_spec(env) if env else ExecutionContext()
    return ExecutionContext.from_spec(context)
