"""Algorithm 2: DP maximum-likelihood estimation of the copula correlation.

The subsample-and-aggregate construction of Dwork & Smith: split the data
into ``l`` disjoint blocks, compute the (non-private) Gaussian-copula MLE
on each block, release the blockwise average plus Laplace noise.  Each
correlation coefficient lives in a space of diameter ``Λ = 2``; changing
one tuple affects exactly one block, moving the average by at most
``Λ / l``, so each coefficient needs ``Lap(C(m,2)·Λ / (l·ε₂))`` for its
``ε₂ / C(m,2)`` budget share.  Disjoint blocks additionally mean the
per-block estimation itself composes in parallel.

The paper requires ``l > C(m,2) / (0.025·ε₂)`` so the injected noise is
small on the [-1, 1] coefficient scale, which in turn demands a large
cardinality ``n`` — the practical weakness relative to DPCopula-Kendall
that Figure 6 demonstrates.

Per-block estimator: the paper fits the copula by maximizing Eq. (1) on
the block's pseudo-copula data.  We support both the iterative pairwise
MLE (``estimator="pairwise_mle"``) and its standard one-step
approximation, the normal-scores correlation (``estimator="normal_scores"``,
default — fully vectorized across blocks, which matters because ``l``
routinely reaches the thousands).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from scipy import stats as sps

from repro.parallel import ExecutionContext, resolve_context
from repro.telemetry import trace
from repro.stats.copula_math import copula_mle_matrix
from repro.stats.ecdf import pseudo_copula_transform
from repro.stats.psd_repair import is_positive_definite, make_positive_definite
from repro.utils import RngLike, as_generator, check_positive, pairs_count

COEFFICIENT_DIAMETER = 2.0  # Λ: correlation coefficients live in [-1, 1]
_PAPER_PARTITION_CONSTANT = 0.025


def required_partitions(m: int, epsilon2: float) -> int:
    """The paper's lower bound ``l > C(m,2) / (0.025·ε₂)``."""
    check_positive("epsilon2", epsilon2)
    return int(np.ceil(pairs_count(m) / (_PAPER_PARTITION_CONSTANT * epsilon2)))


def _blockwise_normal_scores(blocks: np.ndarray) -> np.ndarray:
    """Normal-scores correlation for every block at once.

    ``blocks`` has shape ``(l, b, m)``; returns ``(l, m, m)``.
    Ranks are computed within each block (keeping blocks disjoint, as the
    sensitivity argument requires).
    """
    l, b, m = blocks.shape
    order = np.argsort(blocks, axis=1, kind="stable")
    ranks = np.empty_like(order)
    grid = np.arange(b)[None, :, None]
    np.put_along_axis(ranks, order, np.broadcast_to(grid, (l, b, m)).copy(), axis=1)
    u = (ranks + 1.0) / (b + 1.0)
    z = sps.norm.ppf(u)
    z = z - z.mean(axis=1, keepdims=True)
    cov = np.einsum("lbi,lbj->lij", z, z) / b
    std = np.sqrt(np.einsum("lii->li", cov))
    denom = np.einsum("li,lj->lij", std, std)
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(denom > 0, cov / denom, 0.0)
    identity = np.broadcast_to(np.eye(m), (l, m, m)).copy()
    corr = np.where(np.isfinite(corr), corr, identity)
    for matrix in corr:
        np.fill_diagonal(matrix, 1.0)
    return corr


def _block_mle_task(task: int, shared: np.ndarray) -> np.ndarray:
    """Worker body: the pairwise copula MLE of one disjoint block.

    ``shared`` is the full ``(l, b, m)`` block tensor (broadcast once per
    worker by the execution context); the task is the block index.
    """
    pseudo = pseudo_copula_transform(shared[task])
    return copula_mle_matrix(pseudo)


def dp_mle_correlation(
    values: np.ndarray,
    epsilon2: float,
    l: Optional[int] = None,
    rng: RngLike = None,
    estimator: str = "normal_scores",
    min_block_size: int = 4,
    context: Union[ExecutionContext, str, None] = None,
) -> np.ndarray:
    """Compute the DP correlation matrix estimator ``P̃`` (Algorithm 2).

    Parameters
    ----------
    values:
        ``(n, m)`` data matrix.
    epsilon2:
        Total correlation budget (each coefficient gets ``ε₂ / C(m,2)``).
    l:
        Number of disjoint blocks; ``None`` uses the paper's bound capped
        so each block keeps at least ``min_block_size`` records.
    estimator:
        ``"normal_scores"`` (vectorized one-step MLE) or
        ``"pairwise_mle"`` (iterative bivariate likelihood maximization).
    context:
        :class:`~repro.parallel.ExecutionContext` (or spec string) over
        which the per-block ``pairwise_mle`` fits fan out — the blocks
        are disjoint by construction, so they are independent tasks.
        ``normal_scores`` is already vectorized across blocks and
        ignores it.

    Returns
    -------
    A positive-definite correlation matrix with unit diagonal.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"expected an (n, m) matrix, got shape {values.shape}")
    n, m = values.shape
    if m < 2:
        return np.eye(m)
    check_positive("epsilon2", epsilon2)
    gen = as_generator(rng)
    pairs = pairs_count(m)

    if l is None:
        l = required_partitions(m, epsilon2)
    l = int(l)
    max_l = max(1, n // min_block_size)
    if l > max_l:
        # Not enough data for the paper's bound: use the largest feasible l.
        # (The noise scale Λ·C(m,2)/(l·ε₂) then honestly reflects the cost.)
        l = max_l
    if l < 1:
        raise ValueError("need at least one partition")

    block_size = n // l
    if block_size < 2:
        raise ValueError(
            f"blocks of {block_size} record(s) cannot support correlation "
            f"estimation; reduce l (= {l}) or provide more data"
        )
    with trace.span("partition", l=l, block_size=block_size):
        usable = l * block_size
        permutation = gen.permutation(n)[:usable]
        blocks = values[permutation].reshape(l, block_size, m)

    with trace.span("block_estimates", estimator=estimator, l=l):
        if estimator == "normal_scores":
            block_estimates = _blockwise_normal_scores(blocks)
        elif estimator == "pairwise_mle":
            matrices = resolve_context(context).map_tasks(
                _block_mle_task, range(l), shared=blocks
            )
            block_estimates = np.stack(matrices)
        else:
            raise ValueError(
                f"unknown estimator {estimator!r}; expected 'normal_scores' or "
                "'pairwise_mle'"
            )

    averaged = block_estimates.mean(axis=0)

    with trace.span("laplace_noise", pairs=pairs):
        scale = (pairs * COEFFICIENT_DIAMETER) / (l * epsilon2)
        upper = np.triu_indices(m, k=1)
        noisy = averaged.copy()
        noisy[upper] += gen.laplace(0.0, scale, size=len(upper[0]))
        noisy.T[upper] = noisy[upper]
        noisy = np.clip(noisy, -1.0, 1.0)
        np.fill_diagonal(noisy, 1.0)

    if is_positive_definite(noisy):
        return noisy
    with trace.span("psd_repair", method="eigenvalue"):
        return make_positive_definite(noisy)
