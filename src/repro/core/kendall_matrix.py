"""Algorithm 5: the differentially private correlation matrix via Kendall's tau.

Each of the ``C(m, 2)`` pairwise Kendall's-tau coefficients is perturbed
with Laplace noise calibrated to the Lemma 4.1 sensitivity ``4/(n+1)``
under its share ``ε₂ / C(m,2)`` of the correlation budget, the Greiner
transform ``P̃ = sin(π/2 · τ̃)`` converts to Gaussian-copula correlations,
and an eigenvalue repair (Rousseeuw & Molenberghs) restores positive
definiteness when the noise breaks it.

The paper's *sampling optimisation* (Section 4.2) is implemented too:
computing tau on an ``n̂``-record subsample costs ``O(m² n̂ log n̂)``
regardless of ``n``, at the price of enlarging the noise to
``4/(n̂+1)``.  Uniform subsampling only *amplifies* privacy, so charging
the full per-coefficient budget remains valid.  The paper recommends
``n̂ > 50·m(m−1)/ε₂ − 1`` so the noise stays small against the [-1, 1]
coefficient scale.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.parallel import ExecutionContext
from repro.telemetry import trace

from repro.dp.sensitivity import kendall_tau_sensitivity
from repro.stats.correlation import correlation_from_tau
from repro.stats.kendall import kendall_tau_matrix
from repro.stats.psd_repair import (
    higham_nearest_correlation,
    is_positive_definite,
    make_positive_definite,
)
from repro.utils import RngLike, as_generator, check_positive, pairs_count


# Floor on the automatic subsample: at very large budgets the paper's
# 50·m(m−1)/ε₂ rule can fall below any statistically sensible sample, so
# the auto mode never goes under this many records (capped by n).
MIN_AUTO_SUBSAMPLE = 1000


def kendall_subsample_size(m: int, epsilon2: float) -> int:
    """The paper's adequate subsample size ``n̂ > 50·m(m−1)/ε₂ − 1``."""
    check_positive("epsilon2", epsilon2)
    return int(np.ceil(50.0 * m * (m - 1) / epsilon2))


def dp_kendall_correlation(
    values: np.ndarray,
    epsilon2: float,
    rng: RngLike = None,
    subsample: Union[str, int, None] = "auto",
    tau_method: str = "merge",
    repair: str = "eigenvalue",
    context: Union[ExecutionContext, str, None] = None,
) -> np.ndarray:
    """Compute the DP correlation matrix estimator ``P̃`` (Algorithm 5).

    Parameters
    ----------
    values:
        ``(n, m)`` data matrix (ranks are all that matter, so integer
        codes are fine).
    epsilon2:
        Total budget for *all* coefficients; each pair receives
        ``epsilon2 / C(m, 2)``.
    subsample:
        ``"auto"`` applies the paper's sampling optimisation with
        ``n̂ = 50·m(m−1)/ε₂`` whenever that is smaller than ``n``;
        an integer forces a specific ``n̂``; ``None`` disables it.
    repair:
        ``"eigenvalue"`` (Algorithm 5 step 3) or ``"higham"``.
    context:
        :class:`~repro.parallel.ExecutionContext` (or spec string) over
        which the ``C(m, 2)`` pairwise tau computations fan out.

    Returns
    -------
    A positive-definite correlation matrix with unit diagonal.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"expected an (n, m) matrix, got shape {values.shape}")
    n, m = values.shape
    if m < 2:
        return np.eye(m)
    if n < 2:
        raise ValueError("need at least two records to estimate correlations")
    check_positive("epsilon2", epsilon2)
    if repair not in ("eigenvalue", "higham"):
        raise ValueError(
            f"unknown repair {repair!r}; expected 'eigenvalue' or 'higham'"
        )
    gen = as_generator(rng)
    pairs = pairs_count(m)

    if subsample == "auto":
        n_hat = min(n, max(kendall_subsample_size(m, epsilon2), MIN_AUTO_SUBSAMPLE))
    elif subsample is None:
        n_hat = n
    else:
        n_hat = min(n, int(subsample))
        if n_hat < 2:
            raise ValueError(f"subsample size must be >= 2, got {subsample}")

    if n_hat < n:
        with trace.span("subsample", n=n, n_hat=n_hat):
            indices = gen.choice(n, size=n_hat, replace=False)
            sample = values[indices]
    else:
        sample = values

    with trace.span("kendall_matrix", m=m, n=n_hat, pairs=pairs):
        tau = kendall_tau_matrix(sample, method=tau_method, context=context)

    sensitivity = kendall_tau_sensitivity(n_hat)
    per_pair_epsilon = epsilon2 / pairs
    scale = sensitivity / per_pair_epsilon
    with trace.span("laplace_noise", pairs=pairs):
        noisy_tau = tau.copy()
        upper = np.triu_indices(m, k=1)
        noise = gen.laplace(0.0, scale, size=len(upper[0]))
        noisy_tau[upper] += noise
        noisy_tau.T[upper] = noisy_tau[upper]
        noisy_tau = np.clip(noisy_tau, -1.0, 1.0)
        np.fill_diagonal(noisy_tau, 1.0)

    correlation = correlation_from_tau(noisy_tau)

    if is_positive_definite(correlation):
        return correlation
    with trace.span("psd_repair", method=repair):
        if repair == "eigenvalue":
            return make_positive_definite(correlation)
        return higham_nearest_correlation(correlation)
