"""Non-private copula models.

These are the statistical substrate under the DP pipeline: the same
estimate-transform-sample machinery, without noise.  They serve three
purposes: (a) test oracles — DPCopula at huge ε must converge to these;
(b) the baseline for quantifying the *cost of privacy* in the ablation
benchmarks; (c) the paper's future-work extension (the t copula with
AIC-based selection, Section 3.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.stats.copula_math import cholesky_factor
from repro.stats.correlation import correlation_from_tau
from repro.stats.ecdf import HistogramCDF, pseudo_copula_transform
from repro.stats.kendall import kendall_tau_matrix
from repro.stats.psd_repair import is_positive_definite, make_positive_definite
from repro.data.dataset import Dataset, Schema
from repro.utils import RngLike, as_generator, check_matrix_square

_CLIP = 1e-12


class GaussianCopulaModel:
    """Semi-parametric Gaussian copula (Definition 3.4), non-private.

    ``fit`` estimates the correlation matrix by the Kendall/Greiner route
    (Equation 4) and keeps exact histogram margins; ``sample`` is the
    noise-free analogue of Algorithm 3.
    """

    def __init__(self, estimator: str = "kendall"):
        if estimator not in ("kendall", "normal_scores"):
            raise ValueError(
                f"unknown estimator {estimator!r}; expected 'kendall' or "
                "'normal_scores'"
            )
        self.estimator = estimator
        self.correlation_: Optional[np.ndarray] = None
        self._margins: Optional[Sequence[HistogramCDF]] = None
        self._schema: Optional[Schema] = None
        self._n_records: Optional[int] = None

    def fit(self, dataset: Dataset) -> "GaussianCopulaModel":
        if self.estimator == "kendall":
            tau = kendall_tau_matrix(dataset.values)
            correlation = correlation_from_tau(tau)
        else:
            from repro.stats.correlation import normal_scores_correlation

            pseudo = pseudo_copula_transform(dataset.values.astype(float))
            correlation = normal_scores_correlation(pseudo)
        if not is_positive_definite(correlation):
            correlation = make_positive_definite(correlation)
        self.correlation_ = correlation
        self._margins = [
            HistogramCDF(dataset.marginal_counts(j)) for j in range(dataset.dimensions)
        ]
        self._schema = dataset.schema
        self._n_records = dataset.n_records
        return self

    def _require_fitted(self) -> None:
        if self.correlation_ is None:
            raise RuntimeError("GaussianCopulaModel is not fitted")

    def sample(self, n: Optional[int] = None, rng: RngLike = None) -> Dataset:
        self._require_fitted()
        if n is None:
            n = self._n_records
        gen = as_generator(rng)
        cholesky = cholesky_factor(self.correlation_)
        latent = gen.standard_normal((int(n), self.correlation_.shape[0])) @ cholesky.T
        uniforms = sps.norm.cdf(latent)
        columns = [
            margin.inverse(uniforms[:, j]) for j, margin in enumerate(self._margins)
        ]
        return Dataset(np.column_stack(columns), self._schema)

    def loglikelihood(self, dataset: Dataset) -> float:
        """Copula log-likelihood of (the pseudo-copula transform of) data."""
        self._require_fitted()
        from repro.stats.copula_math import gaussian_copula_logdensity

        pseudo = pseudo_copula_transform(dataset.values.astype(float))
        return float(gaussian_copula_logdensity(pseudo, self.correlation_).sum())

    def n_parameters(self) -> int:
        self._require_fitted()
        m = self.correlation_.shape[0]
        return m * (m - 1) // 2


class EmpiricalCopulaModel:
    """The empirical copula (paper Section 3.2's non-parametric option).

    Keeps the full rank structure of the fitted data: sampling draws a
    bootstrap row of the stored pseudo-copula observations (jittered
    within rank resolution so repeated samples don't tie exactly) and
    pushes it through the margins.  Captures *any* dependence — including
    non-elliptical ones no parametric copula fits — at the cost of
    memorizing the ranks, which is why the DP pipeline cannot use it
    directly (the rank matrix is not a private release).
    """

    def __init__(self, jitter: float = 0.5):
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {jitter}")
        self.jitter = jitter
        self._pseudo: Optional[np.ndarray] = None
        self._margins: Optional[Sequence[HistogramCDF]] = None
        self._schema: Optional[Schema] = None
        self._n_records: Optional[int] = None

    def fit(self, dataset: Dataset) -> "EmpiricalCopulaModel":
        self._pseudo = pseudo_copula_transform(dataset.values.astype(float))
        self._margins = [
            HistogramCDF(dataset.marginal_counts(j)) for j in range(dataset.dimensions)
        ]
        self._schema = dataset.schema
        self._n_records = dataset.n_records
        return self

    def _require_fitted(self) -> None:
        if self._pseudo is None:
            raise RuntimeError("EmpiricalCopulaModel is not fitted")

    def sample(self, n: Optional[int] = None, rng: RngLike = None) -> Dataset:
        self._require_fitted()
        if n is None:
            n = self._n_records
        gen = as_generator(rng)
        rows = gen.integers(0, self._pseudo.shape[0], size=int(n))
        u = self._pseudo[rows].copy()
        if self.jitter > 0:
            resolution = self.jitter / (self._pseudo.shape[0] + 1.0)
            u += gen.uniform(-resolution, resolution, size=u.shape)
            u = np.clip(u, 1e-9, 1.0 - 1e-9)
        columns = [
            margin.inverse(u[:, j]) for j, margin in enumerate(self._margins)
        ]
        return Dataset(np.column_stack(columns), self._schema)


class TCopulaModel:
    """The t copula (paper future work): Gaussian-like with tail dependence.

    The correlation matrix comes from the same Kendall/Greiner relation
    (valid for all elliptical copulas); the degrees of freedom ``ν`` are
    chosen by profile likelihood over a grid.
    """

    def __init__(self, df_grid: Sequence[float] = (2, 3, 4, 6, 8, 12, 20, 30)):
        self.df_grid = tuple(float(v) for v in df_grid)
        self.correlation_: Optional[np.ndarray] = None
        self.df_: Optional[float] = None
        self._margins: Optional[Sequence[HistogramCDF]] = None
        self._schema: Optional[Schema] = None
        self._n_records: Optional[int] = None

    @staticmethod
    def logdensity(u: np.ndarray, correlation: np.ndarray, df: float) -> np.ndarray:
        """Per-row log-density of the t copula with parameters (P, ν)."""
        correlation = check_matrix_square("correlation", correlation)
        u = np.atleast_2d(np.clip(np.asarray(u, dtype=float), _CLIP, 1 - _CLIP))
        m = correlation.shape[0]
        t_scores = sps.t.ppf(u, df)
        sign, logdet = np.linalg.slogdet(correlation)
        if sign <= 0:
            raise np.linalg.LinAlgError("correlation matrix is not positive definite")
        inverse = np.linalg.inv(correlation)
        quadratic = np.einsum("ni,ij,nj->n", t_scores, inverse, t_scores)
        from scipy.special import gammaln

        joint = (
            gammaln((df + m) / 2.0)
            + (m - 1) * gammaln(df / 2.0)
            - m * gammaln((df + 1) / 2.0)
            - 0.5 * logdet
            - (df + m) / 2.0 * np.log1p(quadratic / df)
        )
        marginals = ((df + 1) / 2.0) * np.log1p(t_scores**2 / df).sum(axis=1)
        return joint + marginals

    def fit(self, dataset: Dataset) -> "TCopulaModel":
        tau = kendall_tau_matrix(dataset.values)
        correlation = correlation_from_tau(tau)
        if not is_positive_definite(correlation):
            correlation = make_positive_definite(correlation)
        pseudo = pseudo_copula_transform(dataset.values.astype(float))
        best_df, best_ll = None, -np.inf
        for df in self.df_grid:
            ll = float(self.logdensity(pseudo, correlation, df).sum())
            if ll > best_ll:
                best_df, best_ll = df, ll
        self.correlation_ = correlation
        self.df_ = best_df
        self._margins = [
            HistogramCDF(dataset.marginal_counts(j)) for j in range(dataset.dimensions)
        ]
        self._schema = dataset.schema
        self._n_records = dataset.n_records
        return self

    def _require_fitted(self) -> None:
        if self.correlation_ is None:
            raise RuntimeError("TCopulaModel is not fitted")

    def sample(self, n: Optional[int] = None, rng: RngLike = None) -> Dataset:
        self._require_fitted()
        if n is None:
            n = self._n_records
        gen = as_generator(rng)
        m = self.correlation_.shape[0]
        cholesky = cholesky_factor(self.correlation_)
        normals = gen.standard_normal((int(n), m)) @ cholesky.T
        chi2 = gen.chisquare(self.df_, size=int(n))
        t_samples = normals / np.sqrt(chi2 / self.df_)[:, None]
        uniforms = sps.t.cdf(t_samples, self.df_)
        columns = [
            margin.inverse(uniforms[:, j]) for j, margin in enumerate(self._margins)
        ]
        return Dataset(np.column_stack(columns), self._schema)

    def loglikelihood(self, dataset: Dataset) -> float:
        self._require_fitted()
        pseudo = pseudo_copula_transform(dataset.values.astype(float))
        return float(self.logdensity(pseudo, self.correlation_, self.df_).sum())

    def n_parameters(self) -> int:
        self._require_fitted()
        m = self.correlation_.shape[0]
        return m * (m - 1) // 2 + 1  # + degrees of freedom
