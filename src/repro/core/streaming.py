"""DPCopula for dynamically evolving datasets (paper future work #2).

Section 6: "we are interested in developing data synthesization
mechanisms for dynamically evolving datasets."  This module implements a
principled first realization of that direction for the *growing
database* model: records arrive over time, and the curator wants to
publish a refreshed synthetic dataset after each batch while keeping the
**lifetime** privacy cost bounded by a total ε.

Design
------
A record that arrives in batch *t* is only ever touched by the releases
made at epochs >= *t*, so the naive analysis charges a record the sum of
the budgets of all epochs it participates in.  We therefore budget by
epoch: the curator declares up front how many refreshes are allowed
(``max_epochs``) and a decay profile, and epoch *t* runs a full DPCopula
fit over *all data so far* with budget ``ε_t``, where ``Σ_t ε_t = ε``.
Sequential composition over epochs then bounds any single record's
lifetime exposure by ε regardless of when it arrived.

Two profiles are provided:

* ``"uniform"`` — ``ε_t = ε / max_epochs``: simple, every refresh equal;
* ``"geometric"`` — ``ε_t ∝ r^t`` (r > 1): later epochs, which see more
  data and serve the "current" release, get more budget; early sketchy
  epochs are cheap.

The growing data itself compensates the shrinking noise scale: by
Theorem 4.3's convergence argument, per-record noise impact decays like
1/n, so a uniform profile with linear data growth still converges.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.dpcopula import DEFAULT_RATIO_K, DPCopulaKendall
from repro.data.dataset import Dataset, concatenate
from repro.dp.budget import PrivacyBudget
from repro.histograms.base import HistogramPublisher
from repro.utils import RngLike, as_generator, check_int_at_least, check_positive


def epoch_budgets(
    epsilon: float,
    max_epochs: int,
    profile: str = "uniform",
    ratio: float = 1.5,
) -> List[float]:
    """Split a lifetime budget over ``max_epochs`` refreshes.

    >>> epoch_budgets(1.0, 4)
    [0.25, 0.25, 0.25, 0.25]
    """
    check_positive("epsilon", epsilon)
    check_int_at_least("max_epochs", max_epochs, 1)
    if profile == "uniform":
        return [epsilon / max_epochs] * max_epochs
    if profile == "geometric":
        check_positive("ratio", ratio)
        weights = np.array([ratio**t for t in range(max_epochs)], dtype=float)
        return list(epsilon * weights / weights.sum())
    raise ValueError(
        f"unknown profile {profile!r}; expected 'uniform' or 'geometric'"
    )


class EvolvingDPCopula:
    """Batch-arrival DPCopula with a bounded lifetime budget.

    Parameters
    ----------
    epsilon:
        Lifetime privacy budget across all refreshes.
    max_epochs:
        Number of refreshes allowed before the budget is exhausted.
    profile / ratio:
        Budget decay profile (see :func:`epoch_budgets`).

    Examples
    --------
    >>> from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data
    >>> stream = EvolvingDPCopula(epsilon=2.0, max_epochs=2, rng=0)
    >>> batch = gaussian_dependence_data(
    ...     SyntheticSpec(n_records=500, domain_sizes=(50, 50)), rng=1)
    >>> release = stream.observe(batch)
    >>> release.n_records
    500
    """

    def __init__(
        self,
        epsilon: float,
        max_epochs: int,
        profile: str = "uniform",
        ratio: float = 1.5,
        k: float = DEFAULT_RATIO_K,
        margin_publisher: Optional[HistogramPublisher] = None,
        rng: RngLike = None,
    ):
        self.epoch_budgets = epoch_budgets(epsilon, max_epochs, profile, ratio)
        self.epsilon = float(epsilon)
        self.max_epochs = int(max_epochs)
        self.k = float(k)
        self.margin_publisher = margin_publisher
        self._rng = as_generator(rng)
        self.ledger = PrivacyBudget(epsilon)
        self._batches: List[Dataset] = []
        self._releases: List[Dataset] = []

    @property
    def epoch(self) -> int:
        """Number of refreshes already performed."""
        return len(self._releases)

    @property
    def exhausted(self) -> bool:
        return self.epoch >= self.max_epochs

    @property
    def latest_release(self) -> Optional[Dataset]:
        return self._releases[-1] if self._releases else None

    def observe(self, batch: Dataset) -> Dataset:
        """Ingest a batch and publish a refreshed synthetic dataset.

        Raises ``RuntimeError`` once ``max_epochs`` refreshes have been
        spent — the lifetime guarantee would otherwise be violated.
        """
        if self.exhausted:
            raise RuntimeError(
                f"lifetime budget exhausted after {self.max_epochs} epochs; "
                "no further releases are possible"
            )
        if self._batches and batch.schema != self._batches[0].schema:
            raise ValueError("all batches must share one schema")
        self._batches.append(batch)
        accumulated = (
            self._batches[0]
            if len(self._batches) == 1
            else concatenate(self._batches)
        )
        epoch_epsilon = self.epoch_budgets[self.epoch]
        self.ledger.spend(epoch_epsilon, f"epoch {self.epoch}")
        synthesizer = DPCopulaKendall(
            epoch_epsilon,
            k=self.k,
            margin_publisher=self.margin_publisher,
            rng=self._rng,
        )
        release = synthesizer.fit_sample(accumulated)
        self._releases.append(release)
        return release

    def remaining_epochs(self) -> int:
        return self.max_epochs - self.epoch

    def summary(self) -> str:
        """Human-readable lifetime-budget state."""
        lines = [
            f"EvolvingDPCopula(epsilon={self.epsilon:.4g}, "
            f"epoch {self.epoch}/{self.max_epochs})"
        ]
        for t, amount in enumerate(self.epoch_budgets):
            marker = "spent" if t < self.epoch else "reserved"
            lines.append(f"  epoch {t}: {amount:.4g} ({marker})")
        return "\n".join(lines)
