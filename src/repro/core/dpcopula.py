"""Algorithms 1 and 4: the DPCopula synthesizers.

Both synthesizers share the same three-phase pipeline (Figure 4):

1. publish DP marginal histograms, one per attribute, under budget
   ``ε₁ / m`` each (:class:`~repro.core.margins.DPMargins`);
2. estimate the DP Gaussian-copula correlation matrix ``P̃`` under total
   budget ``ε₂`` — via noisy Kendall's tau (Algorithm 5) or via
   subsample-and-aggregate MLE (Algorithm 2);
3. sample synthetic records from the copula (Algorithm 3).

The single algorithmic knob is ``k = ε₁ / ε₂`` (paper default 8;
Figure 5 shows robustness for any ``k >= 1``).  The end-to-end release is
``ε``-differentially private by sequential composition, and the attached
:class:`~repro.dp.budget.PrivacyBudget` ledger records the exact split.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from repro.core.kendall_matrix import dp_kendall_correlation
from repro.core.margins import DPMargins
from repro.core.mle import dp_mle_correlation
from repro.core.sampling import sample_synthetic
from repro.data.dataset import Dataset, Schema
from repro.dp.budget import PrivacyBudget, split_budget_by_ratio
from repro.histograms.base import HistogramPublisher
from repro.parallel import ExecutionContext, resolve_context, spawn_generators
from repro.resilience import faults
from repro.resilience.deadlines import current_deadline
from repro.telemetry import get_logger, trace
from repro.utils import RngLike, as_generator, check_positive

_logger = get_logger("core.dpcopula")

DEFAULT_RATIO_K = 8.0


def _margin_order(key: str) -> int:
    """Numeric sort key for ``margin_<j>`` checkpoint array names."""
    return int(key.rsplit("_", 1)[1])


class DPCopulaSynthesizer(abc.ABC):
    """Base class: budget handling, fitting state, and sampling.

    Subclasses implement :meth:`_estimate_correlation` (step 2).

    Parameters
    ----------
    epsilon:
        Overall privacy budget ``ε``.
    k:
        Budget ratio ``ε₁ / ε₂`` between margins and correlations.
    margin_publisher:
        1-D DP histogram method for step 1 (default EFPA, as in the
        paper).
    rng:
        Seed or generator for all randomness (noise and sampling).
    context:
        :class:`~repro.parallel.ExecutionContext` (or spec string) the
        correlation estimators fan their independent work units out
        over (pairwise tau coefficients, per-block MLE fits).  Default
        serial; every backend yields identical results.
    """

    method_name = "dpcopula"

    def __init__(
        self,
        epsilon: float,
        k: float = DEFAULT_RATIO_K,
        margin_publisher: Optional[HistogramPublisher] = None,
        rng: RngLike = None,
        context: Union[ExecutionContext, str, None] = None,
    ):
        check_positive("epsilon", epsilon)
        check_positive("k", k)
        self.epsilon = float(epsilon)
        self.k = float(k)
        self.epsilon1, self.epsilon2 = split_budget_by_ratio(epsilon, k)
        self._rng = as_generator(rng)
        self.context = resolve_context(context)
        self._margins = DPMargins(publisher=margin_publisher)
        self.budget_: Optional[PrivacyBudget] = None
        self.correlation_: Optional[np.ndarray] = None
        self._schema: Optional[Schema] = None
        self._n_records: Optional[int] = None
        #: Whether this fit has drawn any noise against the privacy
        #: budget yet.  ``False`` until the instant before the first DP
        #: mechanism runs, which is the provably-safe refund window: a
        #: failure while this is still ``False`` means the data never
        #: influenced any released (or releasable) value, so a charged
        #: ε may be refunded (see docs/RELIABILITY.md).
        self.privacy_touched_ = False

    @property
    def is_fitted(self) -> bool:
        return self.correlation_ is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(
                f"{type(self).__name__} has not been fitted; call fit() first"
            )

    @property
    def margins_(self) -> DPMargins:
        self._require_fitted()
        return self._margins

    @property
    def schema_(self) -> Schema:
        self._require_fitted()
        return self._schema

    @abc.abstractmethod
    def _estimate_correlation(self, dataset: Dataset) -> np.ndarray:
        """Step 2: the DP correlation matrix under budget ``epsilon2``."""

    def fit(self, dataset: Dataset, checkpoint=None) -> "DPCopulaSynthesizer":
        """Run steps 1 and 2 on ``dataset``, spending the full budget.

        ``checkpoint`` (optional) is a stage-checkpoint store with
        ``load(stage) -> dict | None`` and ``save(stage, arrays)``
        methods (duck-typed; the service passes a
        :class:`~repro.service.jobs.FitCheckpoint` backed by the job
        journal).  With a checkpoint attached the fit becomes
        *resumable*: each stage's output is persisted when computed and
        reloaded instead of recomputed on a later attempt.  Checkpointed
        fits derive one independent RNG stream per stage up front
        (margins, correlation, sampling), so a resumed fit draws exactly
        the noise an uninterrupted run would have drawn — the release is
        bitwise the same release, and re-attempts cost no extra ε.
        Without a checkpoint the historical single-stream RNG threading
        is preserved unchanged.

        Deadlines are honored cooperatively at stage boundaries (and
        between parallel tasks inside the correlation stage) when one is
        installed via
        :func:`repro.resilience.deadlines.deadline_scope`.
        """
        if dataset.n_records < 2:
            raise ValueError("DPCopula needs at least two records")
        self.privacy_touched_ = False
        deadline = current_deadline()
        stage_rngs = (
            spawn_generators(self._rng, 3) if checkpoint is not None else None
        )
        with trace.span(
            "fit",
            method=self.method_name,
            n=dataset.n_records,
            m=dataset.dimensions,
            epsilon=self.epsilon,
        ):
            budget = PrivacyBudget(self.epsilon)
            if deadline is not None:
                deadline.check("fit stage 'margins'")
            faults.inject("fit.margins")
            with trace.span("margins", epsilon1=round(self.epsilon1, 6)):
                restored = checkpoint.load("margins") if checkpoint else None
                if restored is not None:
                    self._margins.restore(
                        [restored[key] for key in sorted(restored, key=_margin_order)]
                    )
                    budget.spend(self.epsilon1, "margins (restored from checkpoint)")
                else:
                    self.privacy_touched_ = True
                    margins_rng = stage_rngs[0] if stage_rngs else self._rng
                    self._margins.fit(
                        dataset, self.epsilon1, rng=margins_rng, budget=budget
                    )
                    if checkpoint is not None:
                        checkpoint.save(
                            "margins",
                            {
                                f"margin_{j}": counts
                                for j, counts in enumerate(self._margins.noisy_counts)
                            },
                        )
            if deadline is not None:
                deadline.check("fit stage 'correlation'")
            faults.inject("fit.correlation")
            with trace.span("correlation", epsilon2=round(self.epsilon2, 6)):
                restored = checkpoint.load("correlation") if checkpoint else None
                if restored is not None:
                    self.correlation_ = np.asarray(
                        restored["correlation"], dtype=float
                    )
                else:
                    self.privacy_touched_ = True
                    if stage_rngs is not None:
                        self._rng = stage_rngs[1]
                    self.correlation_ = self._estimate_correlation(dataset)
                    if checkpoint is not None:
                        checkpoint.save(
                            "correlation", {"correlation": self.correlation_}
                        )
            budget.spend(self.epsilon2, "correlation matrix")
            if stage_rngs is not None:
                # Sampling gets its own stream so post-fit draws are
                # identical whether or not any stage was resumed.
                self._rng = stage_rngs[2]
        _logger.debug(
            "fit complete",
            extra={
                "method": self.method_name,
                "n": dataset.n_records,
                "m": dataset.dimensions,
                "epsilon": self.epsilon,
            },
        )
        self.budget_ = budget
        self._schema = dataset.schema
        self._n_records = dataset.n_records
        return self

    def sample(
        self, n: Optional[int] = None, chunk_size: Optional[int] = None
    ) -> Dataset:
        """Step 3: draw ``n`` DP synthetic records (default: original n).

        Sampling is post-processing, so it can be repeated arbitrarily
        without spending additional budget.  ``chunk_size`` bounds the
        per-pass working set for very large ``n`` (see
        :func:`~repro.core.sampling.sample_synthetic`); it never changes
        the sampled records.
        """
        self._require_fitted()
        if n is None:
            n = self._n_records
        return sample_synthetic(
            self.correlation_,
            self._margins.cdfs,
            int(n),
            self._schema,
            rng=self._rng,
            chunk_size=chunk_size,
        )

    def fit_sample(self, dataset: Dataset, n: Optional[int] = None) -> Dataset:
        """Convenience: ``fit`` then ``sample`` in one call."""
        return self.fit(dataset).sample(n)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(epsilon={self.epsilon}, k={self.k}, "
            f"fitted={self.is_fitted})"
        )


class DPCopulaKendall(DPCopulaSynthesizer):
    """Algorithm 4: DPCopula with the noisy Kendall's-tau estimator.

    Additional parameters
    ---------------------
    subsample:
        Sampling optimisation for the tau computation: ``"auto"`` (the
        paper's ``n̂ = 50·m(m−1)/ε₂`` rule), an explicit size, or ``None``
        to always use the full data.
    repair:
        Positive-definiteness repair: ``"eigenvalue"`` (Algorithm 5,
        step 3) or ``"higham"``.
    """

    method_name = "dpcopula-kendall"

    def __init__(
        self,
        epsilon: float,
        k: float = DEFAULT_RATIO_K,
        margin_publisher: Optional[HistogramPublisher] = None,
        subsample: Union[str, int, None] = "auto",
        tau_method: str = "merge",
        repair: str = "eigenvalue",
        rng: RngLike = None,
        context: Union[ExecutionContext, str, None] = None,
    ):
        super().__init__(
            epsilon, k=k, margin_publisher=margin_publisher, rng=rng, context=context
        )
        self.subsample = subsample
        self.tau_method = tau_method
        self.repair = repair

    def _estimate_correlation(self, dataset: Dataset) -> np.ndarray:
        return dp_kendall_correlation(
            dataset.values,
            self.epsilon2,
            rng=self._rng,
            subsample=self.subsample,
            tau_method=self.tau_method,
            repair=self.repair,
            context=self.context,
        )


class DPCopulaMLE(DPCopulaSynthesizer):
    """Algorithm 1: DPCopula with the subsample-and-aggregate DP MLE.

    Additional parameters
    ---------------------
    l:
        Number of disjoint blocks; ``None`` derives the paper's bound
        ``l > C(m,2)/(0.025·ε₂)`` (capped by the data size).
    estimator:
        Per-block estimator: ``"normal_scores"`` (vectorized one-step
        MLE, default) or ``"pairwise_mle"`` (iterative).
    """

    method_name = "dpcopula-mle"

    def __init__(
        self,
        epsilon: float,
        k: float = DEFAULT_RATIO_K,
        margin_publisher: Optional[HistogramPublisher] = None,
        l: Optional[int] = None,
        estimator: str = "normal_scores",
        rng: RngLike = None,
        context: Union[ExecutionContext, str, None] = None,
    ):
        super().__init__(
            epsilon, k=k, margin_publisher=margin_publisher, rng=rng, context=context
        )
        self.l = l
        self.estimator = estimator

    def _estimate_correlation(self, dataset: Dataset) -> np.ndarray:
        return dp_mle_correlation(
            dataset.values,
            self.epsilon2,
            l=self.l,
            rng=self._rng,
            estimator=self.estimator,
            context=self.context,
        )
