"""Conditional sampling from a fitted Gaussian copula.

A practical capability the copula representation gives almost for free:
fix the values of some attributes and draw the remaining ones from their
conditional distribution.  Downstream users employ this for DP imputation
("fill in plausible incomes for these demographic rows") and for
scenario generation ("synthesize only records with age in their 30s").

Mechanics: in the latent Gaussian space, conditioning is exact —
``Z_B | Z_A = a ~ N(P_BA P_AA⁻¹ a,  P_BB − P_BA P_AA⁻¹ P_AB)``.
The fixed attributes map to latent values through their DP marginal CDFs
(midpoint-corrected probit), the free attributes are drawn from the
conditional Gaussian and pushed back through the inverse DP margins.
Everything operates on already-released DP state, so conditional
sampling is pure post-processing.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.data.dataset import Dataset, Schema
from repro.stats.copula_math import cholesky_factor
from repro.stats.ecdf import HistogramCDF
from repro.utils import RngLike, as_generator, check_int_at_least, check_matrix_square

_PROBIT_CLIP = 1e-9


class ConditionalCopulaSampler:
    """Conditional sampler over a (DP) Gaussian-copula model.

    Parameters
    ----------
    correlation:
        The (released) copula correlation matrix ``P̃``.
    margins:
        The (released) marginal distributions ``F̃_j``.
    schema:
        Output schema.
    """

    def __init__(
        self,
        correlation: np.ndarray,
        margins: Sequence[HistogramCDF],
        schema: Schema,
    ):
        self.correlation = check_matrix_square("correlation", correlation)
        self.margins = list(margins)
        self.schema = schema
        if len(self.margins) != self.correlation.shape[0]:
            raise ValueError(
                f"{len(self.margins)} margins but correlation is "
                f"{self.correlation.shape[0]}x{self.correlation.shape[0]}"
            )
        if len(self.margins) != schema.dimensions:
            raise ValueError(
                f"{len(self.margins)} margins but schema has "
                f"{schema.dimensions} attributes"
            )

    @classmethod
    def from_synthesizer(cls, synthesizer) -> "ConditionalCopulaSampler":
        """Build from a fitted DPCopula synthesizer."""
        if not synthesizer.is_fitted:
            raise ValueError("synthesizer must be fitted first")
        return cls(
            synthesizer.correlation_,
            synthesizer.margins_.cdfs,
            synthesizer.schema_,
        )

    def _latent_of(self, index: int, value: int) -> float:
        """Latent Gaussian coordinate of a fixed attribute value."""
        u = float(self.margins[index](np.asarray([value]))[0])
        u = min(max(u, _PROBIT_CLIP), 1.0 - _PROBIT_CLIP)
        return float(sps.norm.ppf(u))

    def sample(
        self,
        n: int,
        given: Optional[Dict[str, int]] = None,
        rng: RngLike = None,
    ) -> Dataset:
        """Draw ``n`` records with the ``given`` attributes held fixed.

        ``given`` maps attribute names to the fixed integer values;
        an empty/None ``given`` degenerates to unconditional sampling.
        """
        check_int_at_least("n", n, 1)
        gen = as_generator(rng)
        m = self.schema.dimensions
        given = dict(given or {})

        fixed_indices = []
        fixed_values = []
        for name, value in given.items():
            index = self.schema.index_of(name)
            attribute = self.schema[index]
            if not 0 <= int(value) < attribute.domain_size:
                raise ValueError(
                    f"value {value} outside the domain of {name!r} "
                    f"[0, {attribute.domain_size})"
                )
            fixed_indices.append(index)
            fixed_values.append(int(value))
        free_indices = [j for j in range(m) if j not in set(fixed_indices)]

        if not fixed_indices:
            from repro.core.sampling import sample_synthetic

            return sample_synthetic(
                self.correlation, self.margins, n, self.schema, rng=gen
            )
        if not free_indices:
            values = np.tile(np.asarray(fixed_values, dtype=np.int64), (n, 1))
            ordered = np.empty((n, m), dtype=np.int64)
            ordered[:, fixed_indices] = values
            return Dataset(ordered, self.schema)

        a = np.asarray(fixed_indices)
        b = np.asarray(free_indices)
        p_aa = self.correlation[np.ix_(a, a)]
        p_ba = self.correlation[np.ix_(b, a)]
        p_bb = self.correlation[np.ix_(b, b)]

        latent_fixed = np.asarray(
            [self._latent_of(j, v) for j, v in zip(fixed_indices, fixed_values)]
        )
        solve_aa = np.linalg.solve(p_aa, latent_fixed)
        conditional_mean = p_ba @ solve_aa
        conditional_cov = p_bb - p_ba @ np.linalg.solve(p_aa, p_ba.T)
        conditional_cov = (conditional_cov + conditional_cov.T) / 2.0
        # Eigenvalue floor (without diagonal renormalization — the
        # conditional variances are meaningful) keeps the factorization valid.
        cholesky = cholesky_factor(conditional_cov, repair="covariance")
        latent_free = (
            conditional_mean[None, :]
            + gen.standard_normal((n, b.size)) @ cholesky.T
        )
        uniforms = sps.norm.cdf(latent_free)

        ordered = np.empty((n, m), dtype=np.int64)
        for position, j in enumerate(fixed_indices):
            ordered[:, j] = fixed_values[position]
        for position, j in enumerate(free_indices):
            ordered[:, j] = self.margins[j].inverse(uniforms[:, position])
        return Dataset(ordered, self.schema)
