"""Release diagnostics: what noise went where, and what to expect of it.

A data curator deciding on ε wants to know, *before* looking at utility
numbers, how hard each released statistic was perturbed.  This module
derives, from a synthesizer's configuration and a dataset's shape, the
closed-form noise scales of every release the paper's algorithms make:

* per-margin Laplace scale ``1/(ε₁/m)`` (identity-equivalent; transform-
  domain publishers like EFPA trade this against truncation error);
* per-coefficient Kendall scale ``Δ·C(m,2)/ε₂`` with ``Δ = 4/(n̂+1)``;
* per-coefficient MLE scale ``Λ·C(m,2)/(l·ε₂)``;

plus the derived quantities an analyst actually reasons with: the
expected absolute perturbation of a margin *fraction* and of a
correlation coefficient.  The numbers are configuration-only (no data
values), so printing them costs no privacy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.kendall_matrix import MIN_AUTO_SUBSAMPLE, kendall_subsample_size
from repro.core.mle import COEFFICIENT_DIAMETER, required_partitions
from repro.dp.budget import split_budget_by_ratio
from repro.dp.sensitivity import kendall_tau_sensitivity
from repro.utils import check_int_at_least, check_positive, pairs_count


@dataclass(frozen=True)
class ReleasePlan:
    """The noise budget of one DPCopula release, before any data access."""

    epsilon: float
    k: float
    n_records: int
    dimensions: int
    method: str
    epsilon1: float
    epsilon2: float
    per_margin_epsilon: float
    margin_noise_scale: float
    pair_count: int
    per_pair_epsilon: float
    tau_subsample: Optional[int]
    coefficient_noise_scale: float
    mle_partitions: Optional[int]

    @property
    def expected_margin_count_error(self) -> float:
        """Mean |Laplace| noise per margin bin: equals the scale b."""
        return self.margin_noise_scale

    @property
    def expected_margin_fraction_error(self) -> float:
        """Mean absolute perturbation of one bin's *probability mass*."""
        return self.margin_noise_scale / max(self.n_records, 1)

    @property
    def expected_coefficient_error(self) -> float:
        """Mean absolute perturbation of one correlation coefficient.

        Laplace mean |X| equals the scale; the Greiner transform's
        slope is at most π/2, giving a conservative bound on the
        correlation-space error.
        """
        import math

        return (math.pi / 2.0) * self.coefficient_noise_scale

    def summary(self) -> str:
        """Human-readable plan."""
        lines = [
            f"ReleasePlan({self.method}, epsilon={self.epsilon:.4g}, "
            f"n={self.n_records}, m={self.dimensions})",
            f"  budget split: eps1={self.epsilon1:.4g} (margins), "
            f"eps2={self.epsilon2:.4g} (correlations)  [k={self.k:.4g}]",
            f"  margins: {self.dimensions} x eps {self.per_margin_epsilon:.4g}; "
            f"count noise scale {self.margin_noise_scale:.4g} "
            f"(~{self.expected_margin_fraction_error:.3e} per unit mass)",
            f"  coefficients: {self.pair_count} x eps {self.per_pair_epsilon:.4g}; "
            f"noise scale {self.coefficient_noise_scale:.4g} "
            f"(~{self.expected_coefficient_error:.3g} on the correlation)",
        ]
        if self.tau_subsample is not None:
            lines.append(f"  Kendall subsample: n_hat = {self.tau_subsample}")
        if self.mle_partitions is not None:
            lines.append(f"  MLE partitions: l = {self.mle_partitions}")
        return "\n".join(lines)


def plan_release(
    epsilon: float,
    n_records: int,
    dimensions: int,
    k: float = 8.0,
    method: str = "kendall",
    subsample: str = "auto",
) -> ReleasePlan:
    """Compute the noise plan of a DPCopula release from its configuration.

    ``method`` is ``"kendall"`` or ``"mle"``; for Kendall,
    ``subsample="auto"`` applies the paper's n̂ rule, ``"full"`` uses all
    records.
    """
    check_positive("epsilon", epsilon)
    check_int_at_least("n_records", n_records, 2)
    check_int_at_least("dimensions", dimensions, 1)
    if method not in ("kendall", "mle"):
        raise ValueError(f"unknown method {method!r}; expected 'kendall' or 'mle'")

    epsilon1, epsilon2 = split_budget_by_ratio(epsilon, k)
    m = dimensions
    pairs = max(pairs_count(m), 1)
    per_margin = epsilon1 / m
    margin_scale = 1.0 / per_margin  # identity-equivalent Lap(1/eps) per bin
    per_pair = epsilon2 / pairs

    tau_subsample: Optional[int] = None
    mle_partitions: Optional[int] = None
    if method == "kendall":
        if subsample == "auto":
            n_hat = min(
                n_records,
                max(kendall_subsample_size(m, epsilon2), MIN_AUTO_SUBSAMPLE),
            )
        elif subsample == "full":
            n_hat = n_records
        else:
            raise ValueError(
                f"unknown subsample policy {subsample!r}; expected 'auto' or 'full'"
            )
        tau_subsample = n_hat
        coefficient_scale = kendall_tau_sensitivity(n_hat) / per_pair
    else:
        l = min(required_partitions(m, epsilon2), max(1, n_records // 4))
        mle_partitions = l
        coefficient_scale = (pairs * COEFFICIENT_DIAMETER) / (l * epsilon2)

    return ReleasePlan(
        epsilon=float(epsilon),
        k=float(k),
        n_records=int(n_records),
        dimensions=int(m),
        method=method,
        epsilon1=epsilon1,
        epsilon2=epsilon2,
        per_margin_epsilon=per_margin,
        margin_noise_scale=margin_scale,
        pair_count=pairs,
        per_pair_epsilon=per_pair,
        tau_subsample=tau_subsample,
        coefficient_noise_scale=coefficient_scale,
        mle_partitions=mle_partitions,
    )


def compare_methods(
    epsilon: float, n_records: int, dimensions: int, k: float = 8.0
) -> List[ReleasePlan]:
    """Plans for both estimators side by side (the Figure-6 comparison,
    predicted from closed forms before running anything)."""
    return [
        plan_release(epsilon, n_records, dimensions, k=k, method="kendall"),
        plan_release(epsilon, n_records, dimensions, k=k, method="mle"),
    ]
