"""AIC-based copula goodness-of-fit selection (paper Section 3.2, future work).

"Actually we can use many approaches to test the goodness-of-fit, such as
Akaike's Information Criterion (AIC) to identify the best copula."  This
module implements that extension: fit each candidate copula family to the
data, score with ``AIC = 2·p − 2·logL`` on the copula likelihood, and
return the winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.copula import GaussianCopulaModel, TCopulaModel
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class CopulaFit:
    """One candidate's fit: the model, its log-likelihood and AIC."""

    name: str
    model: object
    loglikelihood: float
    aic: float


def aic_score(loglikelihood: float, n_parameters: int) -> float:
    """Akaike's information criterion (lower is better)."""
    return 2.0 * n_parameters - 2.0 * loglikelihood


def select_copula(
    dataset: Dataset,
    candidates: Optional[Sequence[str]] = None,
) -> CopulaFit:
    """Fit every candidate family and return the AIC-best fit.

    Supported candidates: ``"gaussian"`` and ``"t"``.
    """
    if candidates is None:
        candidates = ("gaussian", "t")
    fits: List[CopulaFit] = []
    for name in candidates:
        family = name.lower()
        if family == "gaussian":
            model = GaussianCopulaModel().fit(dataset)
        elif family == "t":
            model = TCopulaModel().fit(dataset)
        else:
            raise ValueError(f"unknown copula family {name!r}")
        ll = model.loglikelihood(dataset)
        fits.append(CopulaFit(family, model, ll, aic_score(ll, model.n_parameters())))
    if not fits:
        raise ValueError("no candidate copula families supplied")
    return min(fits, key=lambda fit: fit.aic)


def rank_copulas(
    dataset: Dataset,
    candidates: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """AIC of every candidate family, for reporting."""
    if candidates is None:
        candidates = ("gaussian", "t")
    scores: Dict[str, float] = {}
    for name in candidates:
        fit = select_copula(dataset, candidates=[name])
        scores[fit.name] = fit.aic
    return scores
