"""Empirical convergence diagnostics for Section 4.3.

Theorem 4.3 proves that the DPCopula-Kendall synthetic distribution
converges to the original joint distribution as the cardinality ``n``
grows: the noisy margins converge (Lemma 4.1 — the Laplace scale on a
histogram is fixed while counts grow linearly), the noisy Kendall
coefficients converge (Lemma 4.2 — noise scale ``4/((n+1)ε₂) → 0``), and
convergence of margins + copula implies convergence of the joint
distribution (Theorem 3.3).

These diagnostics make the theorem *measurable*:

* :func:`margin_distance` — sup-norm (Kolmogorov) distance between an
  original and a synthetic marginal CDF;
* :func:`tau_matrix_error` — max absolute deviation between the Kendall
  matrices of original and synthetic data;
* :func:`joint_cdf_distance` — max deviation of the empirical joint CDFs
  over random evaluation points;
* :func:`run_convergence_study` — all three as a function of ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.stats.kendall import kendall_tau_matrix
from repro.utils import RngLike, as_generator


def margin_distance(original: Dataset, synthetic: Dataset, index: int) -> float:
    """Kolmogorov distance between one attribute's original/synthetic CDFs."""
    domain = original.schema[index].domain_size
    original_cdf = np.cumsum(original.marginal_counts(index)) / original.n_records
    synthetic_counts = np.bincount(synthetic.column(index), minlength=domain)
    synthetic_cdf = np.cumsum(synthetic_counts) / max(synthetic.n_records, 1)
    return float(np.abs(original_cdf - synthetic_cdf).max())


def max_margin_distance(original: Dataset, synthetic: Dataset) -> float:
    """Worst Kolmogorov distance over all attributes."""
    return max(
        margin_distance(original, synthetic, j) for j in range(original.dimensions)
    )


def tau_matrix_error(
    original: Dataset,
    synthetic: Dataset,
    max_records: int = 4000,
    rng: RngLike = 0,
) -> float:
    """Max absolute entry difference of the two Kendall's-tau matrices.

    Both matrices are estimated on subsamples of at most ``max_records``
    rows so the diagnostic stays O(m² · max_records log max_records).
    """
    gen = as_generator(rng)
    a = original.sample(max_records, gen).values
    b = synthetic.sample(max_records, gen).values
    return float(np.abs(kendall_tau_matrix(a) - kendall_tau_matrix(b)).max())


def joint_cdf_distance(
    original: Dataset,
    synthetic: Dataset,
    n_points: int = 200,
    rng: RngLike = 0,
) -> float:
    """Max empirical joint-CDF deviation over random evaluation points.

    A Monte-Carlo sup-distance: evaluation points are sampled uniformly
    over the attribute grid, and at each point the fraction of records
    dominated by it is compared between the two datasets.
    """
    gen = as_generator(rng)
    sizes = original.schema.domain_sizes
    points = np.column_stack(
        [gen.integers(0, size, size=n_points) for size in sizes]
    )
    worst = 0.0
    original_values = original.values
    synthetic_values = synthetic.values
    for point in points:
        p_original = np.mean(np.all(original_values <= point, axis=1))
        p_synthetic = np.mean(np.all(synthetic_values <= point, axis=1))
        worst = max(worst, abs(float(p_original - p_synthetic)))
    return worst


@dataclass(frozen=True)
class ConvergencePoint:
    """Diagnostics at one cardinality."""

    n_records: int
    margin_sup_distance: float
    tau_error: float
    joint_cdf_sup_distance: float


def run_convergence_study(
    cardinalities: Sequence[int],
    make_dataset: Callable[[int], Dataset],
    make_synthesizer: Callable[[], "object"],
    rng: RngLike = 0,
) -> List[ConvergencePoint]:
    """Measure all three diagnostics at each cardinality.

    ``make_dataset(n)`` must return an original dataset of ``n`` records;
    ``make_synthesizer()`` a fresh synthesizer exposing ``fit_sample``.
    """
    gen = as_generator(rng)
    results: List[ConvergencePoint] = []
    for n in cardinalities:
        original = make_dataset(int(n))
        synthesizer = make_synthesizer()
        synthetic = synthesizer.fit_sample(original)
        results.append(
            ConvergencePoint(
                n_records=int(n),
                margin_sup_distance=max_margin_distance(original, synthetic),
                tau_error=tau_matrix_error(original, synthetic, rng=gen),
                joint_cdf_sup_distance=joint_cdf_distance(original, synthetic, rng=gen),
            )
        )
    return results
