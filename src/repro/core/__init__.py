"""The paper's primary contribution: the DPCopula synthesizers.

* :class:`~repro.core.dpcopula.DPCopulaKendall` — Algorithm 4 (noisy
  Kendall's-tau correlation matrix, Algorithm 5);
* :class:`~repro.core.dpcopula.DPCopulaMLE` — Algorithm 1 (DP maximum
  likelihood via subsample-and-aggregate, Algorithm 2);
* :class:`~repro.core.hybrid.DPCopulaHybrid` — Algorithm 6 (partition on
  small-domain attributes, run DPCopula per partition);
* :mod:`~repro.core.sampling` — Algorithm 3 (synthetic-data sampling);
* :mod:`~repro.core.copula` — non-private Gaussian/t copula models
  (substrate, plus the paper's future-work extension);
* :mod:`~repro.core.convergence` — empirical convergence diagnostics for
  Section 4.3.
"""

from repro.core.conditional import ConditionalCopulaSampler
from repro.core.copula import EmpiricalCopulaModel, GaussianCopulaModel, TCopulaModel
from repro.core.diagnostics import ReleasePlan, compare_methods, plan_release
from repro.core.dpcopula import DPCopulaKendall, DPCopulaMLE, DPCopulaSynthesizer
from repro.core.hybrid import DPCopulaHybrid
from repro.core.kendall_matrix import dp_kendall_correlation, kendall_subsample_size
from repro.core.margins import DPMargins
from repro.core.mle import dp_mle_correlation, required_partitions
from repro.core.sampling import sample_pseudo_copula, sample_synthetic
from repro.core.selection import select_copula
from repro.core.streaming import EvolvingDPCopula, epoch_budgets

__all__ = [
    "DPCopulaSynthesizer",
    "DPCopulaKendall",
    "DPCopulaMLE",
    "DPCopulaHybrid",
    "DPMargins",
    "dp_kendall_correlation",
    "kendall_subsample_size",
    "dp_mle_correlation",
    "required_partitions",
    "sample_synthetic",
    "sample_pseudo_copula",
    "GaussianCopulaModel",
    "TCopulaModel",
    "EmpiricalCopulaModel",
    "select_copula",
    "EvolvingDPCopula",
    "epoch_budgets",
    "ConditionalCopulaSampler",
    "ReleasePlan",
    "plan_release",
    "compare_methods",
]
