"""Algorithm 6: DPCopula hybrid for datasets with small-domain attributes.

Attributes with fewer than ~10 values (binary gender/disability/nativity
in the census data) break the "approximately continuous margins"
assumption.  The hybrid scheme:

1. partitions the dataset on the cross-product of the small-domain
   attributes (``∏ |A_i|`` cells — *all* cells, occupied or not, so the
   release pattern itself leaks nothing);
2. publishes a noisy record count ``ñ_i = n_i + Lap(1/ε₁ᵖ)`` per cell —
   the cells are disjoint, so one round of Laplace noise costs ``ε₁ᵖ``
   overall by parallel composition;
3. runs a full DPCopula synthesizer on the large-domain attributes of
   each cell with the remaining budget ``ε − ε₁ᵖ`` (again parallel across
   cells), sampling ``ñ_i`` records, and concatenates.

Degenerate cells are handled explicitly: a cell with a positive noisy
count but fewer than ``min_fit_records`` true records cannot support
copula estimation, so its synthetic rows fall back to sampling the
large-domain attributes uniformly (documented utility floor, never a
privacy issue).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type, Union

import numpy as np

from repro.core.dpcopula import (
    DEFAULT_RATIO_K,
    DPCopulaKendall,
    DPCopulaMLE,
    DPCopulaSynthesizer,
)
from repro.data.dataset import Dataset, Schema, concatenate
from repro.dp.budget import PrivacyBudget
from repro.dp.mechanisms import laplace_noise
from repro.histograms.base import HistogramPublisher
from repro.parallel import (
    ExecutionContext,
    resolve_context,
    spawn_seed_sequences,
)
from repro.telemetry import get_logger, metrics, trace
from repro.utils import RngLike, as_generator, check_positive

_MAX_PARTITIONS = 100_000

_logger = get_logger("core.hybrid")

_FIT_ERRORS = metrics.REGISTRY.counter(
    "dpcopula_fit_errors_total",
    "Failed fits, by pipeline stage (label: stage)",
)


def _fit_cell_task(task, shared):
    """Worker body: one occupied cell's full DPCopula fit + sample.

    The task carries only what differs per cell (its large-domain
    submatrix, the noisy record count to draw, and an independent child
    seed); the synthesizer configuration rides in the shared payload so
    the process backend ships it once per worker.
    """
    cell_values, synth_count, seed = task
    cls, epsilon, k, margin_publisher, method_kwargs, large_schema = shared
    synthesizer = cls(
        epsilon,
        k=k,
        margin_publisher=margin_publisher,
        rng=np.random.default_rng(seed),
        **method_kwargs,
    )
    cell_data = Dataset(cell_values, large_schema)
    return synthesizer.fit_sample(cell_data, n=synth_count).values


class DPCopulaHybrid:
    """Partition-then-synthesize wrapper around a DPCopula method.

    Parameters
    ----------
    epsilon:
        Overall privacy budget.
    partition_fraction:
        Share ``ε₁ᵖ / ε`` spent on the noisy partition counts.
    method:
        ``"kendall"`` or ``"mle"`` — which synthesizer runs per cell.
    small_domain_indices:
        Attributes to partition on; ``None`` auto-detects attributes with
        domain size below the continuity threshold.
    context:
        :class:`~repro.parallel.ExecutionContext` (or spec string) over
        which the per-cell fits fan out.  Parallelism is across cells
        only — each cell's synthesizer runs serially inside its worker
        with an independent child generator, so results are identical
        for every backend.
    method_kwargs:
        Extra keyword arguments forwarded to the per-cell synthesizer.
    """

    method_name = "dpcopula-hybrid"

    def __init__(
        self,
        epsilon: float,
        k: float = DEFAULT_RATIO_K,
        partition_fraction: float = 0.1,
        method: str = "kendall",
        margin_publisher: Optional[HistogramPublisher] = None,
        small_domain_indices: Optional[Sequence[int]] = None,
        min_fit_records: int = 10,
        rng: RngLike = None,
        context: Union[ExecutionContext, str, None] = None,
        **method_kwargs,
    ):
        check_positive("epsilon", epsilon)
        if not 0.0 < partition_fraction < 1.0:
            raise ValueError(
                f"partition_fraction must lie in (0, 1), got {partition_fraction}"
            )
        if method not in ("kendall", "mle"):
            raise ValueError(f"unknown method {method!r}; expected 'kendall' or 'mle'")
        self.epsilon = float(epsilon)
        self.k = float(k)
        self.partition_fraction = float(partition_fraction)
        self.method = method
        self.margin_publisher = margin_publisher
        self.small_domain_indices = (
            list(small_domain_indices) if small_domain_indices is not None else None
        )
        self.min_fit_records = int(min_fit_records)
        self.method_kwargs = dict(method_kwargs)
        self.context = resolve_context(context)
        self._rng = as_generator(rng)
        self.budget_: Optional[PrivacyBudget] = None
        self._synthetic: Optional[Dataset] = None

    def _synthesizer_class(self) -> Type[DPCopulaSynthesizer]:
        return DPCopulaKendall if self.method == "kendall" else DPCopulaMLE

    def fit_sample(self, dataset: Dataset) -> Dataset:
        """Run Algorithm 6 end-to-end and return the synthetic dataset."""
        with trace.span(
            "hybrid.fit_sample",
            method=self.method,
            n=dataset.n_records,
            m=dataset.dimensions,
            epsilon=self.epsilon,
        ):
            return self._fit_sample(dataset)

    def _fit_sample(self, dataset: Dataset) -> Dataset:
        schema = dataset.schema
        small = (
            self.small_domain_indices
            if self.small_domain_indices is not None
            else schema.small_domain_indices()
        )
        large = [j for j in range(schema.dimensions) if j not in set(small)]
        if not large:
            raise ValueError(
                "hybrid needs at least one large-domain attribute to model"
            )
        if not small:
            # Nothing to partition on: plain DPCopula with the full budget.
            synthesizer = self._synthesizer_class()(
                self.epsilon,
                k=self.k,
                margin_publisher=self.margin_publisher,
                rng=self._rng,
                **self.method_kwargs,
            )
            synthetic = synthesizer.fit_sample(dataset)
            self.budget_ = synthesizer.budget_
            self._synthetic = synthetic
            return synthetic

        budget = PrivacyBudget(self.epsilon)
        epsilon_partition = self.epsilon * self.partition_fraction
        epsilon_copula = self.epsilon - epsilon_partition
        budget.spend_parallel(epsilon_partition, "partition counts")
        budget.spend_parallel(epsilon_copula, "per-partition DPCopula")

        small_sizes = [schema[j].domain_size for j in small]
        total_cells = int(np.prod(small_sizes))
        if total_cells > _MAX_PARTITIONS:
            raise ValueError(
                f"partitioning on {small} yields {total_cells} cells "
                f"(> {_MAX_PARTITIONS}); reduce the small-domain attribute set"
            )

        small_values = dataset.values[:, small]
        large_schema = schema.subset(large)

        with trace.span("census", cells=total_cells):
            # Vectorized partition census: encode each record's small-domain
            # combination as a flat cell id (C-order, matching the cell
            # enumeration below) and count with one bincount pass instead of
            # one boolean mask per cell.
            cell_ids = np.ravel_multi_index(
                tuple(small_values[:, position] for position in range(len(small))),
                tuple(small_sizes),
            )
            true_counts = np.bincount(cell_ids, minlength=total_cells)

            # One vectorized Laplace draw covers *all* cells (occupied or
            # not — the release pattern must not depend on the data), in the
            # same C-order, so the noise stream is independent of how the
            # per-cell work is later scheduled.
            noise = laplace_noise(
                1.0 / epsilon_partition, size=total_cells, rng=self._rng
            )
            synth_counts = np.rint(true_counts + noise).astype(np.int64)

        # Triage every cell *before* dispatching any work: cells with a
        # non-positive noisy count vanish, cells too sparse to support
        # copula estimation take the cheap uniform fallback inline, and
        # only genuinely fittable cells are handed to the executor — no
        # worker slot is ever spent on a degenerate branch.
        keep = np.flatnonzero(synth_counts > 0)
        if keep.size == 0:
            raise RuntimeError(
                "every partition received a non-positive noisy count; "
                "increase epsilon or partition_fraction"
            )
        min_fit = max(2, self.min_fit_records)
        fit_cells = [int(c) for c in keep if true_counts[c] >= min_fit]
        fallback_cells = [int(c) for c in keep if true_counts[c] < min_fit]

        # Independent child seeds, derived up front in deterministic cell
        # order: the randomness each cell sees depends only on the
        # hybrid's own generator state and the cell id, never on the
        # backend or scheduling order.
        seeds = spawn_seed_sequences(self._rng, keep.size)
        seed_by_cell = {int(c): seeds[i] for i, c in enumerate(keep)}

        sort_order = np.argsort(cell_ids, kind="stable")
        sorted_ids = cell_ids[sort_order]
        large_values_all = dataset.values[:, large]

        tasks = []
        for c in fit_cells:
            lo, hi = np.searchsorted(sorted_ids, [c, c + 1])
            members = sort_order[lo:hi]
            tasks.append(
                (
                    np.ascontiguousarray(large_values_all[members]),
                    int(synth_counts[c]),
                    seed_by_cell[c],
                )
            )
        shared = (
            self._synthesizer_class(),
            epsilon_copula,
            self.k,
            self.margin_publisher,
            self.method_kwargs,
            large_schema,
        )
        try:
            with trace.span(
                "cell_fits", cells=len(tasks), fallback=len(fallback_cells)
            ):
                fitted = self.context.map_tasks(_fit_cell_task, tasks, shared=shared)
        except Exception:
            # A worker exception used to surface as a bare traceback from
            # deep inside the executor; record which stage died (and how
            # many cells were in flight) before propagating.
            _FIT_ERRORS.inc(stage="hybrid_cell_fit")
            _logger.exception(
                "hybrid per-cell fit failed",
                extra={
                    "cells": len(tasks),
                    "backend": self.context.backend,
                    "method": self.method,
                },
            )
            raise

        pieces: List[Dataset] = []
        results = dict(zip(fit_cells, fitted))
        for c in fallback_cells:
            # Utility fallback for (near-)empty cells: uniform values,
            # drawn from the cell's own child generator.
            gen = np.random.default_rng(seed_by_cell[c])
            synth_count = int(synth_counts[c])
            results[c] = np.column_stack(
                [
                    gen.integers(0, a.domain_size, size=synth_count)
                    for a in large_schema
                ]
            )
        with trace.span("assemble", cells=len(results)):
            for c in sorted(results):
                cell = np.unravel_index(c, tuple(small_sizes))
                large_values = results[c]
                synth_count = large_values.shape[0]
                full = np.empty((synth_count, schema.dimensions), dtype=np.int64)
                for position, j in enumerate(small):
                    full[:, j] = cell[position]
                for position, j in enumerate(large):
                    full[:, j] = large_values[:, position]
                pieces.append(Dataset(full, schema))

            combined = concatenate(pieces)
            shuffled = combined.values[self._rng.permutation(combined.n_records)]
            synthetic = Dataset(shuffled, schema)
        self.budget_ = budget
        self._synthetic = synthetic
        return synthetic
