"""Algorithm 3: sampling DP synthetic data from the fitted copula.

Three steps, all pure post-processing of already-private quantities:

1. draw latent vectors from the multivariate Gaussian ``Φ(0, P̃)``
   (Cholesky factorization of the repaired DP correlation matrix);
2. push each coordinate through the standard normal CDF, yielding DP
   pseudo-copula data ``T̃ ∈ [0, 1]^(n × m)`` whose dependence is the
   Gaussian copula with parameter ``P̃``;
3. invert the DP empirical marginal distributions, mapping each uniform
   column back onto its attribute's original domain.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.data.dataset import Dataset, Schema
from repro.stats.copula_math import cholesky_factor
from repro.stats.ecdf import HistogramCDF
from repro.telemetry import trace
from repro.utils import RngLike, as_generator, check_int_at_least, check_matrix_square


class BatchedMarginInverter:
    """All ``m`` inverse-CDF transforms in one ``searchsorted`` call.

    Each margin's CDF lives in ``[0, 1]``; shifting margin ``j``'s CDF
    (and its uniforms) into the band ``[2j, 2j + 1]`` keeps the
    concatenated CDF vector globally sorted, so a single flat
    ``searchsorted`` answers every column of an ``(n, m)`` uniform batch
    at once — replacing ``m`` Python-level ``margin.inverse`` calls with
    one C-level pass.  Subtracting each band's start index recovers the
    per-margin bin, clipped to the margin's domain exactly as
    :meth:`~repro.stats.ecdf.HistogramCDF.inverse` does.
    """

    def __init__(self, margins: Sequence[HistogramCDF]):
        margins = list(margins)
        if not margins:
            raise ValueError("need at least one margin")
        cdfs = [margin.cdf for margin in margins]
        sizes = np.array([cdf.size for cdf in cdfs], dtype=np.int64)
        self._bands = 2.0 * np.arange(len(margins))
        self._flat = np.concatenate(
            [cdf + band for cdf, band in zip(cdfs, self._bands)]
        )
        self._starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
        self._limits = sizes - 1

    def tables(self) -> Dict[str, np.ndarray]:
        """The four lookup arrays, for persistence or shared memory."""
        return {
            "flat": self._flat,
            "bands": self._bands,
            "starts": self._starts,
            "limits": self._limits,
        }

    @classmethod
    def from_tables(
        cls,
        flat: np.ndarray,
        bands: np.ndarray,
        starts: np.ndarray,
        limits: np.ndarray,
    ) -> "BatchedMarginInverter":
        """Rebuild an inverter around precomputed tables without copying.

        The arrays are used as-is (they may be memory-mapped or live in
        shared memory); the result is bitwise equivalent to constructing
        from the margins the tables were derived from.
        """
        self = cls.__new__(cls)
        self._flat = np.asarray(flat, dtype=float)
        self._bands = np.asarray(bands, dtype=float)
        self._starts = np.asarray(starts, dtype=np.int64)
        self._limits = np.asarray(limits, dtype=np.int64)
        return self

    @property
    def n_margins(self) -> int:
        return self._bands.size

    def __call__(self, uniforms: np.ndarray) -> np.ndarray:
        """Map an ``(n, m)`` uniform batch onto the integer domains."""
        uniforms = np.asarray(uniforms, dtype=float)
        if uniforms.ndim != 2 or uniforms.shape[1] != self.n_margins:
            raise ValueError(
                f"expected an (n, {self.n_margins}) uniform batch, got "
                f"shape {uniforms.shape}"
            )
        banded = np.clip(uniforms, 0.0, 1.0) + self._bands
        flat_bins = np.searchsorted(self._flat, banded, side="left")
        local = flat_bins - self._starts
        return np.clip(local, 0, self._limits).astype(np.int64)


def sample_pseudo_copula(
    correlation: np.ndarray,
    n: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Steps 1a–1b of Algorithm 3: uniform data with Gaussian dependence.

    Returns an ``(n, m)`` array in ``(0, 1)`` whose copula is the
    Gaussian copula with the given correlation matrix.
    """
    correlation = check_matrix_square("correlation", correlation)
    check_int_at_least("n", n, 1)
    gen = as_generator(rng)
    m = correlation.shape[0]
    cholesky = cholesky_factor(correlation)
    latent = gen.standard_normal((n, m)) @ cholesky.T
    return sps.norm.cdf(latent)


def sample_synthetic(
    correlation: np.ndarray,
    margins: Sequence[HistogramCDF],
    n: int,
    schema: Schema,
    rng: RngLike = None,
    chunk_size: Optional[int] = None,
) -> Dataset:
    """Algorithm 3 end-to-end: DP synthetic records on the original domain.

    Parameters
    ----------
    correlation:
        The DP correlation matrix ``P̃`` (repaired if needed).
    margins:
        DP marginal distributions ``F̃_j`` (from :class:`DPMargins`).
    n:
        Number of synthetic records to draw.
    schema:
        The output schema (for domain validation).
    chunk_size:
        Draw at most this many records per pass, so sampling millions of
        records never materializes one giant ``(n, m)`` uniforms matrix.
        ``None`` samples in a single pass.  Chunking does not change the
        output: ``standard_normal`` fills C-order rows from one stream,
        so row-chunked draws consume the generator identically.
    """
    margins = list(margins)
    correlation = check_matrix_square("correlation", correlation)
    if len(margins) != correlation.shape[0]:
        raise ValueError(
            f"{len(margins)} margins but correlation is "
            f"{correlation.shape[0]}x{correlation.shape[0]}"
        )
    if len(margins) != schema.dimensions:
        raise ValueError(
            f"{len(margins)} margins but schema has {schema.dimensions} attributes"
        )
    for margin, attribute in zip(margins, schema):
        if margin.domain_size != attribute.domain_size:
            raise ValueError(
                f"margin for {attribute.name!r} covers {margin.domain_size} "
                f"values but the attribute domain has {attribute.domain_size}"
            )
    check_int_at_least("n", n, 1)
    if chunk_size is not None:
        chunk_size = check_int_at_least("chunk_size", chunk_size, 1)
    with trace.span("sampling", n=int(n), m=correlation.shape[0]):
        gen = as_generator(rng)
        m = correlation.shape[0]
        with trace.span("cholesky"):
            cholesky = cholesky_factor(correlation)
        inverter = BatchedMarginInverter(margins)

        step = n if chunk_size is None else chunk_size
        out = np.empty((n, m), dtype=np.int64)
        for start in range(0, n, step):
            stop = min(start + step, n)
            latent = gen.standard_normal((stop - start, m)) @ cholesky.T
            out[start:stop] = inverter(sps.norm.cdf(latent))
        return Dataset(out, schema)
