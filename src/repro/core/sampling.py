"""Algorithm 3: sampling DP synthetic data from the fitted copula.

Three steps, all pure post-processing of already-private quantities:

1. draw latent vectors from the multivariate Gaussian ``Φ(0, P̃)``
   (Cholesky factorization of the repaired DP correlation matrix);
2. push each coordinate through the standard normal CDF, yielding DP
   pseudo-copula data ``T̃ ∈ [0, 1]^(n × m)`` whose dependence is the
   Gaussian copula with parameter ``P̃``;
3. invert the DP empirical marginal distributions, mapping each uniform
   column back onto its attribute's original domain.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.data.dataset import Dataset, Schema
from repro.stats.ecdf import HistogramCDF
from repro.stats.psd_repair import is_positive_definite, make_positive_definite
from repro.utils import RngLike, as_generator, check_int_at_least, check_matrix_square


def sample_pseudo_copula(
    correlation: np.ndarray,
    n: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Steps 1a–1b of Algorithm 3: uniform data with Gaussian dependence.

    Returns an ``(n, m)`` array in ``(0, 1)`` whose copula is the
    Gaussian copula with the given correlation matrix.
    """
    correlation = check_matrix_square("correlation", correlation)
    check_int_at_least("n", n, 1)
    if not is_positive_definite(correlation):
        correlation = make_positive_definite(correlation)
    gen = as_generator(rng)
    m = correlation.shape[0]
    cholesky = np.linalg.cholesky(correlation)
    latent = gen.standard_normal((n, m)) @ cholesky.T
    return sps.norm.cdf(latent)


def sample_synthetic(
    correlation: np.ndarray,
    margins: Sequence[HistogramCDF],
    n: int,
    schema: Schema,
    rng: RngLike = None,
) -> Dataset:
    """Algorithm 3 end-to-end: DP synthetic records on the original domain.

    Parameters
    ----------
    correlation:
        The DP correlation matrix ``P̃`` (repaired if needed).
    margins:
        DP marginal distributions ``F̃_j`` (from :class:`DPMargins`).
    n:
        Number of synthetic records to draw.
    schema:
        The output schema (for domain validation).
    """
    margins = list(margins)
    correlation = check_matrix_square("correlation", correlation)
    if len(margins) != correlation.shape[0]:
        raise ValueError(
            f"{len(margins)} margins but correlation is "
            f"{correlation.shape[0]}x{correlation.shape[0]}"
        )
    if len(margins) != schema.dimensions:
        raise ValueError(
            f"{len(margins)} margins but schema has {schema.dimensions} attributes"
        )
    for margin, attribute in zip(margins, schema):
        if margin.domain_size != attribute.domain_size:
            raise ValueError(
                f"margin for {attribute.name!r} covers {margin.domain_size} "
                f"values but the attribute domain has {attribute.domain_size}"
            )
    uniforms = sample_pseudo_copula(correlation, n, rng)
    columns = [margin.inverse(uniforms[:, j]) for j, margin in enumerate(margins)]
    return Dataset(np.column_stack(columns), schema)
