"""Step 1 of Algorithms 1 and 4: differentially private marginal histograms.

Each attribute's exact marginal histogram is sanitized with a pluggable
1-D publisher (EFPA by default, as in the paper) under a budget of
``ε₁ / m`` per margin; the noisy counts are then turned into
:class:`~repro.stats.ecdf.HistogramCDF` objects that provide the DP
empirical marginal distributions ``F̃_j`` and their inverses ``F̃_j⁻¹``
used by the sampler.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.budget import PrivacyBudget
from repro.histograms.base import HistogramPublisher
from repro.histograms.efpa import EFPAPublisher
from repro.resilience.deadlines import current_deadline
from repro.stats.ecdf import HistogramCDF
from repro.telemetry import trace
from repro.utils import RngLike, as_generator, check_positive


class DPMargins:
    """The collection of DP marginal distributions of a dataset.

    Parameters
    ----------
    publisher:
        1-D histogram sanitizer; the paper's default is EFPA.
    """

    def __init__(self, publisher: Optional[HistogramPublisher] = None):
        self.publisher = publisher if publisher is not None else EFPAPublisher()
        self._cdfs: List[HistogramCDF] = []
        self._noisy_counts: List[np.ndarray] = []

    def fit(
        self,
        dataset: Dataset,
        epsilon1: float,
        rng: RngLike = None,
        budget: Optional[PrivacyBudget] = None,
    ) -> "DPMargins":
        """Publish every margin with budget ``ε₁ / m`` each."""
        check_positive("epsilon1", epsilon1)
        gen = as_generator(rng)
        m = dataset.dimensions
        per_margin = epsilon1 / m
        self._cdfs = []
        self._noisy_counts = []
        deadline = current_deadline()
        for j in range(m):
            if deadline is not None:
                deadline.check(f"margin {dataset.schema[j].name!r}")
            with trace.span(
                "margin",
                attribute=dataset.schema[j].name,
                domain=dataset.schema[j].domain_size,
            ):
                counts = dataset.marginal_counts(j)
                noisy = self.publisher.publish(counts, per_margin, gen)
                if budget is not None:
                    budget.spend(per_margin, f"margin:{dataset.schema[j].name}")
                self._noisy_counts.append(np.asarray(noisy, dtype=float))
                self._cdfs.append(HistogramCDF(noisy))
        return self

    def restore(self, noisy_counts: Sequence[np.ndarray]) -> "DPMargins":
        """Rebuild the margins from previously-released noisy counts.

        Used by checkpoint resume (and released-model loading): the
        counts are already DP releases, so reconstructing the CDFs from
        them is pure post-processing — no budget is spent and no
        generator is consumed.
        """
        self._noisy_counts = [np.asarray(c, dtype=float) for c in noisy_counts]
        self._cdfs = [HistogramCDF(counts) for counts in self._noisy_counts]
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._cdfs)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("DPMargins has not been fitted; call fit() first")

    @property
    def cdfs(self) -> List[HistogramCDF]:
        """The DP empirical marginal distributions ``F̃_j``."""
        self._require_fitted()
        return list(self._cdfs)

    @property
    def noisy_counts(self) -> List[np.ndarray]:
        """Raw sanitized count vectors (before CDF post-processing)."""
        self._require_fitted()
        return [counts.copy() for counts in self._noisy_counts]

    @property
    def dimensions(self) -> int:
        self._require_fitted()
        return len(self._cdfs)

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Map integer-coded records onto DP pseudo-copula data (Eq. 3).

        Applies the midpoint-corrected DP marginal CDFs column-wise.
        """
        self._require_fitted()
        values = np.atleast_2d(np.asarray(values))
        if values.shape[1] != len(self._cdfs):
            raise ValueError(
                f"data has {values.shape[1]} columns, margins have {len(self._cdfs)}"
            )
        return np.column_stack(
            [cdf(values[:, j]) for j, cdf in enumerate(self._cdfs)]
        )

    def inverse_transform(self, uniforms: np.ndarray) -> np.ndarray:
        """Map uniform pseudo-copula data back to the original domains."""
        self._require_fitted()
        uniforms = np.atleast_2d(np.asarray(uniforms, dtype=float))
        if uniforms.shape[1] != len(self._cdfs):
            raise ValueError(
                f"data has {uniforms.shape[1]} columns, margins have {len(self._cdfs)}"
            )
        return np.column_stack(
            [cdf.inverse(uniforms[:, j]) for j, cdf in enumerate(self._cdfs)]
        )

    def estimated_total(self) -> float:
        """Average of the margins' noisy totals: a DP estimate of ``n``."""
        self._require_fitted()
        totals = [max(counts.sum(), 0.0) for counts in self._noisy_counts]
        return float(np.mean(totals))
