"""Resilience: deadlines, retries, durable job journals, fault injection.

The fault-tolerance layer for the fit/serve paths, in four stdlib-only
pieces (see docs/RELIABILITY.md for the operator-facing story):

* :mod:`repro.resilience.deadlines` — wall-clock deadlines with
  *cooperative* cancellation.  A deadline is installed for a scope
  (a whole fit job, one ``map_tasks`` fan-out) and checked between
  units of work on every execution backend, including inside process
  pool workers.
* :mod:`repro.resilience.retry` — exponential-backoff-with-jitter
  retry policies for transient failures (crashed pool workers,
  registry/ledger I/O), with a hard no-retry wall: exceptions that
  represent privacy decisions (:class:`BudgetExhaustedError`) or
  expired deadlines are never retried, and any exception can be
  marked non-retryable at the raise site.
* :mod:`repro.resilience.journal` — the durable fit-job journal.
  Job lifecycle records and per-stage checkpoints (margins →
  correlation) are persisted under the service data directory so a
  restarted ``dpcopula serve`` resumes in-flight jobs — or cleanly
  voids them — instead of losing them (and the ε they charged).
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (``DPCOPULA_FAULTS`` environment variable) used by the
  chaos suite (``tests/resilience/``) to kill workers, delay stages,
  fail I/O and corrupt partial writes on demand.

Layering: this package sits *below* :mod:`repro.parallel` and
:mod:`repro.service` (both import it) and depends only on the
telemetry layer, numpy and the standard library.
"""

from repro.resilience.deadlines import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.resilience.faults import FaultInjected, FaultPlan, inject
from repro.resilience.journal import JobJournal, JobRecord
from repro.resilience.retry import (
    RetryPolicy,
    call_with_retry,
    is_retryable,
    mark_no_retry,
)

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "FaultInjected",
    "FaultPlan",
    "JobJournal",
    "JobRecord",
    "RetryPolicy",
    "call_with_retry",
    "current_deadline",
    "deadline_scope",
    "inject",
    "is_retryable",
    "mark_no_retry",
]
