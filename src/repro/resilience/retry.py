"""Retry policies: exponential backoff with jitter, and a no-retry wall.

Transient faults — a pool worker SIGKILLed by the OOM killer, a ledger
append hitting a momentary I/O error — deserve a bounded number of
retries with exponential backoff.  Privacy decisions do not: once the
accountant has refused a charge (:class:`BudgetExhaustedError`), or a
deadline has expired, retrying cannot make the operation legitimate.
:func:`call_with_retry` encodes both halves:

* the *schedule* — ``base * multiplier**attempt`` capped at ``max_delay``,
  with multiplicative jitter so a fleet of retriers does not stampede;
* the *wall* — :data:`NEVER_RETRY` exception types and exceptions
  marked with :func:`mark_no_retry` at the raise site propagate
  immediately, regardless of the ``retry_on`` classification.

The ε-safety contract (docs/RELIABILITY.md): retries are only ever
wrapped around operations that are either **ε-free** (registry writes,
journal updates) or **bitwise idempotent** (re-running a seeded
computation that re-derives identical noise from identical per-task
seeds, so the retried release is the same release).  The accountant's
charge itself is additionally idempotent by label, so no retry schedule
can double-charge a job.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Type

from repro.dp.budget import BudgetExhaustedError
from repro.resilience.deadlines import DeadlineExceeded, current_deadline
from repro.telemetry import get_logger, metrics
from repro.utils import RngLike, as_generator

__all__ = [
    "NEVER_RETRY",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "call_with_retry",
    "is_retryable",
    "mark_no_retry",
]

_logger = get_logger("resilience.retry")

_RETRIES_TOTAL = metrics.REGISTRY.counter(
    "dpcopula_retries_total",
    "Retried operations after a transient failure (label: operation)",
)

#: Exception classes that typically indicate a transient fault worth
#: retrying: a broken thread/process pool (worker crash) or an OS-level
#: I/O hiccup.
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (BrokenExecutor, OSError)

#: Exception classes that must never be retried, no matter how the
#: caller classified retryable errors.  Budget refusals are privacy
#: decisions; expired deadlines only get worse; interrupts belong to
#: the operator.
NEVER_RETRY: Tuple[Type[BaseException], ...] = (
    BudgetExhaustedError,
    DeadlineExceeded,
    KeyboardInterrupt,
    SystemExit,
)

_NO_RETRY_ATTR = "_dpcopula_no_retry"


def mark_no_retry(exc: BaseException) -> BaseException:
    """Flag ``exc`` so no retry wrapper will ever re-attempt it.

    The raise-site escape hatch for the no-retry wall: code that knows a
    failure is permanent (or that a retry would repeat an ε-spending
    step) marks the exception before raising through a retry wrapper.
    """
    setattr(exc, _NO_RETRY_ATTR, True)
    return exc


def is_retryable(
    exc: BaseException,
    retry_on: Tuple[Type[BaseException], ...] = TRANSIENT_ERRORS,
) -> bool:
    """Whether ``exc`` may be retried under the ``retry_on`` classification."""
    if getattr(exc, _NO_RETRY_ATTR, False):
        return False
    if isinstance(exc, NEVER_RETRY):
        return False
    return isinstance(exc, retry_on)


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential-backoff schedule.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (``1`` disables retrying).
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Backoff growth factor per retry.
    max_delay:
        Cap on any single sleep.
    jitter:
        Multiplicative jitter fraction: each sleep is scaled by a
        uniform draw from ``[1 - jitter, 1 + jitter]``.  ``0`` gives a
        fully deterministic schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 4.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int) -> float:
        """The un-jittered sleep before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.max_delay, self.base_delay * self.multiplier**attempt)

    def delays(self, rng: RngLike = None) -> List[float]:
        """Every sleep the policy would make, jittered with ``rng``.

        Seeding ``rng`` makes the whole schedule deterministic, which is
        how the chaos suite pins retry timing.
        """
        gen = as_generator(rng)
        delays = []
        for attempt in range(self.max_attempts - 1):
            delay = self.backoff(attempt)
            if self.jitter:
                delay *= float(gen.uniform(1.0 - self.jitter, 1.0 + self.jitter))
            delays.append(delay)
        return delays


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    operation: str,
    retry_on: Tuple[Type[BaseException], ...] = TRANSIENT_ERRORS,
    sleep: Callable[[float], None] = time.sleep,
    rng: RngLike = None,
    on_retry: Optional[Callable[[BaseException, int], None]] = None,
) -> Any:
    """Run ``fn`` under ``policy``, retrying transient failures.

    ``fn`` takes no arguments (close over state).  Non-retryable
    exceptions — anything outside ``retry_on``, anything in
    :data:`NEVER_RETRY`, anything marked with :func:`mark_no_retry` —
    propagate immediately.  An ambient deadline (if one is installed)
    is honored: no retry is attempted whose backoff sleep would not fit
    in the remaining budget.
    """
    gen = as_generator(rng) if policy.jitter else None
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except BaseException as exc:
            last = exc
            if not is_retryable(exc, retry_on):
                raise
            if attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.backoff(attempt)
            if gen is not None:
                delay *= float(gen.uniform(1.0 - policy.jitter, 1.0 + policy.jitter))
            deadline = current_deadline()
            if deadline is not None and deadline.remaining() <= delay:
                # Retrying into a dead deadline only delays the failure.
                raise
            _RETRIES_TOTAL.inc(operation=operation)
            _logger.warning(
                "transient failure; retrying",
                extra={
                    "operation": operation,
                    "attempt": attempt + 1,
                    "max_attempts": policy.max_attempts,
                    "delay_seconds": round(delay, 6),
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            if on_retry is not None:
                on_retry(exc, attempt)
            if delay > 0:
                sleep(delay)
    raise last  # pragma: no cover - loop always returns or raises
