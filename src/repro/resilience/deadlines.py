"""Deadlines and cooperative cancellation.

A :class:`Deadline` is a wall-clock budget for a scope of work: a whole
fit job, one HTTP request, one ``map_tasks`` fan-out.  Enforcement is
*cooperative* — code at natural unit-of-work boundaries (between
parallel tasks, between fit stages, between margins) calls
:meth:`Deadline.check`, which raises :class:`DeadlineExceeded` once the
budget is gone.  Nothing is pre-empted mid-computation: the granularity
of cancellation is one task body, which keeps cancellation safe for
code holding locks or file handles.

Deadlines flow two ways:

* **Implicitly** via :func:`deadline_scope` / :func:`current_deadline`
  (a contextvar).  The fit worker installs the job deadline once and
  every ``map_tasks`` call under it picks it up without plumbing.
* **Explicitly across process pools.**  Contextvars do not cross
  process boundaries, so a :class:`Deadline` pickles itself as its
  *remaining* seconds at pickle time and rehydrates in the worker as a
  fresh deadline with that much budget — each worker then enforces the
  same remaining wall-clock budget against its own monotonic clock.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Iterator, Optional

from repro.telemetry import get_logger, metrics

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "current_deadline",
    "deadline_scope",
]

_logger = get_logger("resilience.deadlines")

_DEADLINES_EXCEEDED = metrics.REGISTRY.counter(
    "dpcopula_deadline_exceeded_total",
    "Deadline checks that found the budget exhausted (label: where)",
)


class DeadlineExceeded(RuntimeError):
    """A cooperative cancellation point found its deadline expired."""

    def __init__(self, message: str, overrun: float = 0.0):
        super().__init__(message)
        #: Seconds past the deadline at the moment of the failed check.
        self.overrun = float(overrun)


class Deadline:
    """A fixed amount of wall-clock budget, measured on the monotonic clock.

    Parameters
    ----------
    seconds:
        Budget from *now*.  Must be finite and non-negative; use
        ``None`` semantics (no deadline) by simply not creating one.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: float):
        seconds = float(seconds)
        if not seconds >= 0.0:  # also rejects NaN
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        self._expires_at = time.monotonic() + seconds

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` of wall clock from now."""
        return cls(seconds)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self, what: str = "work") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        overrun = time.monotonic() - self._expires_at
        if overrun >= 0.0:
            _DEADLINES_EXCEEDED.inc(where=what)
            _logger.warning(
                "deadline exceeded",
                extra={"where": what, "overrun_seconds": round(overrun, 6)},
            )
            raise DeadlineExceeded(
                f"deadline exceeded while waiting to run {what} "
                f"({overrun:.3f}s past the budget)",
                overrun=overrun,
            )

    # Pickling ships the *remaining* budget, not the monotonic expiry:
    # monotonic clocks are per-process, so a worker process rebuilds an
    # equivalent deadline against its own clock.  The dispatch latency
    # between pickling and rehydration is forgiven — acceptable slack
    # for cooperative enforcement.
    def __reduce__(self):
        return (Deadline, (self.remaining(),))

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


_CURRENT: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "dpcopula_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline installed for the current context, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the ambient deadline for the ``with`` body.

    ``None`` clears any inherited deadline for the scope (useful for
    work that must not be cancelled, e.g. journal finalization).
    """
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
