"""Deterministic fault injection (the ``DPCOPULA_FAULTS`` harness).

The chaos suite (``tests/resilience/``) needs to make precisely-placed
bad things happen: kill a pool worker, stall a fit stage, fail a ledger
append, tear a checkpoint write in half.  Production code is sprinkled
with cheap named *fault points* — ``faults.inject("parallel.chunk")`` —
that are inert unless the ``DPCOPULA_FAULTS`` environment variable (or
an explicit :func:`configure` call) arms a plan.

Spec grammar (semicolon-separated clauses)::

    DPCOPULA_FAULTS="<site>:<action>[:<value>][:<count>];..."

======== ======================= =====================================
action   value                    effect at the fault point
======== ======================= =====================================
kill     —                        ``SIGKILL`` the *current process*
                                  (simulates an OOM-killed pool worker)
delay    seconds (default 0.05)   sleep, then continue (simulates a
                                  hung stage; pairs with deadlines)
raise    exception name           raise ``OSError``/``RuntimeError``/
         (default FaultInjected)  ``FaultInjected``
truncate keep-fraction in [0,1]   :func:`corrupt_bytes` returns only a
         (default 0.5)            prefix of the payload (torn write)
======== ======================= =====================================

``count`` (default 1) is how many times the clause fires; ``*`` means
every time.  Counts are process-local, which is wrong for pool workers
(every fresh worker process re-arms from the inherited environment and
would fire again).  Setting ``DPCOPULA_FAULTS_LATCH=<dir>`` makes each
firing claim a lock file (``O_EXCL``) in that directory first, so a
clause fires its ``count`` times *globally* across all processes — the
chaos test that SIGKILLs exactly one worker relies on this.

Determinism: fault points fire based only on invocation order and the
latch directory contents — never on timing or randomness — so a fault
schedule replays identically run after run.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry import get_logger, metrics

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULTS_LATCH_ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "configure",
    "corrupt_bytes",
    "inject",
]

_logger = get_logger("resilience.faults")

_FAULTS_TOTAL = metrics.REGISTRY.counter(
    "dpcopula_faults_injected_total",
    "Faults fired by the injection harness (label: site, action)",
)

FAULTS_ENV_VAR = "DPCOPULA_FAULTS"
FAULTS_LATCH_ENV_VAR = "DPCOPULA_FAULTS_LATCH"

_ACTIONS = ("kill", "delay", "raise", "truncate")

_RAISABLE = {
    "FaultInjected": None,  # filled in below FaultInjected's definition
    "OSError": OSError,
    "IOError": OSError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}


class FaultInjected(RuntimeError):
    """The default exception raised by an armed ``raise`` clause."""


_RAISABLE["FaultInjected"] = FaultInjected


@dataclass
class _Clause:
    site: str
    action: str
    value: str
    remaining: Optional[int]  # None means unlimited ("*")
    index: int  # position in the plan, keys the cross-process latch

    def latch_name(self, firing: int) -> str:
        return f"{self.site}.{self.index}.{firing}.latch"


@dataclass
class FaultPlan:
    """A parsed ``DPCOPULA_FAULTS`` spec plus its firing state."""

    spec: str
    clauses: List[_Clause] = field(default_factory=list)
    latch_dir: Optional[str] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @classmethod
    def parse(cls, spec: str, latch_dir: Optional[str] = None) -> "FaultPlan":
        plan = cls(spec=spec, latch_dir=latch_dir)
        for index, raw in enumerate(part for part in spec.split(";") if part.strip()):
            fields = [piece.strip() for piece in raw.split(":")]
            if len(fields) < 2 or len(fields) > 4:
                raise ValueError(
                    f"fault clause {raw!r} is not site:action[:value][:count]"
                )
            site, action = fields[0], fields[1]
            if not site or action not in _ACTIONS:
                raise ValueError(
                    f"fault clause {raw!r}: action must be one of {_ACTIONS}"
                )
            value = fields[2] if len(fields) > 2 else ""
            count_text = fields[3] if len(fields) > 3 else "1"
            if count_text == "*":
                remaining: Optional[int] = None
            else:
                remaining = int(count_text)
                if remaining < 0:
                    raise ValueError(f"fault clause {raw!r}: count must be >= 0")
            plan.clauses.append(_Clause(site, action, value, remaining, index))
        return plan

    def _claim(self, clause: _Clause) -> bool:
        """Decrement the clause's budget; True if this firing is ours.

        With a latch directory the claim is global across processes:
        each firing takes one ``O_EXCL`` lock file, so ``count`` firings
        happen fleet-wide no matter how many worker processes re-parse
        the inherited environment.
        """
        with self._lock:
            if clause.remaining is None:
                pass  # unlimited
            elif clause.remaining <= 0:
                return False
            if self.latch_dir:
                budget = clause.remaining if clause.remaining is not None else 1_000_000
                for firing in range(budget):
                    latch = os.path.join(self.latch_dir, clause.latch_name(firing))
                    try:
                        fd = os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                    except FileExistsError:
                        continue
                    os.close(fd)
                    if clause.remaining is not None:
                        clause.remaining -= 1
                    return True
                if clause.remaining is not None:
                    clause.remaining = 0
                return False
            if clause.remaining is not None:
                clause.remaining -= 1
            return True

    def fire(self, site: str) -> None:
        """Trigger any armed ``kill``/``delay``/``raise`` clause for ``site``."""
        for clause in self.clauses:
            if clause.site != site or clause.action == "truncate":
                continue
            if not self._claim(clause):
                continue
            _FAULTS_TOTAL.inc(site=site, action=clause.action)
            _logger.warning(
                "fault injected",
                extra={"site": site, "action": clause.action, "value": clause.value},
            )
            if clause.action == "delay":
                time.sleep(float(clause.value) if clause.value else 0.05)
            elif clause.action == "raise":
                exc_type = _RAISABLE.get(clause.value or "FaultInjected")
                if exc_type is None:
                    exc_type = FaultInjected
                raise exc_type(f"injected fault at {site}")
            elif clause.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)

    def corrupt(self, site: str, payload: bytes) -> bytes:
        """Apply any armed ``truncate`` clause for ``site`` to ``payload``."""
        for clause in self.clauses:
            if clause.site != site or clause.action != "truncate":
                continue
            if not self._claim(clause):
                continue
            keep = float(clause.value) if clause.value else 0.5
            cut = max(0, min(len(payload), int(len(payload) * keep)))
            _FAULTS_TOTAL.inc(site=site, action=clause.action)
            _logger.warning(
                "fault injected: payload truncated",
                extra={"site": site, "kept_bytes": cut, "of_bytes": len(payload)},
            )
            return payload[:cut]
        return payload


# The active plan is cached against the exact env value that produced
# it, so tests flipping DPCOPULA_FAULTS between cases re-arm correctly
# while steady-state production pays one dict lookup per fault point.
_cached_plan: Optional[FaultPlan] = None
_cached_key: Optional[str] = None
_configured = False
_cache_lock = threading.Lock()


def _active_plan() -> Optional[FaultPlan]:
    global _cached_plan, _cached_key
    if _configured:
        return _cached_plan
    spec = os.environ.get(FAULTS_ENV_VAR, "")
    latch = os.environ.get(FAULTS_LATCH_ENV_VAR) or None
    key = f"{spec}\x00{latch or ''}"
    if key == _cached_key:
        return _cached_plan
    with _cache_lock:
        if key != _cached_key:
            _cached_plan = FaultPlan.parse(spec, latch) if spec.strip() else None
            _cached_key = key
    return _cached_plan


def configure(spec: Optional[str], latch_dir: Optional[str] = None) -> None:
    """Arm (or with ``None`` disarm) a fault plan programmatically.

    Equivalent to setting the environment variables but scoped to this
    process; ``configure(None)`` disarms and returns control to the
    environment variables.
    """
    global _cached_plan, _cached_key, _configured
    with _cache_lock:
        _cached_plan = FaultPlan.parse(spec, latch_dir) if spec else None
        _cached_key = None
        _configured = spec is not None


def inject(site: str) -> None:
    """Fault point: fire any armed kill/delay/raise clause for ``site``.

    A no-op costing one environment read when no plan is armed.
    """
    plan = _active_plan()
    if plan is not None:
        plan.fire(site)


def corrupt_bytes(site: str, payload: bytes) -> bytes:
    """Fault point for writes: possibly truncate ``payload`` (torn write)."""
    plan = _active_plan()
    if plan is not None:
        return plan.corrupt(site, payload)
    return payload
