"""The durable fit-job journal: lifecycle records plus stage checkpoints.

A fit job is seconds-to-minutes of work that has *already charged* the
privacy accountant when it starts computing.  Losing the job to a
process restart would strand that ε — charged but yielding no model —
which is the worst possible failure for a one-shot-budget synthesizer
(the PrivSyn/Gaussian-copula deployment literature stresses exactly
this).  The journal makes jobs durable:

* ``<jobs-dir>/<job_id>.json`` — the job's lifecycle record, rewritten
  atomically on every transition (``queued`` → ``running`` → ``done`` /
  ``failed`` / ``cancelled`` / ``voided``).
* ``<jobs-dir>/<job_id>.<stage>.npz`` — per-stage checkpoints (the DP
  margin counts, the DP correlation matrix).  Stage outputs are
  themselves ε-paid releases, so persisting them leaks nothing beyond
  the release the job was charged for.

On startup the service replays the journal: ``queued``/``running``
jobs are re-enqueued and *resume* — completed stages are reloaded from
their checkpoints instead of recomputed — or are cleanly ``voided``
when resumption is impossible (e.g. the dataset is gone).  A torn
checkpoint (crash mid-write) is detected on load and treated as
absent: the stage recomputes from its per-stage seed, bitwise
identically.

The journal is also the control channel for cancellation: ``dpcopula
jobs --cancel`` (or ``POST /fits/<id>/cancel``) sets a flag in the
record that the running fit polls at stage boundaries.
"""

from __future__ import annotations

import io
import json
import threading
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.resilience import faults
from repro.telemetry import get_logger, metrics

__all__ = ["JobJournal", "JobRecord", "JOB_STATES"]

_logger = get_logger("resilience.journal")

_JOB_STATE = metrics.REGISTRY.gauge(
    "dpcopula_jobs_state",
    "Journaled fit jobs by lifecycle state (label: state)",
)

#: Every lifecycle state a journaled job can be in.  ``voided`` means a
#: restart found the job unresumable (dataset gone, corrupt record) and
#: closed it out explicitly instead of leaving it dangling.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "voided")

_ACTIVE_STATES = ("queued", "running")


@dataclass
class JobRecord:
    """One journaled fit job."""

    job_id: str
    dataset_id: str
    method: str
    epsilon: float
    k: float
    seed: int
    state: str = "queued"
    charged: bool = False
    attempts: int = 0
    stages_done: List[str] = field(default_factory=list)
    stage_computed: Dict[str, int] = field(default_factory=dict)
    cancel_requested: bool = False
    model_id: Optional[str] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "dataset_id": self.dataset_id,
            "method": self.method,
            "epsilon": self.epsilon,
            "k": self.k,
            "seed": self.seed,
            "state": self.state,
            "charged": self.charged,
            "attempts": self.attempts,
            "stages_done": list(self.stages_done),
            "stage_computed": dict(self.stage_computed),
            "cancel_requested": self.cancel_requested,
            "model_id": self.model_id,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(payload["job_id"]),
            dataset_id=str(payload["dataset_id"]),
            method=str(payload["method"]),
            epsilon=float(payload["epsilon"]),
            k=float(payload["k"]),
            seed=int(payload["seed"]),
            state=str(payload.get("state", "queued")),
            charged=bool(payload.get("charged", False)),
            attempts=int(payload.get("attempts", 0)),
            stages_done=[str(s) for s in payload.get("stages_done", [])],
            stage_computed={
                str(k): int(v) for k, v in payload.get("stage_computed", {}).items()
            },
            cancel_requested=bool(payload.get("cancel_requested", False)),
            model_id=payload.get("model_id"),
            error=payload.get("error"),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            updated_at=float(payload.get("updated_at", 0.0)),
        )


class JobJournal:
    """Filesystem journal of fit jobs under one directory.

    All mutations go through a read-modify-write under a process lock
    and land via atomic replace (temp file + fsync + ``os.replace``),
    so a crash at any instant leaves either the old record or the new
    record — never a torn one.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- paths ------------------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def _stage_path(self, job_id: str, stage: str) -> Path:
        return self.directory / f"{job_id}.{stage}.npz"

    # -- lifecycle records ------------------------------------------------

    def create(self, record: JobRecord) -> JobRecord:
        with self._lock:
            path = self._record_path(record.job_id)
            if path.exists():
                raise ValueError(f"job {record.job_id!r} already journaled")
            self._write(record)
        self.refresh_state_gauge()
        return record

    def load(self, job_id: str) -> JobRecord:
        path = self._record_path(job_id)
        if not path.exists():
            raise KeyError(f"no journaled job with id {job_id!r}")
        return JobRecord.from_dict(json.loads(path.read_text()))

    def update(self, job_id: str, **fields: Any) -> JobRecord:
        """Atomically apply ``fields`` to the record and persist it."""
        with self._lock:
            record = self.load(job_id)
            for name, value in fields.items():
                if not hasattr(record, name):
                    raise AttributeError(f"JobRecord has no field {name!r}")
                setattr(record, name, value)
            record.updated_at = time.time()
            self._write(record)
        self.refresh_state_gauge()
        return record

    def mark_stage_computed(self, job_id: str, stage: str) -> JobRecord:
        """Count a stage *computation* (checkpoint loads don't count)."""
        with self._lock:
            record = self.load(job_id)
            record.stage_computed[stage] = record.stage_computed.get(stage, 0) + 1
            record.updated_at = time.time()
            self._write(record)
        return record

    def _write(self, record: JobRecord) -> None:
        payload = (
            json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n"
        ).encode()
        _atomic_write_bytes(self._record_path(record.job_id), payload)

    def delete(self, job_id: str) -> None:
        """Remove a record that never entered the queue (submit refused)."""
        with self._lock:
            try:
                self._record_path(job_id).unlink()
            except FileNotFoundError:
                pass
        self.refresh_state_gauge()

    def list(self) -> List[JobRecord]:
        """All journaled jobs, newest submission first."""
        records = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                records.append(JobRecord.from_dict(json.loads(path.read_text())))
            except (ValueError, KeyError, TypeError):
                _logger.warning(
                    "skipping unreadable job record", extra={"path": str(path)}
                )
        records.sort(key=lambda r: r.submitted_at, reverse=True)
        return records

    def __contains__(self, job_id: str) -> bool:
        return self._record_path(job_id).exists()

    # -- cancellation -----------------------------------------------------

    def request_cancel(self, job_id: str) -> JobRecord:
        """Flag a job for cooperative cancellation.

        Takes effect before the job starts, or at its next stage
        boundary if it is already running.  Finished jobs are left
        untouched (the flag is recorded but has no effect).
        """
        return self.update(job_id, cancel_requested=True)

    def cancel_requested(self, job_id: str) -> bool:
        try:
            return self.load(job_id).cancel_requested
        except KeyError:
            return False

    # -- stage checkpoints ------------------------------------------------

    def save_stage(self, job_id: str, stage: str, arrays: Dict[str, np.ndarray]) -> None:
        """Persist a stage's output arrays as an atomic NPZ checkpoint.

        The serialized payload passes through the ``journal.save_stage``
        fault point, so the chaos suite can simulate a torn write; a
        torn checkpoint is detected by :meth:`load_stage` and treated
        as absent.
        """
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        payload = faults.corrupt_bytes("journal.save_stage", buffer.getvalue())
        _atomic_write_bytes(self._stage_path(job_id, stage), payload)

    def load_stage(self, job_id: str, stage: str) -> Optional[Dict[str, np.ndarray]]:
        """A stage's checkpoint arrays, or ``None`` if absent/corrupt."""
        path = self._stage_path(job_id, stage)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            _logger.warning(
                "discarding corrupt stage checkpoint",
                extra={"path": str(path), "error": f"{type(exc).__name__}: {exc}"},
            )
            return None

    def has_stage_checkpoints(self, job_id: str) -> bool:
        """Whether any persisted stage checkpoint exists for ``job_id``.

        Used by the refund guard: a stage NPZ on disk is a durable DP
        release even if the lifecycle record never got to mention it
        (e.g. a crash tore the record update), so its presence must
        veto a refund regardless of what the record claims.
        """
        return any(self.directory.glob(f"{job_id}.*.npz"))

    def drop_stages(self, job_id: str) -> None:
        """Delete a finished job's checkpoints (the model supersedes them)."""
        for path in self.directory.glob(f"{job_id}.*.npz"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- recovery ---------------------------------------------------------

    def recoverable(self) -> List[JobRecord]:
        """Jobs a restarted service should re-enqueue (oldest first)."""
        active = [r for r in self.list() if r.state in _ACTIVE_STATES]
        active.sort(key=lambda r: r.submitted_at)
        return active

    def void(self, job_id: str, reason: str) -> JobRecord:
        """Close out an unresumable job explicitly."""
        _logger.warning("voiding job", extra={"job_id": job_id, "reason": reason})
        return self.update(job_id, state="voided", error=reason)

    def refresh_state_gauge(self) -> None:
        """Point-in-time census of job states for ``/metrics``."""
        counts = {state: 0 for state in JOB_STATES}
        for record in self.list():
            if record.state in counts:
                counts[record.state] += 1
        for state, count in counts.items():
            _JOB_STATE.set(count, state=state)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    # Imported lazily to keep resilience importable without the service
    # package in scope during partial installs; the helper itself lives
    # with the service's on-disk layout code.
    from repro.service.config import atomic_write_bytes

    atomic_write_bytes(path, payload)
