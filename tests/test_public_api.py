"""The public API surface: everything advertised must import and resolve."""

import importlib

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.conditional",
    "repro.core.convergence",
    "repro.core.copula",
    "repro.core.dpcopula",
    "repro.core.hybrid",
    "repro.core.kendall_matrix",
    "repro.core.margins",
    "repro.core.mle",
    "repro.core.sampling",
    "repro.core.selection",
    "repro.core.streaming",
    "repro.data",
    "repro.data.census",
    "repro.data.dataset",
    "repro.data.synthetic",
    "repro.dp",
    "repro.dp.budget",
    "repro.dp.mechanisms",
    "repro.dp.sensitivity",
    "repro.dp.validation",
    "repro.experiments",
    "repro.experiments.cli",
    "repro.experiments.config",
    "repro.experiments.figures",
    "repro.experiments.plotting",
    "repro.experiments.report",
    "repro.experiments.runner",
    "repro.experiments.tables",
    "repro.histograms",
    "repro.histograms.base",
    "repro.histograms.dpcube",
    "repro.histograms.efpa",
    "repro.histograms.fp",
    "repro.histograms.grid",
    "repro.histograms.hierarchical",
    "repro.histograms.identity",
    "repro.histograms.php",
    "repro.histograms.postprocess",
    "repro.histograms.privelet",
    "repro.histograms.psd",
    "repro.histograms.structurefirst",
    "repro.io",
    "repro.queries",
    "repro.queries.evaluation",
    "repro.queries.metrics",
    "repro.queries.range_query",
    "repro.service",
    "repro.service.accountant",
    "repro.service.app",
    "repro.service.config",
    "repro.service.datasets",
    "repro.service.errors",
    "repro.service.http",
    "repro.service.jobs",
    "repro.service.registry",
    "repro.service.serializers",
    "repro.stats",
    "repro.telemetry",
    "repro.telemetry.logs",
    "repro.telemetry.metrics",
    "repro.telemetry.tracing",
    "repro.stats.copula_math",
    "repro.stats.correlation",
    "repro.stats.distributions",
    "repro.stats.ecdf",
    "repro.stats.goodness_of_fit",
    "repro.stats.kendall",
    "repro.stats.psd_repair",
    "repro.utils",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize(
    "module_name",
    [m for m in PUBLIC_MODULES if "." in m or m == "repro"],
)
def test_all_exports_resolve(module_name):
    """Every name in a module's __all__ must actually exist."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_names():
    for name in [
        "DPCopulaKendall",
        "DPCopulaMLE",
        "DPCopulaHybrid",
        "EvolvingDPCopula",
        "GaussianCopulaModel",
        "TCopulaModel",
        "PrivacyBudget",
        "Dataset",
        "Schema",
        "ReleasedModel",
        "utility_report",
        "random_workload",
        "evaluate_workload",
    ]:
        assert hasattr(repro, name)


def test_every_public_function_has_docstring():
    """Documentation invariant: public callables carry doc comments."""
    import inspect

    undocumented = []
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"
