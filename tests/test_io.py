"""Tests for dataset and model serialization."""

import numpy as np
import pytest

from repro.core.dpcopula import DPCopulaKendall
from repro.io import (
    ReleasedModel,
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)


class TestDatasetCSV:
    def test_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_dataset_csv(small_dataset, path)
        loaded = load_dataset_csv(path)
        assert loaded.schema == small_dataset.schema
        assert (loaded.values == small_dataset.values).all()

    def test_header_embeds_domains(self, small_dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_dataset_csv(small_dataset, path)
        header = path.read_text().splitlines()[0]
        assert header == "x[50],y[40]"

    def test_empty_dataset_roundtrip(self, schema_2d, tmp_path):
        from repro.data.dataset import Dataset

        empty = Dataset(np.empty((0, 2), dtype=np.int64), schema_2d)
        path = tmp_path / "empty.csv"
        save_dataset_csv(empty, path)
        loaded = load_dataset_csv(path)
        assert loaded.n_records == 0
        assert loaded.schema == schema_2d

    def test_rejects_malformed_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_dataset_csv(path)


class TestDatasetNPZ:
    def test_roundtrip(self, synthetic_4d, tmp_path):
        path = tmp_path / "data.npz"
        save_dataset_npz(synthetic_4d, path)
        loaded = load_dataset_npz(path)
        assert loaded.schema == synthetic_4d.schema
        assert (loaded.values == synthetic_4d.values).all()

    def test_preserves_attribute_names(self, mixed_schema_dataset, tmp_path):
        path = tmp_path / "mixed.npz"
        save_dataset_npz(mixed_schema_dataset, path)
        loaded = load_dataset_npz(path)
        assert loaded.schema.names == ["gender", "flag", "age", "income"]


class TestReleasedModel:
    def test_from_synthesizer_and_sample(self, synthetic_4d):
        synthesizer = DPCopulaKendall(epsilon=1.0, rng=0).fit(synthetic_4d)
        model = ReleasedModel.from_synthesizer(synthesizer)
        sample = model.sample(500, rng=1)
        assert sample.n_records == 500
        assert sample.schema == synthetic_4d.schema

    def test_default_sample_size_is_original_n(self, synthetic_4d):
        synthesizer = DPCopulaKendall(epsilon=1.0, rng=0).fit(synthetic_4d)
        model = ReleasedModel.from_synthesizer(synthesizer)
        assert model.sample(rng=2).n_records == synthetic_4d.n_records

    def test_save_load_roundtrip(self, synthetic_4d, tmp_path):
        synthesizer = DPCopulaKendall(epsilon=0.7, rng=0).fit(synthetic_4d)
        model = ReleasedModel.from_synthesizer(synthesizer)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = ReleasedModel.load(path)
        assert loaded.epsilon == pytest.approx(0.7)
        assert loaded.n_records == synthetic_4d.n_records
        assert np.allclose(loaded.correlation, model.correlation)
        for a, b in zip(loaded.margin_counts, model.margin_counts):
            assert np.allclose(a, b)

    def test_loaded_model_samples_same_distribution(self, synthetic_4d, tmp_path):
        synthesizer = DPCopulaKendall(epsilon=2.0, rng=0).fit(synthetic_4d)
        model = ReleasedModel.from_synthesizer(synthesizer)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = ReleasedModel.load(path)
        # Same seed -> identical samples (deterministic post-processing).
        a = model.sample(300, rng=5).values
        b = loaded.sample(300, rng=5).values
        assert (a == b).all()

    def test_rejects_unfitted_synthesizer(self):
        with pytest.raises(ValueError):
            ReleasedModel.from_synthesizer(DPCopulaKendall(epsilon=1.0))

    def test_rejects_margin_count_mismatch(self, schema_2d):
        with pytest.raises(ValueError):
            ReleasedModel(
                margin_counts=[np.ones(50)],
                correlation=np.eye(2),
                schema=schema_2d,
                n_records=10,
                epsilon=1.0,
            )


class TestModelFormatVersion:
    @staticmethod
    def _model(schema_2d):
        return ReleasedModel(
            margin_counts=[np.ones(50), np.ones(40)],
            correlation=np.eye(2),
            schema=schema_2d,
            n_records=10,
            epsilon=1.0,
        )

    def test_save_embeds_current_version(self, schema_2d, tmp_path):
        import json

        from repro.io import MODEL_FORMAT_VERSION

        path = tmp_path / "model.npz"
        self._model(schema_2d).save(path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
        assert meta["format_version"] == MODEL_FORMAT_VERSION

    def test_legacy_unversioned_file_still_loads(self, schema_2d, tmp_path):
        import json

        path = tmp_path / "legacy.npz"
        self._model(schema_2d).save(path)
        # Rewrite the meta without a version, as pre-versioning builds did.
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
            meta = json.loads(str(archive["meta"]))
        del meta["format_version"]
        payload["meta"] = np.array(json.dumps(meta))
        np.savez_compressed(path, **payload)
        loaded = ReleasedModel.load(path)
        assert loaded.n_records == 10

    def test_unknown_version_is_a_clear_error(self, schema_2d, tmp_path):
        import json

        path = tmp_path / "future.npz"
        self._model(schema_2d).save(path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
            meta = json.loads(str(archive["meta"]))
        meta["format_version"] = 99
        payload["meta"] = np.array(json.dumps(meta))
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="format version 99"):
            ReleasedModel.load(path)

    def test_save_accepts_file_object(self, schema_2d):
        import io as stdlib_io

        buffer = stdlib_io.BytesIO()
        self._model(schema_2d).save(buffer)
        buffer.seek(0)
        loaded = ReleasedModel.load(buffer)
        assert loaded.schema == schema_2d
