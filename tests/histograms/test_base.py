"""Tests for the shared histogram interfaces."""

import numpy as np
import pytest

from repro.histograms.base import DenseNoisyHistogram, validate_ranges


class TestValidateRanges:
    def test_clips_to_domain(self):
        out = validate_ranges([(-5, 100)], [10])
        assert out == ((0, 9),)

    def test_marks_disjoint_as_empty(self):
        out = validate_ranges([(20, 30)], [10])
        low, high = out[0]
        assert high < low

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            validate_ranges([(0, 1)], [10, 10])


class TestDenseNoisyHistogram:
    def test_range_count_sums_rectangle(self):
        counts = np.arange(12, dtype=float).reshape(3, 4)
        histogram = DenseNoisyHistogram(counts)
        assert histogram.range_count([(0, 1), (1, 2)]) == pytest.approx(
            counts[0:2, 1:3].sum()
        )

    def test_full_domain_equals_total(self):
        counts = np.random.default_rng(0).uniform(0, 5, size=(5, 6))
        histogram = DenseNoisyHistogram(counts)
        assert histogram.range_count([(0, 4), (0, 5)]) == pytest.approx(
            histogram.total
        )

    def test_empty_range_is_zero(self):
        histogram = DenseNoisyHistogram(np.ones((4, 4)))
        assert histogram.range_count([(2, 1), (0, 3)]) == 0.0

    def test_out_of_domain_clipped(self):
        histogram = DenseNoisyHistogram(np.ones(5))
        assert histogram.range_count([(-10, 10)]) == pytest.approx(5.0)

    def test_single_cell(self):
        counts = np.arange(9, dtype=float).reshape(3, 3)
        histogram = DenseNoisyHistogram(counts)
        assert histogram.range_count([(1, 1), (2, 2)]) == pytest.approx(5.0)

    def test_nonnegative_clips(self):
        histogram = DenseNoisyHistogram(np.array([-2.0, 3.0]))
        clipped = histogram.nonnegative()
        assert clipped.counts[0] == 0.0
        assert histogram.counts[0] == -2.0  # original untouched

    def test_dimensions(self):
        assert DenseNoisyHistogram(np.ones((2, 3, 4))).dimensions == 3

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            DenseNoisyHistogram(np.float64(3.0))
