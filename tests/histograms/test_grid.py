"""Tests for the UG/AG 2-D grid baselines (Qardaji et al.)."""

import numpy as np
import pytest

from repro.data.dataset import Attribute, Dataset, Schema
from repro.histograms.grid import (
    AdaptiveGridPublisher,
    UniformGridPublisher,
    _edges,
)


@pytest.fixture
def points_2d(rng):
    schema = Schema([Attribute("x", 400), Attribute("y", 400)])
    # Clustered data: AG should subdivide the hot region.
    hot = rng.integers(0, 50, size=(3000, 2))
    cold = rng.integers(0, 400, size=(1000, 2))
    return Dataset(np.vstack([hot, cold]), schema)


class TestEdges:
    def test_covers_domain(self):
        edges = _edges(100, 7)
        assert edges[0] == 0 and edges[-1] == 100

    def test_cells_capped_by_domain(self):
        edges = _edges(3, 10)
        assert len(edges) - 1 <= 3


class TestUniformGrid:
    def test_grid_size_rule(self):
        publisher = UniformGridPublisher(c=10.0)
        assert publisher.choose_grid_size(4000, 1.0) == 20

    def test_explicit_grid_size(self):
        publisher = UniformGridPublisher(grid_size=5)
        assert publisher.choose_grid_size(10**6, 1.0) == 5

    def test_total_roughly_preserved(self, points_2d):
        grid = UniformGridPublisher().publish(points_2d, 2.0, rng=0)
        full = [(0, 399), (0, 399)]
        assert grid.range_count(full) == pytest.approx(
            points_2d.n_records, rel=0.2
        )

    def test_hot_region_detected(self, points_2d):
        grid = UniformGridPublisher().publish(points_2d, 2.0, rng=1)
        hot = grid.range_count([(0, 49), (0, 49)])
        cold = grid.range_count([(350, 399), (350, 399)])
        assert hot > cold * 3

    def test_disjoint_query_zero(self, points_2d):
        grid = UniformGridPublisher().publish(points_2d, 1.0, rng=2)
        assert grid.range_count([(500, 600), (0, 399)]) == 0.0

    def test_rejects_non_2d(self, synthetic_4d):
        with pytest.raises(ValueError):
            UniformGridPublisher().publish(synthetic_4d, 1.0)


class TestAdaptiveGrid:
    def test_subdivides_heavy_cells(self, points_2d):
        grid = AdaptiveGridPublisher().publish(points_2d, 2.0, rng=3)
        assert any(cell.child is not None for cell in grid.cells)

    def test_light_cells_not_subdivided(self, points_2d):
        grid = AdaptiveGridPublisher(
            subdivide_threshold=10**9
        ).publish(points_2d, 2.0, rng=4)
        assert all(cell.child is None for cell in grid.cells)

    def test_total_roughly_preserved(self, points_2d):
        grid = AdaptiveGridPublisher().publish(points_2d, 2.0, rng=5)
        full = [(0, 399), (0, 399)]
        assert grid.range_count(full) == pytest.approx(
            points_2d.n_records, rel=0.25
        )

    def test_beats_coarse_uniform_grid_on_concentrated_mass(self, rng):
        """AG's level-2 refinement resolves density variation *inside* a
        coarse cell, which a plain uniform grid spreads uniformly."""
        schema = Schema([Attribute("x", 400), Attribute("y", 400)])
        hot = rng.integers(0, 25, size=(3000, 2))  # tight cluster
        cold = rng.integers(0, 400, size=(500, 2))
        data = Dataset(np.vstack([hot, cold]), schema)
        query = [(0, 9), (0, 9)]
        truth = float(
            ((data.column(0) <= 9) & (data.column(1) <= 9)).sum()
        )
        ag_errors, ug_errors = [], []
        for seed in range(8):
            ag = AdaptiveGridPublisher().publish(data, 1.0, rng=seed)
            ug = UniformGridPublisher(grid_size=4).publish(
                data, 1.0, rng=seed + 50
            )
            ag_errors.append(abs(ag.range_count(query) - truth))
            ug_errors.append(abs(ug.range_count(query) - truth))
        assert np.mean(ag_errors) < np.mean(ug_errors)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveGridPublisher(level1_fraction=1.0)
        with pytest.raises(ValueError):
            AdaptiveGridPublisher(c=0.0)

    def test_rejects_non_2d(self, synthetic_4d):
        with pytest.raises(ValueError):
            AdaptiveGridPublisher().publish(synthetic_4d, 1.0)
