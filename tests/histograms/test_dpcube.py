"""Tests for the DPCube two-phase kd-partitioning baseline."""

import numpy as np
import pytest

from repro.histograms.dpcube import DPCubePublisher


def _blocky_counts():
    """A 2-D histogram with two homogeneous regions."""
    counts = np.zeros((16, 16))
    counts[:8, :] = 20.0
    counts[8:, :] = 2.0
    return counts


class TestDPCubePublisher:
    def test_returns_answerer_with_input_shape(self):
        histogram = DPCubePublisher().publish(_blocky_counts(), 1.0, rng=0)
        assert histogram.shape == (16, 16)

    def test_total_roughly_preserved(self):
        counts = _blocky_counts()
        histogram = DPCubePublisher().publish(counts, 2.0, rng=1)
        assert histogram.total == pytest.approx(counts.sum(), rel=0.15)

    def test_homogeneous_regions_recovered_at_high_epsilon(self):
        counts = _blocky_counts()
        histogram = DPCubePublisher(max_depth=6).publish(counts, 1e3, rng=2)
        estimate = histogram.counts
        assert np.abs(estimate[:8, :] - 20.0).max() < 2.0
        assert np.abs(estimate[8:, :] - 2.0).max() < 2.0

    def test_range_queries(self):
        counts = _blocky_counts()
        histogram = DPCubePublisher().publish(counts, 5.0, rng=3)
        answer = histogram.range_count([(0, 7), (0, 15)])
        assert answer == pytest.approx(counts[:8, :].sum(), rel=0.2)

    def test_phase_blending_beats_phase1_alone_on_ranges(self):
        """The phase-2 partition counts should sharpen wide-range answers
        relative to the raw phase-1 cell noise."""
        from repro.histograms.identity import IdentityPublisher

        counts = np.zeros((32, 32))
        epsilon = 0.5
        dpcube_errors, identity_errors = [], []
        for seed in range(10):
            cube = DPCubePublisher(max_depth=4).publish(counts, epsilon, rng=seed)
            flat = IdentityPublisher().publish_dense(counts, epsilon, rng=seed + 100)
            query = [(0, 27), (0, 27)]
            dpcube_errors.append(abs(cube.range_count(query)))
            identity_errors.append(abs(flat.range_count(query)))
        assert np.mean(dpcube_errors) < np.mean(identity_errors)

    def test_max_depth_limits_partitions(self):
        counts = np.random.default_rng(4).uniform(0, 50, size=64)
        histogram = DPCubePublisher(max_depth=2, homogeneity_threshold=0.0).publish(
            counts, 10.0, rng=5
        )
        # depth 2 -> at most 4 partitions -> at most 4 distinct averages
        # (plus phase blending keeps them piecewise constant).
        assert np.unique(np.round(histogram.counts, 4)).size <= 4

    def test_1d_input(self):
        counts = np.random.default_rng(6).uniform(0, 10, size=50)
        histogram = DPCubePublisher().publish(counts, 1.0, rng=7)
        assert histogram.shape == (50,)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DPCubePublisher(phase1_fraction=0.0)
        with pytest.raises(ValueError):
            DPCubePublisher(max_depth=0)
        with pytest.raises(ValueError):
            DPCubePublisher(min_cells=0)

    def test_publish_dense_clips(self):
        histogram = DPCubePublisher().publish_dense(
            np.zeros((8, 8)), 0.2, rng=8
        )
        assert (histogram.counts >= 0).all()
