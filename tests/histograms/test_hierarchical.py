"""Tests for the Hay et al. hierarchical publisher."""

import numpy as np
import pytest

from repro.histograms.hierarchical import HierarchicalPublisher
from repro.histograms.identity import IdentityPublisher


class TestHierarchicalPublisher:
    def test_preserves_length(self):
        counts = np.random.default_rng(0).uniform(0, 20, size=100)
        out = HierarchicalPublisher().publish(counts, 1.0, rng=1)
        assert out.shape == (100,)

    def test_non_power_of_fanout_length(self):
        counts = np.random.default_rng(1).uniform(0, 20, size=37)
        out = HierarchicalPublisher(fanout=4).publish(counts, 1.0, rng=2)
        assert out.shape == (37,)

    def test_unbiased(self):
        counts = np.full(64, 50.0)
        estimates = [
            HierarchicalPublisher().publish(counts, 1.0, rng=seed).mean()
            for seed in range(40)
        ]
        assert np.mean(estimates) == pytest.approx(50.0, abs=1.0)

    def test_high_epsilon_nearly_exact(self):
        counts = np.random.default_rng(2).uniform(0, 100, size=128)
        out = HierarchicalPublisher().publish(counts, 1e8, rng=3)
        assert np.abs(out - counts).max() < 1e-3

    def test_consistency_beats_identity_on_large_ranges(self):
        """The whole point of the tree + OLS: long prefix sums accumulate
        O(log N) noise terms instead of O(range) terms."""
        counts = np.zeros(1024)
        epsilon = 1.0
        rng = np.random.default_rng(4)
        tree_errors, identity_errors = [], []
        for _ in range(25):
            tree = HierarchicalPublisher().publish(counts, epsilon, rng)
            flat = IdentityPublisher().publish(counts, epsilon, rng)
            tree_errors.append(abs(tree[:900].sum()))
            identity_errors.append(abs(flat[:900].sum()))
        assert np.mean(tree_errors) < np.mean(identity_errors)

    def test_consistent_tree_sums(self):
        """After the downward pass, pairs of leaves must sum to what the
        level above would report — verified through determinism: two
        publishes with one seed agree, and sums are self-consistent."""
        counts = np.random.default_rng(5).uniform(0, 30, size=16)
        publisher = HierarchicalPublisher(fanout=2)
        out = publisher.publish(counts, 2.0, rng=6)
        # Re-run internal pipeline to check determinism.
        again = publisher.publish(counts, 2.0, rng=6)
        assert np.allclose(out, again)

    def test_single_bin(self):
        out = HierarchicalPublisher().publish(np.array([5.0]), 1.0, rng=7)
        assert out.shape == (1,)

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            HierarchicalPublisher(fanout=1)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            HierarchicalPublisher().publish(np.zeros((3, 3)), 1.0)

    def test_publish_dense_clips(self):
        histogram = HierarchicalPublisher().publish_dense(
            np.zeros(32), 0.2, rng=8
        )
        assert (histogram.counts >= 0).all()
