"""Tests for privacy-free post-processing helpers."""

import numpy as np
import pytest

from repro.histograms.postprocess import (
    clip_nonnegative,
    consistency_by_averaging,
    isotonic_cdf,
    rescale_to_total,
    round_to_integers,
)


class TestClipNonnegative:
    def test_clips(self):
        out = clip_nonnegative(np.array([-1.0, 0.0, 2.5]))
        assert (out == np.array([0.0, 0.0, 2.5])).all()


class TestRoundToIntegers:
    def test_rounds_and_clips(self):
        out = round_to_integers(np.array([-0.7, 1.4, 2.6]))
        assert out.dtype == np.int64
        assert (out == np.array([0, 1, 3])).all()


class TestRescaleToTotal:
    def test_scales(self):
        out = rescale_to_total(np.array([1.0, 3.0]), 8.0)
        assert out.sum() == pytest.approx(8.0)
        assert out[1] / out[0] == pytest.approx(3.0)

    def test_zero_counts_fall_back_to_uniform(self):
        out = rescale_to_total(np.array([-1.0, -2.0]), 10.0)
        assert np.allclose(out, 5.0)

    def test_negative_target_clamped(self):
        out = rescale_to_total(np.array([1.0, 1.0]), -5.0)
        assert out.sum() == pytest.approx(0.0)


class TestIsotonicCDF:
    def test_monotone_ending_at_one(self):
        cdf = isotonic_cdf(np.array([3.0, -1.0, 2.0]))
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == 1.0

    def test_all_zero_input(self):
        cdf = isotonic_cdf(np.zeros(4))
        assert np.allclose(cdf, [0.25, 0.5, 0.75, 1.0])


class TestConsistencyByAveraging:
    def test_children_sum_to_parent(self):
        children = consistency_by_averaging(100.0, np.array([40.0, 50.0]))
        assert children.sum() == pytest.approx(100.0)

    def test_discrepancy_spread_equally(self):
        children = consistency_by_averaging(12.0, np.array([5.0, 5.0]))
        assert np.allclose(children, [6.0, 6.0])

    def test_rejects_no_children(self):
        with pytest.raises(ValueError):
            consistency_by_averaging(1.0, np.array([]))
