"""Tests for the EFPA (lossy spectral compression) publisher."""

import numpy as np
import pytest

from repro.histograms.efpa import EFPAPublisher


def _smooth_histogram(n=256, scale=1000.0):
    x = np.linspace(0, 4 * np.pi, n)
    return scale * (2.0 + np.sin(x) + 0.5 * np.cos(3 * x))


class TestEFPAPublisher:
    def test_preserves_length(self):
        out = EFPAPublisher().publish(_smooth_histogram(), 1.0, rng=0)
        assert out.size == 256

    def test_total_approximately_preserved(self):
        counts = _smooth_histogram()
        out = EFPAPublisher().publish(counts, 1.0, rng=0)
        assert out.sum() == pytest.approx(counts.sum(), rel=0.05)

    def test_smooth_histogram_beats_identity_at_low_epsilon(self):
        """EFPA's raison d'etre: compress smooth shapes, spend noise on
        few coefficients.  On a highly compressible histogram (almost all
        spectral energy in <= 4 coefficients) at small epsilon its L2
        error should beat Laplace-per-bin."""
        from repro.histograms.identity import IdentityPublisher

        n = 512
        grid = np.arange(n)
        # A pure low-order DCT-II mode: the spectrum is exactly two
        # coefficients, so truncation error vanishes for k >= 4.
        counts = 1000.0 + 300.0 * np.cos(np.pi * (grid + 0.5) * 3 / n)
        epsilon = 0.05
        rng = np.random.default_rng(1)
        efpa_err, ident_err = [], []
        for _ in range(10):
            efpa_err.append(
                np.linalg.norm(EFPAPublisher().publish(counts, epsilon, rng) - counts)
            )
            ident_err.append(
                np.linalg.norm(
                    IdentityPublisher().publish(counts, epsilon, rng) - counts
                )
            )
        assert np.mean(efpa_err) < np.mean(ident_err)

    def test_single_bin_histogram(self):
        out = EFPAPublisher().publish(np.array([42.0]), 1.0, rng=0)
        assert out.size == 1

    def test_high_epsilon_reconstruction_accurate(self):
        counts = _smooth_histogram(n=128)
        out = EFPAPublisher().publish(counts, 1e6, rng=0)
        # With negligible noise the only loss is truncation, which the
        # k-selection should drive near zero.
        assert np.abs(out - counts).max() < counts.max() * 0.05

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            EFPAPublisher().publish(np.zeros((3, 3)), 1.0)

    def test_rejects_bad_selection_fraction(self):
        with pytest.raises(ValueError):
            EFPAPublisher(selection_fraction=1.0)

    def test_publish_dense_clips_by_default(self):
        counts = np.zeros(64)
        histogram = EFPAPublisher().publish_dense(counts, 0.1, rng=0)
        assert (histogram.counts >= 0).all()

    def test_deterministic_given_seed(self):
        counts = _smooth_histogram(128)
        a = EFPAPublisher().publish(counts, 1.0, rng=7)
        b = EFPAPublisher().publish(counts, 1.0, rng=7)
        assert np.allclose(a, b)
