"""Tests for the Privelet wavelet publisher, including transform properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histograms.privelet import (
    PriveletPublisher,
    haar_transform,
    haar_weights,
    inverse_haar_transform,
)


class TestHaarTransform:
    def test_constant_vector_has_only_average(self):
        out = haar_transform(np.full(8, 5.0))
        assert out[0] == pytest.approx(5.0)
        assert np.allclose(out[1:], 0.0)

    def test_known_small_case(self):
        out = haar_transform(np.array([4.0, 2.0, 6.0, 8.0]))
        # average = 5; coarse detail = (3 - 7)/2 = -2; fine = (1, -1).
        assert out[0] == pytest.approx(5.0)
        assert out[1] == pytest.approx(-2.0)
        assert out[2] == pytest.approx(1.0)
        assert out[3] == pytest.approx(-1.0)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=64,
        ).filter(lambda xs: (len(xs) & (len(xs) - 1)) == 0)
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, values):
        arr = np.array(values)
        assert np.allclose(inverse_haar_transform(haar_transform(arr)), arr)

    def test_batched_matches_loop(self):
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((5, 16))
        batched = haar_transform(batch)
        for i in range(5):
            assert np.allclose(batched[i], haar_transform(batch[i]))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            haar_transform(np.zeros(6))
        with pytest.raises(ValueError):
            inverse_haar_transform(np.zeros(6))

    def test_single_record_coefficient_changes(self):
        """Adding one unit to one leaf moves each affected coefficient by
        exactly 1/weight — the generalized-sensitivity invariant."""
        n = 16
        weights = haar_weights(n)
        for leaf in (0, 7, 15):
            delta = np.zeros(n)
            delta[leaf] = 1.0
            coeffs = haar_transform(delta)
            affected = np.nonzero(np.abs(coeffs) > 1e-12)[0]
            # Exactly log2(n) details + the average coefficient.
            assert affected.size == int(np.log2(n)) + 1
            contributions = np.abs(coeffs[affected]) * weights[affected]
            assert np.allclose(contributions, 1.0)


class TestHaarWeights:
    def test_average_weight_is_n(self):
        assert haar_weights(8)[0] == 8.0

    def test_total_sensitivity_is_h_plus_one(self):
        n = 32
        weights = haar_weights(n)
        delta = np.zeros(n)
        delta[11] = 1.0
        coeffs = haar_transform(delta)
        assert np.sum(np.abs(coeffs) * weights) == pytest.approx(np.log2(n) + 1)


class TestPriveletPublisher:
    def test_preserves_shape_with_padding(self):
        counts = np.random.default_rng(0).uniform(0, 10, size=(5, 6))
        out = PriveletPublisher().publish(counts, 1.0, rng=1)
        assert out.shape == (5, 6)

    def test_unbiased_total(self):
        counts = np.full(64, 100.0)
        totals = [
            PriveletPublisher().publish(counts, 1.0, rng=seed).sum()
            for seed in range(30)
        ]
        assert np.mean(totals) == pytest.approx(6400.0, rel=0.02)

    def test_high_epsilon_nearly_exact(self):
        counts = np.random.default_rng(2).uniform(0, 50, size=(8, 8))
        out = PriveletPublisher().publish(counts, 1e9, rng=3)
        assert np.abs(out - counts).max() < 1e-3

    def test_range_query_noise_beats_identity_on_large_ranges(self):
        """The wavelet's polylog range-noise property: on a wide range
        query, Privelet's error should beat per-bin Laplace noise."""
        from repro.histograms.identity import IdentityPublisher

        counts = np.zeros(1024)
        epsilon = 1.0
        rng = np.random.default_rng(4)
        privelet_errs, identity_errs = [], []
        for _ in range(20):
            p = PriveletPublisher().publish(counts, epsilon, rng)
            i = IdentityPublisher().publish(counts, epsilon, rng)
            privelet_errs.append(abs(p[100:900].sum()))
            identity_errs.append(abs(i[100:900].sum()))
        assert np.mean(privelet_errs) < np.mean(identity_errs)

    def test_3d_input(self):
        counts = np.ones((4, 4, 4))
        out = PriveletPublisher().publish(counts, 5.0, rng=5)
        assert out.shape == (4, 4, 4)
