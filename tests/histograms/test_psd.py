"""Tests for the PSD (KD-hybrid spatial decomposition) baseline."""

import numpy as np
import pytest

from repro.data.dataset import Attribute, Dataset, Schema
from repro.histograms.psd import PSDNode, PSDPublisher, PSDTree, _overlap


class TestOverlap:
    def test_contained(self):
        volume, contained, disjoint = _overlap(((0, 9), (0, 9)), [(0, 9), (0, 9)])
        assert contained and not disjoint
        assert volume == 100.0

    def test_partial(self):
        volume, contained, disjoint = _overlap(((0, 9),), [(5, 20)])
        assert not contained and not disjoint
        assert volume == 5.0

    def test_disjoint(self):
        _, _, disjoint = _overlap(((0, 9),), [(10, 20)])
        assert disjoint


class TestPSDPublisher:
    def test_tree_has_expected_height(self, small_dataset):
        tree = PSDPublisher(height=4).publish(small_dataset, 1.0, rng=0)
        depth = 0
        node = tree.root
        while node.children:
            node = node.children[0]
            depth += 1
        assert depth == 4

    def test_total_count_close_to_n(self, small_dataset):
        tree = PSDPublisher(height=5).publish(small_dataset, 5.0, rng=1)
        full = [(0, a.domain_size - 1) for a in small_dataset.schema]
        assert tree.range_count(full) == pytest.approx(
            small_dataset.n_records, rel=0.25
        )

    def test_accuracy_at_high_epsilon(self, small_dataset):
        tree = PSDPublisher(height=6).publish(small_dataset, 1e4, rng=2)
        query = [(0, 24), (0, 39)]
        truth = int(
            ((small_dataset.column(0) <= 24)).sum()
        )
        assert tree.range_count(query) == pytest.approx(truth, rel=0.1)

    def test_disjoint_query_zero(self, small_dataset):
        tree = PSDPublisher(height=3).publish(small_dataset, 1.0, rng=3)
        assert tree.range_count([(60, 70), (0, 39)]) == 0.0

    def test_handles_empty_regions(self, schema_2d):
        # All records in one corner: most nodes are empty.
        values = np.zeros((100, 2), dtype=int)
        dataset = Dataset(values, schema_2d)
        tree = PSDPublisher(height=4).publish(dataset, 1.0, rng=4)
        assert tree.node_count() > 1

    def test_switch_level_zero_uses_midpoints_only(self, small_dataset):
        tree = PSDPublisher(height=3, switch_level=0).publish(
            small_dataset, 1.0, rng=5
        )
        # Midpoint splits: root's children split axis 0 at (0+49-1)//2=24.
        left_box = tree.root.children[0].box
        assert left_box[0] == (0, 24)

    def test_domain_size_independence(self):
        """PSD consumes points, so a huge domain is no obstacle."""
        schema = Schema([Attribute("a", 10**6), Attribute("b", 10**6)])
        rng = np.random.default_rng(6)
        values = rng.integers(0, 10**6, size=(500, 2))
        dataset = Dataset(values, schema)
        tree = PSDPublisher(height=6).publish(dataset, 1.0, rng=7)
        assert tree.range_count([(0, 10**6 - 1)] * 2) > 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PSDPublisher(height=0)
        with pytest.raises(ValueError):
            PSDPublisher(height=4, switch_level=9)
        with pytest.raises(ValueError):
            PSDPublisher(median_fraction=1.0)

    def test_private_median_splits_near_true_median(self, rng):
        """With ample budget the exponential mechanism should pick a
        split close to the true median."""
        schema = Schema([Attribute("x", 1000), Attribute("y", 2)])
        x = np.sort(rng.integers(0, 1000, size=2000))
        values = np.column_stack([x, np.zeros(2000, dtype=int)])
        dataset = Dataset(values, schema)
        publisher = PSDPublisher(height=1, switch_level=1, median_fraction=0.9)
        tree = publisher.publish(dataset, 100.0, rng=8)
        split_high = tree.root.children[0].box[0][1]
        true_median = int(np.median(x))
        assert abs(split_high - true_median) < 60


class TestPSDTreeAnswering:
    def test_uniformity_assumption_in_partial_leaf(self):
        leaf = PSDNode(box=((0, 9),), noisy_count=100.0)
        tree = PSDTree(leaf, dimensions=1)
        # Query covers 3 of 10 cells: uniform share is 30.
        assert tree.range_count([(0, 2)]) == pytest.approx(30.0)

    def test_negative_counts_clipped_in_answers(self):
        leaf = PSDNode(box=((0, 9),), noisy_count=-50.0)
        tree = PSDTree(leaf, dimensions=1)
        assert tree.range_count([(0, 9)]) == 0.0

    def test_internal_node_recursion(self):
        left = PSDNode(box=((0, 4),), noisy_count=40.0)
        right = PSDNode(box=((5, 9),), noisy_count=60.0)
        root = PSDNode(box=((0, 9),), noisy_count=95.0, children=[left, right])
        tree = PSDTree(root, dimensions=1)
        # Fully covered root: uses the root's own count.
        assert tree.range_count([(0, 9)]) == pytest.approx(95.0)
        # Covers left fully, right partially (uniform 3/5 of 60 = 36).
        assert tree.range_count([(0, 7)]) == pytest.approx(40.0 + 36.0)


class TestTreeConsistency:
    def test_children_sum_to_parents_after_postprocessing(self, small_dataset):
        from repro.histograms.psd import enforce_tree_consistency

        tree = PSDPublisher(height=4).publish(small_dataset, 1.0, rng=10)
        enforce_tree_consistency(tree)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.children:
                child_sum = sum(c.noisy_count for c in node.children)
                assert child_sum == pytest.approx(node.noisy_count, abs=1e-8)
                stack.extend(node.children)

    def test_publisher_flag(self, small_dataset):
        tree = PSDPublisher(height=4, consistency=True).publish(
            small_dataset, 1.0, rng=11
        )
        root = tree.root
        child_sum = sum(c.noisy_count for c in root.children)
        assert child_sum == pytest.approx(root.noisy_count, abs=1e-8)

    def test_consistency_reduces_root_count_variance(self, small_dataset):
        """Blending the root with its subtree sums must tighten the
        estimate of the total count."""
        raw_errors, consistent_errors = [], []
        n = small_dataset.n_records
        for seed in range(30):
            raw = PSDPublisher(height=5).publish(small_dataset, 0.5, rng=seed)
            cons = PSDPublisher(height=5, consistency=True).publish(
                small_dataset, 0.5, rng=seed
            )
            raw_errors.append(abs(raw.root.noisy_count - n))
            consistent_errors.append(abs(cons.root.noisy_count - n))
        assert np.mean(consistent_errors) < np.mean(raw_errors)

    def test_full_domain_query_matches_root(self, small_dataset):
        tree = PSDPublisher(height=3, consistency=True).publish(
            small_dataset, 2.0, rng=12
        )
        full = [(0, 49), (0, 39)]
        assert tree.range_count(full) == pytest.approx(
            max(tree.root.noisy_count, 0.0), abs=1e-8
        )
