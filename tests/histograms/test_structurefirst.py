"""Tests for the NoiseFirst / StructureFirst 1-D publishers."""

import numpy as np
import pytest

from repro.histograms.structurefirst import (
    NoiseFirstPublisher,
    StructureFirstPublisher,
    _greedy_merge_path,
    publish_dense,
)


class TestGreedyMergePath:
    def test_path_covers_all_partition_sizes(self):
        path = _greedy_merge_path(np.array([1.0, 2.0, 3.0, 4.0]))
        assert [len(p) for p in path] == [4, 3, 2, 1]

    def test_merges_most_similar_neighbours_first(self):
        noisy = np.array([10.0, 10.1, 50.0, 90.0])
        path = _greedy_merge_path(noisy)
        first_merge = path[1]
        assert (0, 1) in first_merge

    def test_spans_are_contiguous_and_complete(self):
        noisy = np.random.default_rng(0).uniform(0, 10, size=12)
        for partition in _greedy_merge_path(noisy):
            covered = []
            for start, end in partition:
                covered.extend(range(start, end + 1))
            assert covered == list(range(12))


class TestNoiseFirstPublisher:
    def test_preserves_length(self):
        counts = np.random.default_rng(1).uniform(0, 20, size=50)
        out = NoiseFirstPublisher().publish(counts, 1.0, rng=2)
        assert out.shape == (50,)

    def test_merging_helps_on_flat_histograms(self):
        """On a constant histogram at low epsilon, merging the noisy bins
        should beat the raw identity output."""
        from repro.histograms.identity import IdentityPublisher

        counts = np.full(128, 20.0)
        epsilon = 0.05
        rng = np.random.default_rng(3)
        nf_err, id_err = [], []
        for _ in range(15):
            nf = NoiseFirstPublisher().publish(counts, epsilon, rng)
            ident = IdentityPublisher().publish(counts, epsilon, rng)
            nf_err.append(np.linalg.norm(nf - counts))
            id_err.append(np.linalg.norm(ident - counts))
        assert np.mean(nf_err) < np.mean(id_err)

    def test_skips_merge_on_oversized_domains(self):
        publisher = NoiseFirstPublisher(max_bins_for_merge=10)
        counts = np.zeros(100)
        out = publisher.publish(counts, 1.0, rng=4)
        assert out.shape == (100,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            NoiseFirstPublisher().publish(np.zeros((3, 3)), 1.0)


class TestStructureFirstPublisher:
    def test_preserves_length(self):
        counts = np.random.default_rng(5).uniform(0, 20, size=64)
        out = StructureFirstPublisher().publish(counts, 1.0, rng=6)
        assert out.shape == (64,)

    def test_piecewise_structure(self):
        counts = np.concatenate([np.full(32, 100.0), np.full(32, 5.0)])
        out = StructureFirstPublisher(max_depth=3).publish(counts, 100.0, rng=7)
        assert np.unique(np.round(out, 6)).size <= 8

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            StructureFirstPublisher().publish(np.zeros((4, 4)), 1.0)


def test_publish_dense_helper():
    counts = np.random.default_rng(8).uniform(0, 5, size=32)
    histogram = publish_dense(NoiseFirstPublisher(), counts, 1.0, rng=9)
    assert histogram.range_count([(0, 31)]) == pytest.approx(
        histogram.counts.sum()
    )
