"""Tests for the Filter Priority sparse-summary baseline."""

import numpy as np
import pytest

from repro.data.dataset import Attribute, Dataset, Schema
from repro.histograms.fp import FilterPriorityPublisher, SparseNoisySummary


def _clustered_dataset(n=2000, seed=0):
    """Sparse data: a few heavy cells in a large 2-D domain."""
    rng = np.random.default_rng(seed)
    schema = Schema([Attribute("a", 10_000), Attribute("b", 10_000)])
    centers = np.array([[10, 10], [5000, 5000], [9000, 100]])
    which = rng.integers(0, len(centers), size=n)
    values = centers[which]
    return Dataset(values, schema)


class TestSparseNoisySummary:
    def test_range_count_sums_members(self):
        summary = SparseNoisySummary(
            positions=[[1, 1], [5, 5], [9, 9]],
            values=[10.0, 20.0, 30.0],
            domain_sizes=[10, 10],
        )
        assert summary.range_count([(0, 5), (0, 5)]) == pytest.approx(30.0)
        assert summary.range_count([(0, 9), (0, 9)]) == pytest.approx(60.0)

    def test_empty_summary(self):
        summary = SparseNoisySummary(
            positions=np.empty((0, 2)), values=[], domain_sizes=[10, 10]
        )
        assert summary.range_count([(0, 9), (0, 9)]) == 0.0

    def test_rescaled(self):
        summary = SparseNoisySummary([[0, 0]], [50.0], [10, 10])
        scaled = summary.rescaled(100.0)
        assert scaled.total == pytest.approx(100.0)

    def test_rescaled_zero_total_noop(self):
        summary = SparseNoisySummary(
            positions=np.empty((0, 2)), values=[], domain_sizes=[10, 10]
        )
        assert summary.rescaled(100.0).total == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SparseNoisySummary([[0, 0]], [1.0, 2.0], [10, 10])


class TestFilterPriorityPublisher:
    def test_summary_much_smaller_than_domain(self):
        data = _clustered_dataset()
        summary = FilterPriorityPublisher(target_zero_retentions=50).publish(
            data, 1.0, rng=1
        )
        assert summary.size < 10_000  # domain has 1e8 cells

    def test_heavy_cells_survive_filter(self):
        data = _clustered_dataset(n=3000)
        # A low zero-retention target keeps the simulated-zero mass from
        # dominating the consistency rescale.
        publisher = FilterPriorityPublisher(target_zero_retentions=10)
        summary = publisher.publish(data, 1.0, rng=2)
        # Each heavy cell holds ~1000 records; a range around one of them
        # should answer with roughly that count.
        answer = summary.range_count([(0, 100), (0, 100)])
        truth = int(
            ((data.column(0) <= 100) & (data.column(1) <= 100)).sum()
        )
        assert answer == pytest.approx(truth, rel=0.25)

    def test_consistency_rescale_matches_cardinality(self):
        data = _clustered_dataset(n=5000)
        summary = FilterPriorityPublisher(consistency_fraction=0.2).publish(
            data, 2.0, rng=3
        )
        assert summary.total == pytest.approx(5000, rel=0.2)

    def test_priority_cap_enforced(self):
        data = _clustered_dataset(n=2000)
        publisher = FilterPriorityPublisher(
            max_summary_size=2, target_zero_retentions=1.0
        )
        summary = publisher.publish(data, 1.0, rng=4)
        assert summary.size <= 2

    def test_zero_retention_count_scales_with_target(self):
        data = _clustered_dataset(n=500)
        small = FilterPriorityPublisher(target_zero_retentions=5).publish(
            data, 1.0, rng=5
        )
        large = FilterPriorityPublisher(target_zero_retentions=500).publish(
            data, 1.0, rng=5
        )
        assert large.size > small.size

    def test_huge_domain_stays_feasible(self):
        """8 attributes of domain 1000 => 1e24 cells; FP must not blow up."""
        rng = np.random.default_rng(6)
        schema = Schema.from_domain_sizes([1000] * 8)
        values = rng.integers(0, 1000, size=(500, 8))
        data = Dataset(values, schema)
        summary = FilterPriorityPublisher(target_zero_retentions=100).publish(
            data, 1.0, rng=7
        )
        assert summary.size < 50_000

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FilterPriorityPublisher(target_zero_retentions=0)
        with pytest.raises(ValueError):
            FilterPriorityPublisher(consistency_fraction=1.0)
