"""Tests for Dwork's identity (Laplace-per-bin) publisher."""

import numpy as np
import pytest

from repro.histograms.identity import IdentityPublisher


class TestIdentityPublisher:
    def test_preserves_shape(self):
        counts = np.zeros((4, 5))
        out = IdentityPublisher().publish(counts, 1.0, rng=0)
        assert out.shape == (4, 5)

    def test_unbiased(self):
        counts = np.full(50_000, 10.0)
        out = IdentityPublisher().publish(counts, 1.0, rng=0)
        assert out.mean() == pytest.approx(10.0, abs=0.05)

    def test_noise_variance_matches_epsilon(self):
        counts = np.zeros(100_000)
        out = IdentityPublisher().publish(counts, 2.0, rng=0)
        # Lap(1/2): variance 2 * (1/2)^2 = 0.5.
        assert np.var(out) == pytest.approx(0.5, rel=0.05)

    def test_high_epsilon_nearly_exact(self):
        counts = np.arange(10.0)
        out = IdentityPublisher().publish(counts, 1e9, rng=0)
        assert np.abs(out - counts).max() < 1e-6

    def test_publish_dense_clip(self):
        counts = np.zeros(1000)
        histogram = IdentityPublisher().publish_dense(
            counts, 0.5, rng=0, clip_negative=True
        )
        assert (histogram.counts >= 0).all()

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            IdentityPublisher().publish(np.zeros(3), 0.0)
