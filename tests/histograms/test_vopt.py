"""Tests for exact V-optimal partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histograms.vopt import (
    segment_sse,
    voptimal_estimate,
    voptimal_partition,
    _prefix_sums,
)


def _brute_force_best_sse(values: np.ndarray, k: int) -> float:
    """Exhaustive minimum SSE over all partitions into <= k buckets."""
    import itertools

    n = values.size
    sums, squares = _prefix_sums(values)
    best = np.inf
    for buckets in range(1, min(k, n) + 1):
        for cuts in itertools.combinations(range(1, n), buckets - 1):
            edges = [0, *cuts, n]
            sse = sum(
                segment_sse(sums, squares, edges[i], edges[i + 1] - 1)
                for i in range(buckets)
            )
            best = min(best, sse)
    return best


class TestVoptimalPartition:
    def test_two_plateaus(self):
        spans, sse = voptimal_partition(np.array([1.0, 1.0, 9.0, 9.0]), 2)
        assert spans == [(0, 1), (2, 3)]
        assert sse == pytest.approx(0.0)

    def test_single_bucket(self):
        values = np.array([1.0, 3.0, 5.0])
        spans, sse = voptimal_partition(values, 1)
        assert spans == [(0, 2)]
        assert sse == pytest.approx(((values - 3.0) ** 2).sum())

    def test_k_at_least_n_gives_zero_sse(self):
        values = np.random.default_rng(0).uniform(0, 10, size=8)
        spans, sse = voptimal_partition(values, 20)
        assert sse == pytest.approx(0.0, abs=1e-9)
        assert len(spans) == 8

    def test_spans_are_contiguous_and_complete(self):
        values = np.random.default_rng(1).uniform(0, 10, size=15)
        spans, _ = voptimal_partition(values, 4)
        covered = []
        for start, end in spans:
            covered.extend(range(start, end + 1))
        assert covered == list(range(15))

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=2,
            max_size=10,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, values, k):
        values = np.asarray(values)
        _, dp_sse = voptimal_partition(values, k)
        brute = _brute_force_best_sse(values, k)
        assert dp_sse == pytest.approx(brute, abs=1e-6)

    def test_never_worse_than_greedy(self):
        """The exact DP must be at least as good as NoiseFirst's greedy
        merge at the same bucket count."""
        from repro.histograms.structurefirst import _greedy_merge_path
        from repro.histograms.vopt import _prefix_sums

        rng = np.random.default_rng(2)
        values = rng.uniform(0, 20, size=40)
        sums, squares = _prefix_sums(values)
        path = _greedy_merge_path(values)
        for partition in path:
            k = len(partition)
            greedy_sse = sum(
                segment_sse(sums, squares, a, b) for a, b in partition
            )
            _, dp_sse = voptimal_partition(values, k)
            assert dp_sse <= greedy_sse + 1e-9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            voptimal_partition(np.array([]), 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            voptimal_partition(np.ones(4), 0)


class TestVoptimalEstimate:
    def test_piecewise_constant(self):
        values = np.concatenate([np.full(5, 2.0), np.full(5, 8.0)])
        estimate = voptimal_estimate(values, 2)
        assert np.allclose(estimate[:5], 2.0)
        assert np.allclose(estimate[5:], 8.0)

    def test_preserves_total(self):
        values = np.random.default_rng(3).uniform(0, 10, size=20)
        estimate = voptimal_estimate(values, 5)
        assert estimate.sum() == pytest.approx(values.sum())
