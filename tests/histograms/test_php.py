"""Tests for the P-HP hierarchical-partitioning baseline."""

import numpy as np
import pytest

from repro.histograms.php import PHPPublisher, _l1_deviations_for_cuts


class TestCutUtility:
    def test_perfect_cut_scores_zero(self):
        # Two flat plateaus: the boundary cut has zero L1 deviation.
        segment = np.array([5.0, 5.0, 5.0, 20.0, 20.0, 20.0])
        scores = _l1_deviations_for_cuts(segment, np.array([2]))
        assert scores[0] == pytest.approx(0.0)

    def test_misplaced_cut_scores_worse(self):
        segment = np.array([5.0, 5.0, 5.0, 20.0, 20.0, 20.0])
        scores = _l1_deviations_for_cuts(segment, np.array([0, 2, 4]))
        assert scores[1] == min(scores)


class TestPHPPublisher:
    def test_preserves_shape(self):
        counts = np.random.default_rng(0).uniform(0, 10, size=100)
        out = PHPPublisher(max_depth=4).publish(counts, 1.0, rng=1)
        assert out.shape == (100,)

    def test_2d_input_reshaped(self):
        counts = np.random.default_rng(1).uniform(0, 10, size=(20, 20))
        out = PHPPublisher(max_depth=5).publish(counts, 1.0, rng=2)
        assert out.shape == (20, 20)

    def test_piecewise_constant_recovered_at_high_epsilon(self):
        counts = np.concatenate([np.full(32, 100.0), np.full(32, 10.0)])
        out = PHPPublisher(max_depth=3).publish(counts, 1e4, rng=3)
        assert np.abs(out[:32] - 100.0).max() < 5.0
        assert np.abs(out[32:] - 10.0).max() < 5.0

    def test_partition_averages_are_piecewise_constant(self):
        counts = np.random.default_rng(2).uniform(0, 100, size=64)
        publisher = PHPPublisher(max_depth=3)
        out = publisher.publish(counts, 10.0, rng=4)
        # At most 2^3 = 8 distinct partition values.
        assert np.unique(np.round(out, 6)).size <= 8

    def test_single_bin(self):
        out = PHPPublisher().publish(np.array([7.0]), 1.0, rng=5)
        assert out.shape == (1,)

    def test_total_roughly_preserved(self):
        counts = np.random.default_rng(3).uniform(0, 50, size=256)
        out = PHPPublisher(max_depth=5).publish(counts, 5.0, rng=6)
        assert out.sum() == pytest.approx(counts.sum(), rel=0.15)

    def test_candidate_cap_respected(self):
        # A long segment with a small cap must still run (and fast).
        counts = np.random.default_rng(4).uniform(0, 10, size=5000)
        out = PHPPublisher(max_depth=4, max_candidates=16).publish(
            counts, 1.0, rng=7
        )
        assert out.shape == (5000,)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PHPPublisher(max_depth=0)
        with pytest.raises(ValueError):
            PHPPublisher(structure_fraction=0.0)
        with pytest.raises(ValueError):
            PHPPublisher(max_candidates=0)

    def test_publish_dense_clips(self):
        counts = np.zeros(32)
        histogram = PHPPublisher(max_depth=3).publish_dense(counts, 0.2, rng=8)
        assert (histogram.counts >= 0).all()
