"""Cross-module property tests: invariants spanning several subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpcopula import DPCopulaKendall
from repro.core.sampling import sample_synthetic
from repro.data.dataset import Dataset, Schema
from repro.data.synthetic import SyntheticSpec, gaussian_dependence_data
from repro.histograms.fp import FilterPriorityPublisher
from repro.histograms.privelet import haar_transform
from repro.histograms.psd import PSDPublisher
from repro.queries.range_query import RangeQuery
from repro.stats.ecdf import HistogramCDF


class TestSamplingMarginFidelity:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=2,
            max_size=12,
        ).filter(lambda counts: sum(counts) > 1.0),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_sampled_margins_match_cdf_pmf(self, counts, seed):
        """Inverse-CDF sampling through Algorithm 3 reproduces the margin
        pmf within multinomial sampling error."""
        margin = HistogramCDF(counts)
        schema = Schema.from_domain_sizes([margin.domain_size, margin.domain_size])
        n = 30_000
        data = sample_synthetic(
            np.eye(2), [margin, margin], n, schema, rng=seed
        )
        observed = np.bincount(data.column(0), minlength=margin.domain_size) / n
        assert np.abs(observed - margin.pmf).max() < 0.02


class TestDeterminism:
    def test_dpcopula_end_to_end_deterministic(self, synthetic_4d):
        a = DPCopulaKendall(epsilon=1.0, rng=99).fit_sample(synthetic_4d)
        b = DPCopulaKendall(epsilon=1.0, rng=99).fit_sample(synthetic_4d)
        assert (a.values == b.values).all()

    def test_different_seeds_differ(self, synthetic_4d):
        a = DPCopulaKendall(epsilon=1.0, rng=1).fit_sample(synthetic_4d)
        b = DPCopulaKendall(epsilon=1.0, rng=2).fit_sample(synthetic_4d)
        assert not (a.values == b.values).all()


class TestAnswererAdditivity:
    """Range answers must be additive over disjoint rectangles."""

    def _check_additivity(self, answerer, sizes, atol=1e-6):
        mid0 = sizes[0] // 2
        whole = answerer.range_count([(0, sizes[0] - 1), (0, sizes[1] - 1)])
        left = answerer.range_count([(0, mid0 - 1), (0, sizes[1] - 1)])
        right = answerer.range_count([(mid0, sizes[0] - 1), (0, sizes[1] - 1)])
        assert whole == pytest.approx(left + right, abs=max(atol, abs(whole) * 1e-9))

    def test_fp_additive(self, small_dataset):
        summary = FilterPriorityPublisher().publish(small_dataset, 1.0, rng=0)
        self._check_additivity(summary, [50, 40])

    def test_dense_histogram_additive(self, small_dataset):
        from repro.experiments.runner import dense_counts
        from repro.histograms.base import DenseNoisyHistogram

        histogram = DenseNoisyHistogram(dense_counts(small_dataset))
        self._check_additivity(histogram, [50, 40])

    def test_psd_additive_on_aligned_splits(self, small_dataset):
        """PSD answers are additive when the split is uniformity-exact,
        i.e. the whole domain vs two halves along the root's own split."""
        tree = PSDPublisher(height=4, switch_level=0).publish(
            small_dataset, 5.0, rng=1
        )
        # Root splits axis 0 at midpoint 24 when switch_level = 0.
        whole = tree.range_count([(0, 49), (0, 39)])
        left = tree.range_count([(0, 24), (0, 39)])
        right = tree.range_count([(25, 49), (0, 39)])
        # Internal nodes answer fully-contained queries from their own
        # noisy counts, so exact additivity is not guaranteed — but the
        # parts must reconstruct the whole within the root-vs-children
        # noise discrepancy.
        assert whole == pytest.approx(left + right, abs=12.0)


class TestEmpiricalCopulaModel:
    def test_preserves_arbitrary_dependence(self):
        """A V-shaped (non-monotone) dependence no Gaussian copula can
        represent survives the empirical copula."""
        from repro.core.copula import EmpiricalCopulaModel

        rng = np.random.default_rng(0)
        x = rng.integers(0, 100, size=4000)
        y = np.abs(x - 50) * 2 + rng.integers(0, 5, size=4000)
        data = Dataset(
            np.column_stack([x, np.clip(y, 0, 104)]),
            Schema.from_domain_sizes([100, 105]),
        )
        model = EmpiricalCopulaModel().fit(data)
        synthetic = model.sample(4000, rng=1)
        # The V shape: low y both at x~0 edges high... check correlation of
        # |x-50| with y stays strongly positive.
        corr = np.corrcoef(
            np.abs(synthetic.column(0) - 50), synthetic.column(1)
        )[0, 1]
        assert corr > 0.8

    def test_unfitted_raises(self):
        from repro.core.copula import EmpiricalCopulaModel

        with pytest.raises(RuntimeError):
            EmpiricalCopulaModel().sample(5)

    def test_jitter_validation(self):
        from repro.core.copula import EmpiricalCopulaModel

        with pytest.raises(ValueError):
            EmpiricalCopulaModel(jitter=2.0)


class TestHaarLinearity:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_transform_is_linear(self, seed, alpha):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        lhs = haar_transform(a + alpha * b)
        rhs = haar_transform(a) + alpha * haar_transform(b)
        assert np.allclose(lhs, rhs, atol=1e-9)


class TestQueryCountConsistency:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_complement_counts_sum_to_n(self, seed):
        spec = SyntheticSpec(n_records=500, domain_sizes=(30, 30))
        data = gaussian_dependence_data(spec, rng=seed)
        rng = np.random.default_rng(seed)
        cut = int(rng.integers(0, 29))
        left = RangeQuery(((0, cut), (0, 29))).count(data)
        right = RangeQuery(((cut + 1, 29), (0, 29))).count(data) if cut < 29 else 0
        assert left + right == data.n_records
