"""Shape checks of the paper's headline comparative claims.

These run at reduced scale (seconds, not the paper's full runs) and
assert the *direction* of each result — who wins, how error responds to
the experimental knob — not absolute numbers.
"""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticSpec,
    gaussian_dependence_data,
    random_correlation_matrix,
)
from repro.experiments.runner import average_evaluation, make_method
from repro.queries.range_query import random_workload


def _data(m, n, domain, margins="gaussian", seed=0, strength=0.6):
    correlation = random_correlation_matrix(m, rng=seed, strength=strength)
    spec = SyntheticSpec(
        n_records=n,
        domain_sizes=(domain,) * m,
        margins=margins,
        correlation=correlation,
    )
    return gaussian_dependence_data(spec, rng=seed + 1)


class TestFigure5Shape:
    def test_k_at_least_one_beats_k_below_one(self):
        """Margins deserve more budget than coefficients (Figure 5)."""
        data = _data(2, 6000, 256, seed=2)
        workload = random_workload(data.schema, 80, rng=3)
        error_at = {}
        for k in (0.125, 8.0):
            timed = average_evaluation(
                make_method("dpcopula-kendall", k=k),
                data,
                workload,
                epsilon=0.2,
                n_runs=3,
                rng=4,
            )
            error_at[k] = timed.evaluation.mean_relative_error
        assert error_at[8.0] < error_at[0.125]


class TestFigure7Shape:
    def test_dpcopula_beats_histogram_baselines_at_small_epsilon(self):
        """The paper's headline: DPCopula below the baselines, and the
        gap largest at small budgets (Figure 7) on high-dimensional,
        large-domain data."""
        data = _data(4, 8000, 500, seed=5)
        workload = random_workload(data.schema, 80, rng=6)
        epsilon = 0.1
        results = {}
        for name in ("dpcopula-kendall", "psd", "fp"):
            timed = average_evaluation(
                make_method(name), data, workload, epsilon, n_runs=5, rng=7
            )
            results[name] = timed.evaluation.mean_relative_error
        assert results["dpcopula-kendall"] < results["psd"]
        assert results["dpcopula-kendall"] < results["fp"]


class TestFigure8Shape:
    def test_absolute_error_grows_with_range_size(self):
        from repro.queries.range_query import workload_with_volume

        data = _data(2, 6000, 256, seed=8)
        method = make_method("dpcopula-kendall")
        absolute = {}
        for selectivity in (1e-4, 0.2):
            volume = selectivity * data.schema.domain_space()
            workload = workload_with_volume(data.schema, volume, 60, rng=9)
            timed = average_evaluation(
                method, data, workload, epsilon=0.1, n_runs=2, rng=10
            )
            absolute[selectivity] = timed.evaluation.mean_absolute_error
        assert absolute[0.2] > absolute[1e-4]


class TestFigure9Shape:
    def test_dpcopula_beats_psd_on_skewed_margins(self):
        """Figure 9: the gap is clearest on zipf margins."""
        data = _data(4, 8000, 500, margins="zipf", seed=11)
        workload = random_workload(data.schema, 80, rng=12)
        errors = {}
        for name in ("dpcopula-kendall", "psd"):
            timed = average_evaluation(
                make_method(name), data, workload, epsilon=0.2, n_runs=3, rng=13
            )
            errors[name] = timed.evaluation.mean_relative_error
        assert errors["dpcopula-kendall"] < errors["psd"]


class TestFigure11Shape:
    def test_fit_time_grows_with_cardinality(self):
        method = make_method("dpcopula-kendall", subsample=None)
        seconds = {}
        for n in (1000, 16_000):
            data = _data(2, n, 128, seed=14)
            workload = random_workload(data.schema, 5, rng=15)
            timed = average_evaluation(
                method, data, workload, epsilon=1.0, n_runs=2, rng=16
            )
            seconds[n] = timed.fit_seconds
        assert seconds[16_000] > seconds[1000]

    def test_subsampling_makes_correlation_time_flat_in_n(self):
        """The Section 4.2 sampling optimisation: with a fixed n̂ the
        Kendall's-tau cost stops growing with n."""
        import time

        from repro.core.kendall_matrix import dp_kendall_correlation

        seconds = {}
        for n in (20_000, 320_000):
            values = np.random.default_rng(17).standard_normal((n, 3))
            start = time.perf_counter()
            for seed in range(3):
                dp_kendall_correlation(values, 1.0, rng=seed, subsample=2000)
            seconds[n] = time.perf_counter() - start
        # 16x the data must cost nowhere near 16x the time.
        assert seconds[320_000] < seconds[20_000] * 4
