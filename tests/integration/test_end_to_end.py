"""End-to-end pipeline tests across modules."""

import numpy as np
import pytest

from repro import (
    DPCopulaHybrid,
    DPCopulaKendall,
    DPCopulaMLE,
    SyntheticSpec,
    evaluate_workload,
    gaussian_dependence_data,
    random_workload,
    us_census,
)
from repro.data.synthetic import random_correlation_matrix


class TestPublicAPIWorkflow:
    def test_quickstart_from_readme(self):
        data = gaussian_dependence_data(
            SyntheticSpec(n_records=2000, domain_sizes=(100, 100)), rng=0
        )
        synthesizer = DPCopulaKendall(epsilon=1.0, rng=0)
        synthetic = synthesizer.fit_sample(data)
        assert synthetic.n_records == 2000
        workload = random_workload(data.schema, 50, rng=1)
        evaluation = evaluate_workload(synthetic, workload, data)
        assert evaluation.mean_relative_error < 2.0

    def test_high_dimensional_large_domain(self):
        """The headline capability: 6 attributes of domain 1000 each is a
        10^18-cell domain no dense histogram could touch."""
        correlation = random_correlation_matrix(6, rng=2, strength=0.5)
        data = gaussian_dependence_data(
            SyntheticSpec(
                n_records=5000,
                domain_sizes=(1000,) * 6,
                correlation=correlation,
            ),
            rng=3,
        )
        synthesizer = DPCopulaKendall(epsilon=1.0, rng=4)
        synthetic = synthesizer.fit_sample(data)
        assert synthetic.schema.domain_space() == pytest.approx(1e18)
        assert synthetic.n_records == 5000

    def test_census_hybrid_pipeline(self):
        data = us_census(n_records=4000)
        hybrid = DPCopulaHybrid(epsilon=1.0, rng=5)
        synthetic = hybrid.fit_sample(data)
        assert synthetic.schema == data.schema
        # Binary attribute proportions should be roughly preserved.
        original_rate = data.column(3).mean()
        synthetic_rate = synthetic.column(3).mean()
        assert synthetic_rate == pytest.approx(original_rate, abs=0.1)

    def test_synthetic_better_than_nothing(self):
        """DPCopula answers must beat the trivial all-zeros answerer."""
        data = gaussian_dependence_data(
            SyntheticSpec(n_records=5000, domain_sizes=(200, 200)), rng=6
        )
        workload = random_workload(data.schema, 100, rng=7)
        synthetic = DPCopulaKendall(epsilon=1.0, rng=8).fit_sample(data)
        copula_eval = evaluate_workload(synthetic, workload, data)
        zero_eval = evaluate_workload(lambda q: 0.0, workload, data)
        assert copula_eval.mean_relative_error < zero_eval.mean_relative_error

    def test_error_decreases_with_budget(self):
        data = gaussian_dependence_data(
            SyntheticSpec(n_records=8000, domain_sizes=(100, 100)), rng=9
        )
        workload = random_workload(data.schema, 100, rng=10)
        errors = {}
        for epsilon in (0.05, 5.0):
            runs = []
            for seed in range(3):
                synthetic = DPCopulaKendall(epsilon=epsilon, rng=seed).fit_sample(data)
                runs.append(
                    evaluate_workload(synthetic, workload, data).mean_relative_error
                )
            errors[epsilon] = np.mean(runs)
        assert errors[5.0] < errors[0.05]

    def test_mle_and_kendall_agree_at_high_budget(self):
        correlation = np.array([[1.0, 0.7], [0.7, 1.0]])
        data = gaussian_dependence_data(
            SyntheticSpec(
                n_records=20_000, domain_sizes=(300, 300), correlation=correlation
            ),
            rng=11,
        )
        kendall = DPCopulaKendall(epsilon=100.0, subsample=None, rng=12).fit(data)
        mle = DPCopulaMLE(epsilon=100.0, l=40, rng=13).fit(data)
        assert kendall.correlation_[0, 1] == pytest.approx(
            mle.correlation_[0, 1], abs=0.08
        )
