"""Whole-pipeline privacy accounting and mechanism-calibration checks.

These tests verify the *accounting* (every mechanism draws the noise its
budget slice dictates and the ledger sums to ε) and the stability-based
properties that differential privacy implies (noise actually present,
outputs insensitive to any single record at matching noise scales).
"""

import numpy as np
import pytest

from repro.core.dpcopula import DPCopulaKendall, DPCopulaMLE
from repro.core.hybrid import DPCopulaHybrid
from repro.core.kendall_matrix import dp_kendall_correlation
from repro.data.dataset import Dataset
from repro.dp.budget import BudgetExhaustedError, PrivacyBudget


class TestLedgerSumsToEpsilon:
    @pytest.mark.parametrize("epsilon", [0.1, 1.0, 3.0])
    def test_kendall_ledger(self, synthetic_4d, epsilon):
        synthesizer = DPCopulaKendall(epsilon=epsilon, rng=0).fit(synthetic_4d)
        assert synthesizer.budget_.spent == pytest.approx(epsilon)
        assert sum(a for _, a in synthesizer.budget_.log) == pytest.approx(epsilon)

    def test_mle_ledger(self, synthetic_4d):
        synthesizer = DPCopulaMLE(epsilon=0.8, rng=1).fit(synthetic_4d)
        assert synthesizer.budget_.spent == pytest.approx(0.8)

    def test_hybrid_ledger(self, mixed_schema_dataset):
        hybrid = DPCopulaHybrid(epsilon=1.5, rng=2)
        hybrid.fit_sample(mixed_schema_dataset)
        assert hybrid.budget_.spent == pytest.approx(1.5)

    def test_ledger_overdraw_impossible(self):
        budget = PrivacyBudget(1.0)
        budget.spend(1.0)
        with pytest.raises(BudgetExhaustedError):
            budget.spend(1e-6)


class TestNoiseActuallyInjected:
    def test_margins_are_noisy(self, synthetic_4d):
        """Two synthesizers with different noise seeds must disagree —
        a silent no-noise regression would make them identical."""
        a = DPCopulaKendall(epsilon=1.0, rng=3).fit(synthetic_4d)
        b = DPCopulaKendall(epsilon=1.0, rng=4).fit(synthetic_4d)
        pmf_a = a.margins_.cdfs[0].pmf
        pmf_b = b.margins_.cdfs[0].pmf
        assert not np.allclose(pmf_a, pmf_b)

    def test_correlation_is_noisy(self, synthetic_4d):
        a = DPCopulaKendall(epsilon=1.0, rng=5).fit(synthetic_4d)
        b = DPCopulaKendall(epsilon=1.0, rng=6).fit(synthetic_4d)
        assert not np.allclose(a.correlation_, b.correlation_)

    def test_kendall_noise_scale_calibrated(self):
        """The released coefficient's spread must match the Laplace scale
        Δ·C(m,2)/ε₂ from Lemma 4.1 (up to sampling error)."""
        rng = np.random.default_rng(7)
        data = rng.standard_normal((1000, 2))
        epsilon2 = 0.5
        taus = []
        for seed in range(400):
            matrix = dp_kendall_correlation(
                data, epsilon2, rng=seed, subsample=None
            )
            taus.append((2 / np.pi) * np.arcsin(matrix[0, 1]))
        expected_scale = (4.0 / 1001) / epsilon2
        expected_std = np.sqrt(2.0) * expected_scale
        assert np.std(taus) == pytest.approx(expected_std, rel=0.25)


class TestNeighbouringDatasets:
    def test_output_stable_under_one_record_change(self, synthetic_4d):
        """With the same noise seed, swapping one record must move the
        pre-noise Kendall statistic by at most its sensitivity — so the
        released matrices stay within a few noise scales."""
        values = synthetic_4d.values.copy()
        neighbour_values = values.copy()
        neighbour_values[0] = [0, 59, 0, 59]  # adversarial replacement
        neighbour = Dataset(neighbour_values, synthetic_4d.schema)

        a = dp_kendall_correlation(values, 1.0, rng=8, subsample=None)
        b = dp_kendall_correlation(neighbour_values, 1.0, rng=8, subsample=None)
        # Same seed -> same noise; difference is only the statistic shift.
        # Replacement = remove + add: 2 * sensitivity bound on tau, which
        # the sine transform amplifies by at most pi/2.
        n = synthetic_4d.n_records
        bound = (np.pi / 2.0) * 2.0 * (4.0 / n) + 1e-9
        assert np.abs(a - b).max() <= bound
        assert neighbour.n_records == n
