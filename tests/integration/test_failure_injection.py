"""Failure injection: the guardrails must actually fire.

Each test breaks one assumption on purpose and asserts the library
refuses loudly instead of silently producing an unsound release.
"""

import numpy as np
import pytest

from repro.core.dpcopula import DPCopulaKendall
from repro.core.margins import DPMargins
from repro.dp.budget import BudgetExhaustedError, PrivacyBudget


class TestBudgetGuards:
    def test_margins_cannot_overspend_a_shared_ledger(self, synthetic_4d):
        """A ledger smaller than the requested ε₁ must abort the fit."""
        tight = PrivacyBudget(0.1)
        with pytest.raises(BudgetExhaustedError):
            DPMargins().fit(synthetic_4d, epsilon1=1.0, rng=0, budget=tight)

    def test_partial_spend_is_visible_after_abort(self, synthetic_4d):
        tight = PrivacyBudget(0.3)
        try:
            DPMargins().fit(synthetic_4d, epsilon1=1.0, rng=0, budget=tight)
        except BudgetExhaustedError:
            pass
        # The margins actually published before the abort are on record.
        assert 0.0 < tight.spent <= 0.3 + 1e-9
        assert all(label.startswith("margin:") for label, _ in tight.log)


class TestCorruptedInputs:
    def test_dataset_rejects_nan(self, schema_2d):
        from repro.data.dataset import Dataset

        values = np.array([[0.0, np.nan]])
        with pytest.raises(ValueError):
            Dataset(values, schema_2d)

    def test_dataset_rejects_negative_codes(self, schema_2d):
        from repro.data.dataset import Dataset

        with pytest.raises(ValueError):
            Dataset(np.array([[-1, 0]]), schema_2d)

    def test_histogram_cdf_survives_all_noise_killed_counts(self):
        """If noise wipes out every count the CDF degrades to uniform
        rather than dividing by zero."""
        from repro.stats.ecdf import HistogramCDF

        cdf = HistogramCDF(np.full(16, -100.0))
        samples = cdf.inverse(np.random.default_rng(0).uniform(size=1000))
        assert (np.bincount(samples, minlength=16) > 0).all()

    def test_indefinite_correlation_never_reaches_the_sampler(self):
        """Even adversarial noise levels must yield a sampleable matrix."""
        rng = np.random.default_rng(1)
        data = rng.standard_normal((100, 5))
        from repro.core.kendall_matrix import dp_kendall_correlation

        for seed in range(10):
            matrix = dp_kendall_correlation(
                data, 0.001, rng=seed, subsample=None
            )
            # Cholesky must succeed: this is what Algorithm 3 requires.
            np.linalg.cholesky(matrix)


class TestSeedIsolation:
    def test_shared_generator_still_deterministic_pipeline(self, synthetic_4d):
        """Passing one Generator through the whole pipeline consumes it
        sequentially: rebuilding the same generator replays the run."""
        a = DPCopulaKendall(
            epsilon=1.0, rng=np.random.default_rng(7)
        ).fit_sample(synthetic_4d)
        b = DPCopulaKendall(
            epsilon=1.0, rng=np.random.default_rng(7)
        ).fit_sample(synthetic_4d)
        assert (a.values == b.values).all()

    def test_fit_then_multiple_samples_differ(self, synthetic_4d):
        """Sampling twice from one fitted model must not repeat records
        (the generator advances)."""
        synthesizer = DPCopulaKendall(epsilon=1.0, rng=8).fit(synthetic_4d)
        first = synthesizer.sample(500)
        second = synthesizer.sample(500)
        assert not (first.values == second.values).all()
